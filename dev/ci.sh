#!/bin/sh
# Repo CI: build everything, run the full test suite, then a fast parity
# smoke of the parallel batch engine (jobs=2 vs sequential on small
# acyclic + cyclic batches; the experiment exits nonzero on the first
# divergence).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- throughput-smoke

# Observability smoke: a traced + metered parallel batch, then validate
# the artifacts (Chrome-trace span nesting, JSON well-formedness).
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
dune exec -- mlsclassify batch -l test/cli.t/fig1b.lat --jobs 2 \
  --trace "$obs_tmp/trace.json" --metrics-json "$obs_tmp/metrics.json" \
  test/cli.t/employee.cst test/cli.t/employee.cst > /dev/null
dune exec dev/validate_trace.exe -- "$obs_tmp/trace.json"
dune exec dev/validate_trace.exe -- --json "$obs_tmp/metrics.json"

# Differential self-check: a pinned-seed bounded run of the property
# harness (solver vs oracle/baselines/round-trips across all backends).
dune exec -- mlsclassify selfcheck --seed 42 --cases 60 --jobs 2

# Fault-injection gate: planting an unexpected runtime fault of each kind
# (raise / virtual-clock stall / step-budget blowout) into the supervised
# batch property must make every case fail, with each failure isolated to
# its case and shrunk to a reproducer — the harness proving it catches
# engine-level misbehavior, not just wrong levels.
for kind in raise stall blowout; do
  out=$(dune exec -- mlsclassify selfcheck --seed 42 --cases 3 --jobs 2 \
    --inject-fault "$kind" 2>&1) && {
    echo "ci: selfcheck --inject-fault $kind was not caught" >&2
    exit 1
  }
  echo "$out" | grep -q 'property=supervised' || {
    echo "ci: --inject-fault $kind failures not attributed to supervision" >&2
    exit 1
  }
  echo "$out" | grep -q 'repro (shrunk)' || {
    echo "ci: --inject-fault $kind failures were not shrunk" >&2
    exit 1
  }
  echo "ci: inject-fault $kind caught, isolated, and shrunk"
done

# Supervision overhead gate: budgets + retry bookkeeping on the PR1
# throughput workloads (no fault fires) must stay within 2% of the
# unsupervised engine; the experiment also re-checks output parity and
# that the fault counters report 0 in phase_metrics.
dune exec bench/main.exe -- supervision
grep -q '"engine/retries": 0' BENCH_PR4.json || {
  echo "ci: BENCH_PR4.json is missing zero-valued fault counters" >&2
  exit 1
}
overhead=$(sed -n 's/.*"overhead_pct_max": \([-0-9.e+]*\).*/\1/p' BENCH_PR4.json)
awk "BEGIN { exit !($overhead <= 2.0) }" || {
  echo "ci: supervision overhead ${overhead}% exceeds the 2% budget" >&2
  exit 1
}
echo "ci: supervision overhead ${overhead}% (budget 2%)"

echo "ci: OK"
