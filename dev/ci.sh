#!/bin/sh
# Repo CI: build everything, run the full test suite, then a fast parity
# smoke of the parallel batch engine (jobs=2 vs sequential on small
# acyclic + cyclic batches; the experiment exits nonzero on the first
# divergence).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- throughput-smoke

# Observability smoke: a traced + metered parallel batch, then validate
# the artifacts (Chrome-trace span nesting, JSON well-formedness).
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
dune exec -- mlsclassify batch -l test/cli.t/fig1b.lat --jobs 2 \
  --trace "$obs_tmp/trace.json" --metrics-json "$obs_tmp/metrics.json" \
  test/cli.t/employee.cst test/cli.t/employee.cst > /dev/null
dune exec dev/validate_trace.exe -- "$obs_tmp/trace.json"
dune exec dev/validate_trace.exe -- --json "$obs_tmp/metrics.json"

# Differential self-check: a pinned-seed bounded run of the property
# harness (solver vs oracle/baselines/round-trips across all backends),
# which must include the session delta-parity and wire round-trip checks.
selfcheck_out=$(dune exec -- mlsclassify selfcheck --seed 42 --cases 60 --jobs 2)
echo "$selfcheck_out"
echo "$selfcheck_out" | grep -Eq 'checks:.* session=[1-9]' || {
  echo "ci: selfcheck did not exercise the session property" >&2
  exit 1
}
echo "$selfcheck_out" | grep -Eq 'checks:.* wire=[1-9]' || {
  echo "ci: selfcheck did not exercise the wire round-trip property" >&2
  exit 1
}

# Serve smoke: an NDJSON session over stdio — a solve, a budget fault
# (max_steps: 0 trips on the first step), and an infeasible bounded
# resolve must each answer with the matching versioned envelope, and the
# loop must survive all three plus a trailing garbage line.
serve_out=$(printf '%s\n' \
  '{"op":"open","problem":"ci","lattice":"levels Public, Secret\nPublic < Secret\n","constraints":"secret >= Secret\n{name, salary} >= secret\n"}' \
  '{"op":"resolve","problem":"ci"}' \
  '{"op":"set_lower_bound","problem":"ci","attr":"name","level":"Secret"}' \
  '{"op":"resolve","problem":"ci","max_steps":0}' \
  '{"op":"resolve","problem":"ci","bounds":{"secret":"Public"}}' \
  '{"op":"resolve","problem":"ci"}' \
  'bogus' \
  | dune exec -- mlsclassify serve)
echo "$serve_out"
test "$(echo "$serve_out" | wc -l)" = 7 || {
  echo "ci: serve answered the wrong number of envelopes" >&2
  exit 1
}
echo "$serve_out" | grep -q '"status":"ok".*"solution"' || {
  echo "ci: serve produced no solution envelope" >&2
  exit 1
}
echo "$serve_out" | grep -q '"status":"fault".*"kind":"budget"' || {
  echo "ci: serve did not answer the over-budget resolve with a fault" >&2
  exit 1
}
echo "$serve_out" | grep -q '"status":"infeasible"' || {
  echo "ci: serve did not flag the conflicting bounds as infeasible" >&2
  exit 1
}
echo "$serve_out" | grep -q '"status":"error"' || {
  echo "ci: serve did not answer the garbage line with an error" >&2
  exit 1
}
echo "ci: serve smoke OK (ok / fault / infeasible / error envelopes)"

# Fault-injection gate: planting an unexpected runtime fault of each kind
# (raise / virtual-clock stall / step-budget blowout) into the supervised
# batch property must make every case fail, with each failure isolated to
# its case and shrunk to a reproducer — the harness proving it catches
# engine-level misbehavior, not just wrong levels.
for kind in raise stall blowout; do
  out=$(dune exec -- mlsclassify selfcheck --seed 42 --cases 3 --jobs 2 \
    --inject-fault "$kind" 2>&1) && {
    echo "ci: selfcheck --inject-fault $kind was not caught" >&2
    exit 1
  }
  echo "$out" | grep -q 'property=supervised' || {
    echo "ci: --inject-fault $kind failures not attributed to supervision" >&2
    exit 1
  }
  echo "$out" | grep -q 'repro (shrunk)' || {
    echo "ci: --inject-fault $kind failures were not shrunk" >&2
    exit 1
  }
  echo "ci: inject-fault $kind caught, isolated, and shrunk"
done

# Supervision overhead gate: budgets + retry bookkeeping on the PR1
# throughput workloads (no fault fires) must stay within 2% of the
# unsupervised engine; the experiment also re-checks output parity and
# that the fault counters report 0 in phase_metrics.
dune exec bench/main.exe -- supervision
grep -q '"engine/retries": 0' BENCH_PR4.json || {
  echo "ci: BENCH_PR4.json is missing zero-valued fault counters" >&2
  exit 1
}
overhead=$(sed -n 's/.*"overhead_pct_max": \([-0-9.e+]*\).*/\1/p' BENCH_PR4.json)
awk "BEGIN { exit !($overhead <= 2.0) }" || {
  echo "ci: supervision overhead ${overhead}% exceeds the 2% budget" >&2
  exit 1
}
echo "ci: supervision overhead ${overhead}% (budget 2%)"

# Session incrementality gate: single-constraint deltas on an acyclic
# problem must resolve at least 2x faster through a session than a
# from-scratch compile-and-solve (the experiment also re-checks that
# every incremental resolve equals the scratch solution bit for bit).
dune exec bench/main.exe -- session-incremental
speedup=$(sed -n 's/.*"median_speedup": \([-0-9.e+]*\),.*/\1/p' BENCH_PR5.json | tail -n 1)
awk "BEGIN { exit !($speedup >= 2.0) }" || {
  echo "ci: session incremental speedup ${speedup}x below the 2x floor" >&2
  exit 1
}
echo "ci: session incremental speedup ${speedup}x (floor 2x)"

echo "ci: OK"
