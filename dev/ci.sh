#!/bin/sh
# Repo CI: build everything, run the full test suite, then a fast parity
# smoke of the parallel batch engine (jobs=2 vs sequential on small
# acyclic + cyclic batches; the experiment exits nonzero on the first
# divergence).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- throughput-smoke

echo "ci: OK"
