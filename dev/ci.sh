#!/bin/sh
# Repo CI: build everything, run the full test suite, then a fast parity
# smoke of the parallel batch engine (jobs=2 vs sequential on small
# acyclic + cyclic batches; the experiment exits nonzero on the first
# divergence).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- throughput-smoke

# Observability smoke: a traced + metered parallel batch, then validate
# the artifacts (Chrome-trace span nesting, JSON well-formedness).
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
dune exec -- mlsclassify batch -l test/cli.t/fig1b.lat --jobs 2 \
  --trace "$obs_tmp/trace.json" --metrics-json "$obs_tmp/metrics.json" \
  test/cli.t/employee.cst test/cli.t/employee.cst > /dev/null
dune exec dev/validate_trace.exe -- "$obs_tmp/trace.json"
dune exec dev/validate_trace.exe -- --json "$obs_tmp/metrics.json"

# Differential self-check: a pinned-seed bounded run of the property
# harness (solver vs oracle/baselines/round-trips across all backends).
dune exec -- mlsclassify selfcheck --seed 42 --cases 60 --jobs 2

echo "ci: OK"
