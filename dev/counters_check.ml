(* Baseline Instr counters on the acyclic n=2000 workload (bench seed 17). *)
open Minup_lattice
module ST = Minup_core.Solver.Make (Total)
module Instr = Minup_core.Instr
module Gen = Minup_workload.Gen_constraints
module Prng = Minup_workload.Prng

let ladder16 = Total.create (List.init 16 (Printf.sprintf "S%d"))

let () =
  let rng = Prng.create 17 in
  let attrs, csts =
    Gen.acyclic rng
      { Gen.n_attrs = 2000; n_simple = 4000; n_complex = 1000; max_lhs = 4;
        n_constants = 500; constants = List.init 16 Fun.id }
  in
  let p = ST.compile_exn ~lattice:ladder16 ~attrs csts in
  let sol = ST.solve p in
  Format.printf "%a@." Instr.pp sol.ST.stats
