(* Chrome-trace / JSON validator for CI (dev/ci.sh).

   validate_trace.exe FILE          validate FILE as a Chrome trace:
                                    top-level object, "traceEvents" array,
                                    every B event matched by an E of the
                                    same name on the same tid (properly
                                    nested), timestamps present.
   validate_trace.exe --json FILE   parse-only: FILE must be valid JSON.

   Prints a one-line summary on success; prints the failure and exits 1
   otherwise. *)

module Json = Minup_obs.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error m -> die "validate_trace: %s" m

let parse path =
  match Json.parse (read_file path) with
  | Ok j -> j
  | Error m -> die "validate_trace: %s: invalid JSON: %s" path m

let str_field e k =
  match Json.member k e with Some (Json.Str s) -> Some s | _ -> None

let num_field e k =
  match Json.member k e with Some (Json.Num v) -> Some v | _ -> None

let validate_trace path =
  let j = parse path in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.Arr es) -> es
    | Some _ -> die "validate_trace: %s: \"traceEvents\" is not an array" path
    | None -> die "validate_trace: %s: no \"traceEvents\" field" path
  in
  (* Per-tid stack of open span names: B pushes, E must pop a matching
     name — exactly the nesting contract chrome://tracing enforces. *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let n_spans = ref 0 and n_instants = ref 0 and n_meta = ref 0 in
  List.iteri
    (fun i e ->
      let ph =
        match str_field e "ph" with
        | Some p -> p
        | None -> die "validate_trace: %s: event %d has no \"ph\"" path i
      in
      let name = Option.value (str_field e "name") ~default:"?" in
      let tid =
        match num_field e "tid" with
        | Some t -> int_of_float t
        | None -> die "validate_trace: %s: event %d (%s) has no \"tid\"" path i name
      in
      if ph <> "M" && num_field e "ts" = None then
        die "validate_trace: %s: event %d (%s) has no \"ts\"" path i name;
      match ph with
      | "M" -> incr n_meta
      | "i" -> incr n_instants
      | "B" ->
          let st = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
          Hashtbl.replace stacks tid (name :: st)
      | "E" -> (
          incr n_spans;
          match Hashtbl.find_opt stacks tid with
          | Some (top :: rest) when top = name ->
              Hashtbl.replace stacks tid rest
          | Some (top :: _) ->
              die
                "validate_trace: %s: event %d: E %S on tid %d but innermost \
                 open span is %S"
                path i name tid top
          | _ ->
              die "validate_trace: %s: event %d: E %S on tid %d with no open span"
                path i name tid)
      | _ -> die "validate_trace: %s: event %d: unknown ph %S" path i ph)
    events;
  Hashtbl.iter
    (fun tid st ->
      match st with
      | [] -> ()
      | names ->
          die "validate_trace: %s: tid %d ends with unclosed span(s): %s" path
            tid
            (String.concat ", " (List.map (Printf.sprintf "%S") names)))
    stacks;
  Printf.printf
    "validate_trace: %s ok: %d events (%d spans, %d instants, %d metadata)\n"
    path (List.length events) !n_spans !n_instants !n_meta

let validate_json path =
  ignore (parse path);
  Printf.printf "validate_trace: %s ok: valid JSON\n" path

let () =
  match Array.to_list Sys.argv with
  | [ _; "--json"; path ] -> validate_json path
  | [ _; path ] -> validate_trace path
  | _ -> die "usage: validate_trace [--json] FILE"
