bench/main.mli:
