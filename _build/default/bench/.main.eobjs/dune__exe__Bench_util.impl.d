bench/bench_util.ml: Analyze Bechamel Benchmark Float Hashtbl List Measure Printf String Test Time Toolkit Unix
