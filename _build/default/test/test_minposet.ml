open Minup_lattice
open Minup_poset

let case = Helpers.case

(* The Fig. 4(b) butterfly: an attribute required to dominate both minimal
   elements must pick one of the two incomparable maximal ones — the choice
   that makes min-poset hard. *)
let butterfly_choice () =
  let b = Poset.butterfly in
  let e = Poset.of_name_exn b in
  let p =
    Minposet.compile_exn b [ "w" ]
      [ Minposet.Geq_elt ("w", e "c"); Minposet.Geq_elt ("w", e "d") ]
  in
  (match Minposet.satisfiable p with
  | Some sol ->
      Alcotest.(check bool) "w maximal" true (sol.(0) = e "a" || sol.(0) = e "b")
  | None -> Alcotest.fail "satisfiable");
  match Minposet.minimal_solutions p with
  | Ok sols -> Alcotest.(check int) "two minimal solutions" 2 (List.length sols)
  | Error `Too_large -> Alcotest.fail "too large"

let unsatisfiable () =
  let b = Poset.butterfly in
  let e = Poset.of_name_exn b in
  (* w ⊒ a and w ⊑ c is impossible. *)
  let p =
    Minposet.compile_exn b [ "w" ]
      [ Minposet.Geq_elt ("w", e "a"); Minposet.Leq_elt ("w", e "c") ]
  in
  Alcotest.(check bool) "unsat" true (Minposet.satisfiable p = None)

let attr_chain () =
  let b = Poset.butterfly in
  let e = Poset.of_name_exn b in
  let p =
    Minposet.compile_exn b [ "x"; "y" ]
      [ Minposet.Geq_attr ("x", "y"); Minposet.Geq_elt ("y", e "c") ]
  in
  match Minposet.satisfiable p with
  | Some sol ->
      Alcotest.(check bool) "x ⊒ y" true
        (Poset.leq b sol.(Minposet.attr_id_exn p "y") sol.(Minposet.attr_id_exn p "x"))
  | None -> Alcotest.fail "satisfiable"

let lub_constraint () =
  (* In a chain x ⊑ y ⊑ z: lub{a1,a2} ⊒ t behaves like max. *)
  let c =
    Poset.create_exn ~names:[ "x"; "y"; "z" ] ~order:[ ("x", "y"); ("y", "z") ]
  in
  let e = Poset.of_name_exn c in
  let p =
    Minposet.compile_exn c [ "a1"; "a2"; "t" ]
      [
        Minposet.Lub_geq ([ "a1"; "a2" ], "t");
        Minposet.Geq_elt ("t", e "z");
      ]
  in
  match Minposet.satisfiable p with
  | Some sol ->
      let v a = sol.(Minposet.attr_id_exn p a) in
      Alcotest.(check bool) "some lhs reaches z" true
        (v "a1" = e "z" || v "a2" = e "z")
  | None -> Alcotest.fail "satisfiable"

let minimize_descends () =
  let b = Poset.butterfly in
  let e = Poset.of_name_exn b in
  let p = Minposet.compile_exn b [ "w" ] [ Minposet.Geq_elt ("w", e "c") ] in
  let start = [| e "a" |] in
  let m = Minposet.minimize p start in
  Alcotest.(check int) "lowered to c" (e "c") m.(0)

let errors () =
  (match Minposet.compile Poset.butterfly [ "w" ] [ Minposet.Geq_attr ("w", "zz") ] with
  | Error (Minposet.Unknown_attr "zz") -> ()
  | _ -> Alcotest.fail "accepted unknown attr");
  match Minposet.compile Poset.butterfly [ "w" ] [ Minposet.Lub_geq ([], "w") ] with
  | Error Minposet.Empty_lub -> ()
  | _ -> Alcotest.fail "accepted empty lub"

(* Backtracking agrees with exhaustive enumeration. *)
let satisfiable_equals_enumeration =
  QCheck.Test.make ~count:80 ~name:"backtracking = exhaustive satisfiability"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let n = 5 in
      let names = List.init n (Printf.sprintf "e%d") in
      let order =
        List.concat
          (List.init n (fun i ->
               List.filter_map
                 (fun j ->
                   if j > i && Minup_workload.Prng.bool rng then
                     Some (Printf.sprintf "e%d" i, Printf.sprintf "e%d" j)
                   else None)
                 (List.init n Fun.id)))
      in
      let poset = Poset.create_exn ~names ~order in
      let elt () = Minup_workload.Prng.int rng n in
      let attrs = [ "a"; "b"; "c" ] in
      let csts =
        [
          Minposet.Geq_elt ("a", elt ());
          Minposet.Leq_elt ("b", elt ());
          Minposet.Geq_attr ("a", "b");
          Minposet.Geq_attr ("c", "a");
          Minposet.Geq_elt ("c", elt ());
        ]
      in
      let p = Minposet.compile_exn poset attrs csts in
      let bt = Minposet.satisfiable p in
      (match bt with Some s -> Minposet.satisfies p s | None -> true)
      &&
      match Minposet.all_solutions p with
      | Ok sols -> (bt <> None) = (sols <> [])
      | Error `Too_large -> true)

let suite =
  [
    case "butterfly forces a choice" butterfly_choice;
    case "unsatisfiable bounds" unsatisfiable;
    case "attribute chain" attr_chain;
    case "lub constraint" lub_constraint;
    case "minimize descends" minimize_descends;
    case "compile errors" errors;
    Helpers.qcheck satisfiable_equals_enumeration;
  ]
