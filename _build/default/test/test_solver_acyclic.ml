(* Back-propagation (§3.1): acyclic constraint sets. *)

open Minup_lattice
open Helpers

let case = Helpers.case

let no_constraints () =
  let p = S.compile_exn ~lattice:fig1b ~attrs:[ "a"; "b" ] [] in
  let sol = S.solve p in
  (* Completeness default: unconstrained attributes rest at ⊥. *)
  Array.iter
    (fun l -> Alcotest.check (level_t fig1b) "bottom" (lvl "L1") l)
    sol.S.levels

let chain_propagation () =
  (* a ⊒ b ⊒ c ⊒ L5: everything must reach L5, nothing more. *)
  let sol =
    solve_names fig1b
      [ attr_cst "a" "b"; attr_cst "b" "c"; level_cst "c" "L5" ]
  in
  Alcotest.(check (list (pair string string)))
    "all at L5"
    [ ("a", "L5"); ("b", "L5"); ("c", "L5") ]
    (List.sort compare sol)

let lub_of_floors () =
  (* a ⊒ L2 and a ⊒ L3 force a to their lub L4. *)
  let sol = solve_names fig1b [ level_cst "a" "L2"; level_cst "a" "L3" ] in
  Alcotest.(check (list (pair string string))) "lub" [ ("a", "L4") ] sol

let complex_last_attr_upgraded () =
  (* lub{a,b} ⊒ L6 with a ⊒ L4: the solver upgrades exactly one attribute
     minimally.  Whatever the choice, the result must be minimal. *)
  check_solution_minimal fig1b
    [ assoc_cst [ "a"; "b" ] "L6"; level_cst "a" "L4" ]

let complex_already_satisfied () =
  (* lub{a,b} ⊒ L4 where floors already cover it: no upgrading at all. *)
  let sol =
    solve_names fig1b
      [ assoc_cst [ "a"; "b" ] "L4"; level_cst "a" "L2"; level_cst "b" "L3" ]
  in
  Alcotest.(check (list (pair string string)))
    "floors suffice"
    [ ("a", "L2"); ("b", "L3") ]
    (List.sort compare sol)

let inference_constraint () =
  (* lub{rank, dept} ⊒ salary, salary ⊒ L5. *)
  let p =
    S.compile_exn ~lattice:fig1b
      [ infer_cst [ "rank"; "dept" ] "salary"; level_cst "salary" "L5" ]
  in
  let sol = S.solve p in
  Alcotest.(check bool) "satisfies" true (S.satisfies p sol.S.levels);
  let l a = Option.get (S.find p sol a) in
  Alcotest.(check bool) "lub covers salary" true
    (Explicit.leq fig1b (l "salary")
       (Explicit.lub fig1b (l "rank") (l "dept")));
  match V.is_minimal_solution p sol.S.levels with
  | Ok b -> Alcotest.(check bool) "minimal" true b
  | Error `Too_large -> Alcotest.fail "oracle too large"

let shared_lhs_attrs () =
  (* Two complex constraints sharing an attribute (the §3.2 worry), but
     acyclically. *)
  check_solution_minimal fig1b
    [
      assoc_cst [ "a"; "b" ] "L4";
      assoc_cst [ "b"; "c" ] "L5";
      assoc_cst [ "a"; "c" ] "L6";
    ]

let unique_minimal_matches_oracle () =
  (* Simple constraints only: the minimal solution is unique, so the solver
     must return exactly the oracle's answer. *)
  let csts =
    [
      level_cst "w" "L2";
      attr_cst "x" "w";
      attr_cst "y" "x";
      level_cst "y" "L3";
      attr_cst "z" "y";
    ]
  in
  let p = S.compile_exn ~lattice:fig1b csts in
  let sol = S.solve p in
  match V.minimal_solutions p with
  | Error `Too_large -> Alcotest.fail "oracle too large"
  | Ok [ unique ] ->
      Alcotest.(check bool) "matches unique minimal" true
        (V.equal_assignment fig1b unique sol.S.levels)
  | Ok l -> Alcotest.failf "expected unique minimal solution, got %d" (List.length l)

let larger_lattice () =
  (* Same behaviors on a product-of-chains lattice. *)
  let lat = Minup_workload.Gen_lattice.chain_product [ 2; 2 ] in
  let lx = Explicit.of_name_exn lat in
  let csts =
    [
      Cst.simple "a" (Cst.Level (lx "2.0"));
      Cst.simple "a" (Cst.Level (lx "0.2"));
      Cst.simple "b" (Cst.Attr "a");
    ]
  in
  let p = S.compile_exn ~lattice:lat csts in
  let sol = S.solve p in
  let l a = Option.get (S.find p sol a) in
  Alcotest.check (level_t lat) "a at lub" (lx "2.2") (l "a");
  Alcotest.check (level_t lat) "b follows" (lx "2.2") (l "b")

(* Property: on random acyclic instances over random lattices the solver
   satisfies the constraints and is minimal (checked by the exhaustive
   oracle on the down-set product). *)
let random_acyclic_prop =
  QCheck.Test.make ~count:40 ~name:"random acyclic: satisfies and minimal"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:4
          ~n_generators:3 ~max_size:12
      in
      let levels = Explicit.all lat in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 6;
            n_simple = 5;
            n_complex = 2;
            max_lhs = 3;
            n_constants = 3;
            constants = levels;
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.acyclic rng spec in
      let p = S.compile_exn ~lattice:lat ~attrs csts in
      let sol = S.solve p in
      S.satisfies p sol.S.levels
      &&
      match V.is_minimal_solution ~cap:250_000 p sol.S.levels with
      | Ok b -> b
      | Error `Too_large -> true (* oracle out of budget: skip this case *))

let suite =
  [
    case "no constraints → all bottom" no_constraints;
    case "chain propagation" chain_propagation;
    case "lub of floors" lub_of_floors;
    case "complex constraint upgraded minimally" complex_last_attr_upgraded;
    case "complex already satisfied" complex_already_satisfied;
    case "inference constraint" inference_constraint;
    case "intersecting complex lhs" shared_lhs_attrs;
    case "unique minimal matches oracle" unique_minimal_matches_oracle;
    case "product-of-chains lattice" larger_lattice;
    Helpers.qcheck random_acyclic_prop;
  ]
