(* Large-instance properties: the exhaustive oracle cannot reach these
   sizes, but the polynomial replay checker (validated against the oracle
   in test_explain) can — so minimality is asserted on problems two orders
   of magnitude bigger than the oracle-backed suites. *)

open Minup_lattice
module ST = Minup_core.Solver.Make (Total)
module ExT = Minup_core.Explain.Make (Total)
module SE = Helpers.S
module ExE = Minup_core.Explain.Make (Explicit)

let case = Helpers.case
let ladder = Total.create (List.init 16 (Printf.sprintf "S%d"))

let spec n =
  Minup_workload.Gen_constraints.
    {
      n_attrs = n;
      n_simple = 2 * n;
      n_complex = n / 2;
      max_lhs = 4;
      n_constants = n / 3;
      constants = List.init 16 Fun.id;
    }

let large_acyclic =
  QCheck.Test.make ~count:20 ~name:"large acyclic (100 attrs): minimal by replay"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let attrs, csts = Minup_workload.Gen_constraints.acyclic rng (spec 100) in
      let p = ST.compile_exn ~lattice:ladder ~attrs csts in
      let sol = ST.solve p in
      ST.satisfies p sol.ST.levels && ExT.is_locally_minimal p sol.ST.levels)

let large_mixed =
  QCheck.Test.make ~count:20 ~name:"large mixed SCCs (80 attrs): minimal by replay"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let attrs, csts =
        Minup_workload.Gen_constraints.mixed rng (spec 80) ~n_islands:4
          ~island_size:10
      in
      let p = ST.compile_exn ~lattice:ladder ~attrs csts in
      let sol = ST.solve p in
      ST.satisfies p sol.ST.levels && ExT.is_locally_minimal p sol.ST.levels)

let large_cyclic_explicit =
  QCheck.Test.make ~count:15
    ~name:"large single SCC over Fig. 1(b): minimal by replay" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 50;
            n_simple = 30;
            n_complex = 12;
            max_lhs = 3;
            n_constants = 10;
            constants = Explicit.all Helpers.fig1b;
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.single_scc rng spec in
      let p = SE.compile_exn ~lattice:Helpers.fig1b ~attrs csts in
      let sol = SE.solve p in
      SE.satisfies p sol.SE.levels && ExE.is_locally_minimal p sol.SE.levels)

let bounded_still_minimal =
  QCheck.Test.make ~count:20
    ~name:"bounded solutions remain globally minimal (replay)" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let attrs, csts = Minup_workload.Gen_constraints.acyclic rng (spec 60) in
      let p = ST.compile_exn ~lattice:ladder ~attrs csts in
      (* Cap a handful of attributes high enough to stay consistent. *)
      let bounds =
        List.filteri (fun i _ -> i mod 9 = 0) attrs |> List.map (fun a -> (a, 13))
      in
      match ST.solve_with_bounds p bounds with
      | Error _ -> true (* bound conflicts with a floor: nothing to assert *)
      | Ok sol ->
          ST.satisfies p sol.ST.levels && ExT.is_locally_minimal p sol.ST.levels)

let fig2_replay () =
  let p =
    SE.compile_exn ~lattice:Helpers.fig1b ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let sol = SE.solve p in
  Alcotest.(check bool) "Fig. 2 minimal by replay" true
    (ExE.is_locally_minimal p sol.SE.levels)

let suite =
  [
    Helpers.qcheck large_acyclic;
    Helpers.qcheck large_mixed;
    Helpers.qcheck large_cyclic_explicit;
    Helpers.qcheck bounded_still_minimal;
    case "Fig. 2 via replay checker" fig2_replay;
  ]
