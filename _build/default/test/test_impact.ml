open Minup_lattice
open Helpers
module Impact = Minup_core.Impact.Make (Explicit)

let case = Helpers.case

let adding_floor_raises () =
  let base = [ level_cst "a" "L2"; attr_cst "b" "a" ] in
  match
    Impact.of_added_constraints ~lattice:fig1b ~base
      ~added:[ level_cst "a" "L4" ] ()
  with
  | Error e -> Alcotest.failf "impact: %a" Minup_constraints.Problem.pp_error e
  | Ok r ->
      Alcotest.(check int) "two raised" 2 (List.length r.Impact.changes);
      List.iter
        (fun c ->
          (match c.Impact.move with
          | Impact.Raised -> ()
          | _ -> Alcotest.fail "expected Raised");
          Alcotest.check (level_t fig1b) "to L4" (lvl "L4") c.Impact.after)
        r.Impact.changes

let no_change_when_implied () =
  let base = [ level_cst "a" "L4" ] in
  match
    Impact.of_added_constraints ~lattice:fig1b ~base
      ~added:[ level_cst "a" "L2" ] ()
  with
  | Error _ -> Alcotest.fail "impact"
  | Ok r ->
      Alcotest.(check int) "nothing moved" 0 (List.length r.Impact.changes);
      Alcotest.(check int) "one unchanged" 1 r.Impact.unchanged

let new_attr_added () =
  match
    Impact.of_added_constraints ~lattice:fig1b ~base:[ level_cst "a" "L2" ]
      ~added:[ level_cst "fresh" "L3" ] ()
  with
  | Error _ -> Alcotest.fail "impact"
  | Ok r -> (
      match r.Impact.changes with
      | [ { Impact.attr = "fresh"; before = None; move = Impact.Added; _ } ] -> ()
      | _ -> Alcotest.fail "expected a single Added change")

let shift_detected () =
  (* Adding a floor on the preferred absorber flips which attribute of an
     association is upgraded: one attr rises, the other falls —
     incomparable moves possible too. *)
  let base = [ assoc_cst [ "a"; "b" ] "L6"; level_cst "a" "L5" ] in
  (* base: a=L5 forces ... and b absorbs or a already covers? lub(L5,⊥)=L5 ⊉ L6,
     so the later-considered attribute absorbs the rest. *)
  match
    Impact.of_added_constraints ~lattice:fig1b ~base
      ~added:[ level_cst "b" "L4" ] ()
  with
  | Error _ -> Alcotest.fail "impact"
  | Ok r ->
      (* Whatever the exact moves, the new solution must satisfy and be
         minimal, and pp must render. *)
      let rendered = Format.asprintf "%a" (Impact.pp_report fig1b) r in
      Alcotest.(check bool) "renders" true (String.length rendered > 0)

let diff_direct () =
  let changes =
    Impact.diff fig1b
      ~before:[ ("x", lvl "L2"); ("y", lvl "L3") ]
      ~after:[ ("x", lvl "L2"); ("y", lvl "L2") ]
  in
  match changes with
  | [ { Impact.attr = "y"; move = Impact.Shifted; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single Shifted change for y"

let suite =
  [
    case "adding a floor raises" adding_floor_raises;
    case "implied constraint changes nothing" no_change_when_implied;
    case "new attribute reported as Added" new_attr_added;
    case "association shift renders" shift_detected;
    case "diff classification" diff_direct;
  ]
