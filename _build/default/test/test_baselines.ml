(* Baselines: Qian-style overclassifier, backtracking alternative, topmost,
   and the information-loss measures. *)

open Minup_lattice
open Helpers
module Qian = Minup_baselines.Qian.Make (Explicit)
module Backtrack = Minup_baselines.Backtrack.Make (Explicit)
module Topmost = Minup_baselines.Topmost.Make (Explicit)
module Loss = Minup_baselines.Loss.Make (Explicit)

let case = Helpers.case

let ranker () =
  let rank = Loss.ranker fig1b in
  List.iter
    (fun (l, r) -> Alcotest.(check int) l r (rank (lvl l)))
    [ ("L1", 0); ("L2", 1); ("L3", 1); ("L4", 2); ("L5", 2); ("L6", 3) ]

let loss_measures () =
  let reference = [| lvl "L1"; lvl "L2" |] in
  let candidate = [| lvl "L4"; lvl "L2" |] in
  Alcotest.(check int) "one overclassified" 1
    (Loss.n_overclassified fig1b ~reference candidate);
  Alcotest.(check int) "excess rank 2" 2
    (Loss.excess_rank fig1b ~reference candidate);
  Alcotest.(check int) "self loss" 0 (Loss.excess_rank fig1b ~reference reference)

let qian_satisfies_fig2 () =
  let p =
    S.compile_exn ~lattice:fig1b ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let q = Qian.solve p in
  Alcotest.(check bool) "satisfies" true (S.satisfies p q)

let qian_overclassifies () =
  (* §3.1 example: Qian raises both A and B; the algorithm raises one. *)
  let p = S.compile_exn ~lattice:fig1b Minup_core.Paper.sec31_constraints in
  let q = Qian.solve p in
  let id x = Option.get (Minup_constraints.Problem.attr_id p.S.prob x) in
  Alcotest.check (level_t fig1b) "A raised to L4" (lvl "L4") q.(id "A");
  Alcotest.check (level_t fig1b) "B raised to L4" (lvl "L4") q.(id "B");
  Alcotest.(check bool) "not minimal" true
    (V.is_minimal_solution p q = Ok false);
  let sol = S.solve p in
  Alcotest.(check bool) "solver strictly better" true
    (Loss.excess_rank fig1b ~reference:sol.S.levels q > 0)

let qian_satisfies_random =
  QCheck.Test.make ~count:60 ~name:"qian always satisfies" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 8;
            n_simple = 7;
            n_complex = 3;
            max_lhs = 3;
            n_constants = 3;
            constants = Explicit.all fig1b;
          }
      in
      let attrs, csts =
        if Minup_workload.Prng.bool rng then
          Minup_workload.Gen_constraints.acyclic rng spec
        else Minup_workload.Gen_constraints.single_scc rng spec
      in
      let p = S.compile_exn ~lattice:fig1b ~attrs csts in
      S.satisfies p (Qian.solve p))

let topmost () =
  let p = S.compile_exn ~lattice:fig1b Minup_core.Paper.sec31_constraints in
  let t = Topmost.solve p in
  Alcotest.(check bool) "satisfies" true (S.satisfies p t);
  Array.iter (fun l -> Alcotest.check (level_t fig1b) "top" (lvl "L6") l) t

let backtrack_search_space () =
  let p =
    S.compile_exn ~lattice:fig1b
      [
        assoc_cst [ "a"; "b" ] "L4";
        assoc_cst [ "c"; "d"; "e" ] "L5";
        level_cst "a" "L2";
      ]
  in
  Alcotest.(check (option int)) "2*3 choices" (Some 6) (Backtrack.search_space p)

let backtrack_finds_minimal () =
  let p = S.compile_exn ~lattice:fig1b Minup_core.Paper.sec31_constraints in
  match Backtrack.solve p with
  | None -> Alcotest.fail "no solution found"
  | Some sol ->
      Alcotest.(check bool) "satisfies" true (S.satisfies p sol);
      Alcotest.(check bool) "minimal" true (V.is_minimal_solution p sol = Ok true)

let backtrack_candidates_satisfy () =
  let p =
    S.compile_exn ~lattice:fig1b
      [
        assoc_cst [ "a"; "b" ] "L6";
        infer_cst [ "b"; "c" ] "a";
        level_cst "c" "L2";
      ]
  in
  let cands = Backtrack.candidates p in
  Alcotest.(check bool) "nonempty" true (cands <> []);
  List.iter
    (fun (c : Backtrack.candidate) ->
      Alcotest.(check bool) "candidate satisfies" true (S.satisfies p c.levels))
    cands

let backtrack_guard () =
  let big =
    List.init 20 (fun i ->
        Cst.make_exn
          ~lhs:[ Printf.sprintf "x%d" i; Printf.sprintf "y%d" i; Printf.sprintf "z%d" i ]
          ~rhs:(Cst.Level (lvl "L4")))
  in
  let p = S.compile_exn ~lattice:fig1b big in
  Alcotest.check_raises "guard"
    (Invalid_argument "Backtrack.solve: choice space too large") (fun () ->
      ignore (Backtrack.solve ~max_space:1000 p))

let backtrack_agrees_with_solver =
  QCheck.Test.make ~count:40
    ~name:"backtracking baseline reaches a minimal solution too"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 5;
            n_simple = 3;
            n_complex = 2;
            max_lhs = 2;
            n_constants = 2;
            constants = Explicit.all fig1b;
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.acyclic rng spec in
      let p = S.compile_exn ~lattice:fig1b ~attrs csts in
      match Backtrack.solve p with
      | None -> false
      | Some sol ->
          S.satisfies p sol
          && V.is_minimal_solution ~cap:150_000 p sol <> Ok false)

let suite =
  [
    case "rank function" ranker;
    case "loss measures" loss_measures;
    case "qian satisfies Fig. 2" qian_satisfies_fig2;
    case "qian overclassifies §3.1" qian_overclassifies;
    Helpers.qcheck qian_satisfies_random;
    case "topmost baseline" topmost;
    case "backtrack search space" backtrack_search_space;
    case "backtrack finds a minimal solution" backtrack_finds_minimal;
    case "backtrack candidates satisfy" backtrack_candidates_satisfy;
    case "backtrack guard" backtrack_guard;
    Helpers.qcheck backtrack_agrees_with_solver;
  ]
