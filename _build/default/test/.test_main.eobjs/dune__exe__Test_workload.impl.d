test/test_workload.ml: Alcotest Array Explicit Fun Helpers List Minup_constraints Minup_lattice Minup_workload QCheck
