test/test_dot.ml: Alcotest Dot Explicit Helpers List Minup_lattice Poset String
