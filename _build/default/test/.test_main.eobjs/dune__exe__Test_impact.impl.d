test/test_impact.ml: Alcotest Explicit Format Helpers List Minup_constraints Minup_core Minup_lattice String
