test/test_solver_acyclic.ml: Alcotest Array Cst Explicit Helpers List Minup_lattice Minup_workload Option QCheck S V
