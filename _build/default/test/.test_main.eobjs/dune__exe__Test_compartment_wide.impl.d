test/test_compartment_wide.ml: Alcotest Array Check Compartment Compartment_wide Helpers List Minup_constraints Minup_core Minup_lattice Option Printf Seq
