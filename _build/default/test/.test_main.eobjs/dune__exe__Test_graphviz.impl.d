test/test_graphviz.ml: Alcotest Helpers List Minup_constraints Minup_core Minup_lattice String
