test/test_explicit.ml: Alcotest Check Explicit Helpers List Minup_lattice Minup_workload QCheck
