test/helpers.ml: Alcotest Explicit List Minup_constraints Minup_core Minup_lattice QCheck QCheck_alcotest
