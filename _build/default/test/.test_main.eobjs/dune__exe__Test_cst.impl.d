test/test_cst.ml: Alcotest Format Helpers Minup_constraints
