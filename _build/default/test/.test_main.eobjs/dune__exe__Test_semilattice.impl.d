test/test_semilattice.ml: Alcotest Check Explicit Helpers Minup_lattice Semilattice
