test/test_stats.ml: Alcotest Helpers Minup_constraints Minup_core Minup_workload
