test/test_preference.ml: Alcotest Array Hashtbl Helpers List Minup_core Minup_lattice Minup_workload QCheck S V
