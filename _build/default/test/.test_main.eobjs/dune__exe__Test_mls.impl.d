test/test_mls.ml: Alcotest Array Explicit Extract Fd Helpers Instance List Minup_constraints Minup_lattice Minup_mls Option Schema String
