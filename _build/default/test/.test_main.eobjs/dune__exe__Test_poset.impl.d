test/test_poset.ml: Alcotest Fun Helpers List Minup_lattice Minup_workload Poset Printf QCheck
