test/test_stress.ml: Alcotest Array Helpers List Minup_constraints Minup_core Minup_lattice Option Powerset Printf Total
