test/test_hasse.ml: Alcotest Array Bitset Hasse Helpers List Minup_lattice QCheck
