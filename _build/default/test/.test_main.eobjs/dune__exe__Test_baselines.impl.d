test/test_baselines.ml: Alcotest Array Cst Explicit Helpers List Minup_baselines Minup_constraints Minup_core Minup_lattice Minup_workload Option Printf QCheck S V
