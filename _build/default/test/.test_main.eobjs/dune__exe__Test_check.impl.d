test/test_check.ml: Alcotest Check Helpers Lattice_intf Minup_lattice Powerset String Total
