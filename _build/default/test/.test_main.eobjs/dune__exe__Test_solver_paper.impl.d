test/test_solver_paper.ml: Alcotest Array Explicit Helpers List Minup_constraints Minup_core Minup_lattice Option S V
