test/test_fd.ml: Alcotest Fd Helpers List Minup_mls Minup_workload QCheck
