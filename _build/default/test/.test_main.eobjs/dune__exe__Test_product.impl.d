test/test_product.ml: Alcotest Check Helpers List Minup_lattice Powerset Product Total
