test/test_powerset.ml: Alcotest Check Helpers Minup_lattice Powerset QCheck
