test/test_priorities.ml: Alcotest Array Fun Helpers List Minup_constraints Minup_core Minup_workload Option Printf QCheck
