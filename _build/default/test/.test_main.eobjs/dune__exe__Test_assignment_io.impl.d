test/test_assignment_io.ml: Alcotest Array Explicit Helpers List Minup_core Minup_lattice S
