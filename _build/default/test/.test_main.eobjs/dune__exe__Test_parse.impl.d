test/test_parse.ml: Alcotest Compartment Helpers List Minup_constraints Minup_lattice Minup_workload QCheck Total
