test/test_sat.ml: Alcotest Array Helpers Minup_poset Minup_workload QCheck Sat
