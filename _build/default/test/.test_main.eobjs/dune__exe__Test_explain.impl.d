test/test_explain.ml: Alcotest Explicit Format Helpers List Minup_constraints Minup_core Minup_lattice Minup_workload QCheck S String V
