test/test_theory.ml: Alcotest Check Explicit Helpers List Minup_lattice Minup_workload QCheck Theory
