test/test_residual.ml: Alcotest Array Compartment Helpers Minup_constraints Minup_core Minup_lattice Minup_workload QCheck Total
