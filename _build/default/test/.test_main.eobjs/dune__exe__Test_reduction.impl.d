test/test_reduction.ml: Alcotest Array Helpers Minposet Minup_lattice Minup_poset Minup_workload Option Poset QCheck Reduction Sat
