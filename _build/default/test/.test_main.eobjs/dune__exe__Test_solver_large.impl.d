test/test_solver_large.ml: Alcotest Explicit Fun Helpers List Minup_core Minup_lattice Minup_workload Printf QCheck Total
