test/test_total.ml: Alcotest Check Helpers List Minup_lattice QCheck Total
