test/test_lattice_file.ml: Alcotest Explicit Helpers Lattice_file List Minup_lattice Semilattice String
