test/test_encode.ml: Alcotest Encode Explicit Helpers List Minup_lattice Minup_workload Printf QCheck
