test/test_solver_cyclic.ml: Alcotest Explicit Helpers List Minup_lattice Minup_workload Option QCheck S V
