test/test_problem.ml: Alcotest Array Helpers List Minup_constraints Option
