test/test_compartment.ml: Alcotest Check Compartment Helpers Minup_lattice Option QCheck Seq
