test/test_bitset.ml: Alcotest Bitset Helpers List Minup_lattice QCheck
