test/test_scc.ml: Alcotest Array Helpers Minup_constraints Minup_core Minup_workload Option QCheck
