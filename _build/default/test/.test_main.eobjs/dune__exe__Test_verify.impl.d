test/test_verify.ml: Alcotest Helpers List Printf S V
