test/test_semis.ml: Alcotest Explicit Helpers List Minup_constraints Minup_core Minup_lattice Semilattice
