test/test_upper.ml: Alcotest Array Explicit Helpers List Minup_constraints Minup_core Minup_lattice Minup_workload Option QCheck S V
