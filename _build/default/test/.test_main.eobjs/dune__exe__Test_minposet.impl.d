test/test_minposet.ml: Alcotest Array Fun Helpers List Minposet Minup_lattice Minup_poset Minup_workload Poset Printf QCheck
