open Minup_lattice

let case = Helpers.case
let b = Poset.butterfly

let butterfly () =
  Alcotest.(check int) "cardinal" 4 (Poset.cardinal b);
  Alcotest.(check int) "height" 1 (Poset.height b);
  let e = Poset.of_name_exn b in
  Alcotest.(check bool) "c ⊑ a" true (Poset.leq b (e "c") (e "a"));
  Alcotest.(check bool) "a ⋢ b" false (Poset.leq b (e "a") (e "b"));
  Alcotest.(check (list int)) "maximal" [ e "a"; e "b" ] (Poset.maximal_elements b);
  Alcotest.(check (list int)) "minimal" [ e "c"; e "d" ] (Poset.minimal_elements b);
  Alcotest.(check (list int)) "ubs of c,d" [ e "a"; e "b" ]
    (Poset.upper_bounds b [ e "c"; e "d" ]);
  Alcotest.(check (option int)) "no lub" None (Poset.lub_opt b (e "c") (e "d"));
  Alcotest.(check bool) "not a partial lattice" false (Poset.is_partial_lattice b)

let chain_is_partial_lattice () =
  let p =
    Poset.create_exn ~names:[ "x"; "y"; "z" ] ~order:[ ("x", "y"); ("y", "z") ]
  in
  Alcotest.(check bool) "partial lattice" true (Poset.is_partial_lattice p);
  let e = Poset.of_name_exn p in
  Alcotest.(check (option int)) "lub" (Some (e "y")) (Poset.lub_opt p (e "x") (e "y"));
  Alcotest.(check (list int)) "strict below z" [ e "x"; e "y" ]
    (List.sort compare (Poset.strict_below p (e "z")))

let covers () =
  let e = Poset.of_name_exn b in
  Alcotest.(check (list int)) "covers below a" [ e "c"; e "d" ]
    (Poset.covers_below b (e "a"));
  Alcotest.(check (list int)) "covers above c" [ e "a"; e "b" ]
    (Poset.covers_above b (e "c"))

let errors () =
  (match Poset.create ~names:[] ~order:[] with
  | Error Poset.Empty -> ()
  | _ -> Alcotest.fail "accepted empty");
  (match Poset.create ~names:[ "a" ] ~order:[ ("a", "zz") ] with
  | Error (Poset.Unknown_name "zz") -> ()
  | _ -> Alcotest.fail "accepted unknown");
  match Poset.create ~names:[ "a"; "b" ] ~order:[ ("a", "b"); ("b", "a") ] with
  | Error Poset.Cyclic_order -> ()
  | _ -> Alcotest.fail "accepted cycle"

(* Property: lub_opt, when defined, is a common upper bound below all
   common upper bounds. *)
let lub_opt_prop =
  QCheck.Test.make ~count:100 ~name:"poset lub_opt is the least upper bound"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let n = 6 in
      let names = List.init n (Printf.sprintf "e%d") in
      let order =
        List.concat
          (List.init n (fun i ->
               List.filter_map
                 (fun j ->
                   if j > i && Minup_workload.Prng.bool rng then
                     Some (Printf.sprintf "e%d" i, Printf.sprintf "e%d" j)
                   else None)
                 (List.init n Fun.id)))
      in
      let p = Poset.create_exn ~names ~order in
      List.for_all
        (fun a ->
          List.for_all
            (fun c ->
              let ubs = Poset.upper_bounds p [ a; c ] in
              match Poset.lub_opt p a c with
              | Some l ->
                  List.mem l ubs && List.for_all (fun u -> Poset.leq p l u) ubs
              | None ->
                  (* Either no upper bound, or several minimal ones. *)
                  ubs = []
                  || List.length
                       (List.filter
                          (fun u ->
                            List.for_all
                              (fun v -> v = u || not (Poset.leq p v u))
                              ubs)
                          ubs)
                     > 1)
            (Poset.all p))
        (Poset.all p))

let suite =
  [
    case "butterfly (Fig. 4(b))" butterfly;
    case "chain is a partial lattice" chain_is_partial_lattice;
    case "covers" covers;
    case "creation errors" errors;
    Helpers.qcheck lub_opt_prop;
  ]
