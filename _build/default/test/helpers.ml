(* Shared test infrastructure: solver/oracle instantiations over the
   Explicit lattice, level testables, and qcheck glue. *)

open Minup_lattice
module S = Minup_core.Solver.Make (Explicit)
module V = Minup_core.Verify.Make (Explicit)
module Cst = Minup_constraints.Cst
module Problem = Minup_constraints.Problem

let fig1b = Minup_core.Paper.fig1b
let lvl name = Explicit.of_name_exn fig1b name
let level_cst attr name = Cst.simple attr (Cst.Level (lvl name))
let attr_cst attr target = Cst.simple attr (Cst.Attr target)
let assoc_cst lhs name = Cst.make_exn ~lhs ~rhs:(Cst.Level (lvl name))
let infer_cst lhs target = Cst.make_exn ~lhs ~rhs:(Cst.Attr target)

(* Alcotest testable for levels of a given lattice, compared and printed by
   name. *)
let level_t lat =
  Alcotest.testable (Explicit.pp_level lat) (fun a b -> Explicit.equal lat a b)

(* Solve and return the assignment as (attr, level-name) pairs. *)
let solve_names ?attrs lat csts =
  let p = S.compile_exn ~lattice:lat ?attrs csts in
  let sol = S.solve p in
  List.map (fun (a, l) -> (a, Explicit.level_to_string lat l)) sol.assignment

let check_solution_minimal ?cap lat ?attrs csts =
  let p = S.compile_exn ~lattice:lat ?attrs csts in
  let sol = S.solve p in
  Alcotest.(check bool) "satisfies" true (S.satisfies p sol.levels);
  match V.is_minimal_solution ?cap p sol.levels with
  | Ok b -> Alcotest.(check bool) "minimal" true b
  | Error `Too_large -> Alcotest.fail "oracle space too large"

let qcheck = QCheck_alcotest.to_alcotest

(* Arbitrary seeds; properties derive deterministic workloads from them. *)
let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let case name f = Alcotest.test_case name `Quick f
