(* Forward lowering (§3.2): cyclic constraint sets. *)

open Minup_lattice
open Helpers

let case = Helpers.case

let simple_cycle_uniform () =
  (* a ⊒ b ⊒ c ⊒ a with a floor: all members end at the floor. *)
  let sol =
    solve_names fig1b
      [ attr_cst "a" "b"; attr_cst "b" "c"; attr_cst "c" "a"; level_cst "b" "L3" ]
  in
  Alcotest.(check (list (pair string string)))
    "uniform at L3"
    [ ("a", "L3"); ("b", "L3"); ("c", "L3") ]
    (List.sort compare sol)

let simple_cycle_lub_of_floors () =
  (* Floors L2 and L3 inside one cycle: everyone must reach their lub L4. *)
  let sol =
    solve_names fig1b
      [
        attr_cst "a" "b";
        attr_cst "b" "a";
        level_cst "a" "L2";
        level_cst "b" "L3";
      ]
  in
  Alcotest.(check (list (pair string string)))
    "uniform at lub"
    [ ("a", "L4"); ("b", "L4") ]
    (List.sort compare sol)

let two_element_cycle_no_floor () =
  let sol = solve_names fig1b [ attr_cst "a" "b"; attr_cst "b" "a" ] in
  Alcotest.(check (list (pair string string)))
    "cycle with no floor collapses to bottom"
    [ ("a", "L1"); ("b", "L1") ]
    (List.sort compare sol)

let complex_in_cycle () =
  (* The challenging §3.2 shape: a complex constraint inside a cycle. *)
  check_solution_minimal ~cap:1_000_000 fig1b
    [
      infer_cst [ "a"; "b" ] "c";
      attr_cst "c" "a";
      level_cst "c" "L4";
      level_cst "b" "L2";
    ]

let nondisjoint_complex_cycles () =
  (* Intersecting complex left-hand sides entangled in one cycle —
     the worst case discussed in §3.2. *)
  check_solution_minimal ~cap:1_000_000 fig1b
    [
      infer_cst [ "a"; "b" ] "c";
      infer_cst [ "b"; "c" ] "a";
      level_cst "a" "L3";
      level_cst "c" "L5";
    ]

let cycle_feeding_acyclic_tail () =
  (* A cycle whose level must back-propagate into an acyclic part. *)
  let p =
    S.compile_exn ~lattice:fig1b
      [
        attr_cst "x" "y";
        attr_cst "y" "x";
        level_cst "y" "L5";
        attr_cst "up" "x";
      ]
  in
  let sol = S.solve p in
  let l a = Explicit.level_to_string fig1b (Option.get (S.find p sol a)) in
  Alcotest.(check string) "x" "L5" (l "x");
  Alcotest.(check string) "up" "L5" (l "up")

let incomparable_floors_in_cycle () =
  (* Floors L4 and L5 are incomparable; the cycle must settle at L6. *)
  let sol =
    solve_names fig1b
      [
        attr_cst "a" "b";
        attr_cst "b" "c";
        attr_cst "c" "a";
        level_cst "a" "L4";
        level_cst "c" "L5";
      ]
  in
  List.iter (fun (_, l) -> Alcotest.(check string) "L6" "L6" l) sol

let random_cyclic_prop =
  QCheck.Test.make ~count:40 ~name:"random single SCC: satisfies and minimal"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:4
          ~n_generators:3 ~max_size:12
      in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 5;
            n_simple = 3;
            n_complex = 2;
            max_lhs = 3;
            n_constants = 2;
            constants = Explicit.all lat;
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.single_scc rng spec in
      let p = S.compile_exn ~lattice:lat ~attrs csts in
      let sol = S.solve p in
      S.satisfies p sol.S.levels
      &&
      match V.is_minimal_solution ~cap:250_000 p sol.S.levels with
      | Ok b -> b
      | Error `Too_large -> true (* oracle out of budget: skip this case *))

let random_mixed_prop =
  QCheck.Test.make ~count:40 ~name:"random mixed SCCs: satisfies and minimal"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:4
          ~n_generators:4 ~max_size:14
      in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 7;
            n_simple = 6;
            n_complex = 2;
            max_lhs = 2;
            n_constants = 2;
            constants = Explicit.all lat;
          }
      in
      let attrs, csts =
        Minup_workload.Gen_constraints.mixed rng spec ~n_islands:2 ~island_size:2
      in
      let p = S.compile_exn ~lattice:lat ~attrs csts in
      let sol = S.solve p in
      S.satisfies p sol.S.levels
      &&
      match V.is_minimal_solution ~cap:250_000 p sol.S.levels with
      | Ok b -> b
      | Error `Too_large -> true (* oracle out of budget: skip this case *))

let suite =
  [
    case "simple cycle with one floor" simple_cycle_uniform;
    case "simple cycle with two floors" simple_cycle_lub_of_floors;
    case "cycle without floors" two_element_cycle_no_floor;
    case "complex constraint in cycle" complex_in_cycle;
    case "nondisjoint complex cycles" nondisjoint_complex_cycles;
    case "cycle feeds acyclic tail" cycle_feeding_acyclic_tail;
    case "incomparable floors" incomparable_floors_in_cycle;
    Helpers.qcheck random_cyclic_prop;
    Helpers.qcheck random_mixed_prop;
  ]
