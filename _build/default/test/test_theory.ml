open Minup_lattice

let case = Helpers.case
let fig1b = Helpers.fig1b
let lvl = Helpers.lvl
let names lat ls = List.sort compare (List.map (Explicit.name lat) ls)

let atoms_coatoms () =
  Alcotest.(check (list string)) "atoms" [ "L2"; "L3" ] (names fig1b (Theory.atoms fig1b));
  Alcotest.(check (list string)) "coatoms" [ "L4"; "L5" ] (names fig1b (Theory.coatoms fig1b))

let irreducibles () =
  (* join-irreducible: exactly one cover below — L2, L3, L5 (L4 = L2⊔L3,
     L6 = L4⊔L5, L1 has none). *)
  Alcotest.(check (list string)) "join irr" [ "L2"; "L3"; "L5" ]
    (names fig1b (Theory.join_irreducibles fig1b));
  Alcotest.(check (list string)) "meet irr" [ "L2"; "L4"; "L5" ]
    (names fig1b (Theory.meet_irreducibles fig1b))

let distributivity () =
  (* Fig. 1(b) is distributive; the diamond M3 is modular but not
     distributive; the pentagon N5 is neither. *)
  Alcotest.(check bool) "fig1b distributive" true (Theory.is_distributive fig1b);
  Alcotest.(check bool) "fig1b modular" true (Theory.is_modular fig1b);
  let m3 =
    Explicit.create_exn
      ~names:[ "bot"; "x"; "y"; "z"; "top" ]
      ~order:
        [ ("bot", "x"); ("bot", "y"); ("bot", "z"); ("x", "top"); ("y", "top"); ("z", "top") ]
  in
  Alcotest.(check bool) "M3 not distributive" false (Theory.is_distributive m3);
  Alcotest.(check bool) "M3 modular" true (Theory.is_modular m3);
  let n5 =
    Explicit.create_exn
      ~names:[ "bot"; "a"; "b"; "c"; "top" ]
      ~order:[ ("bot", "a"); ("a", "c"); ("bot", "b"); ("c", "top"); ("b", "top") ]
  in
  Alcotest.(check bool) "N5 not distributive" false (Theory.is_distributive n5);
  Alcotest.(check bool) "N5 not modular" false (Theory.is_modular n5)

let boolean () =
  let cube =
    Minup_workload.Gen_lattice.chain_product [ 1; 1; 1 ] (* 2^3 *)
  in
  Alcotest.(check bool) "cube boolean" true (Theory.is_boolean cube);
  Alcotest.(check bool) "fig1b not boolean" false (Theory.is_boolean fig1b);
  Alcotest.(check bool) "chain not boolean" false
    (Theory.is_boolean (Explicit.chain [ "a"; "b"; "c" ]))

let dual () =
  let d = Theory.dual fig1b in
  let module Laws = Check.Laws (Explicit) in
  (match Laws.check d with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check string) "top is L1" "L1" (Explicit.name d (Explicit.top d));
  Alcotest.(check string) "bottom is L6" "L6" (Explicit.name d (Explicit.bottom d));
  (* Order reversed: L2 ⊑ L4 becomes L4 ⊑ L2. *)
  Alcotest.(check bool) "reversed" true
    (Explicit.leq d (Explicit.of_name_exn d "L4") (Explicit.of_name_exn d "L2"));
  (* Dual of dual is the original order. *)
  let dd = Theory.dual d in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "involution" (Explicit.leq fig1b a b)
            (Explicit.leq dd
               (Explicit.of_name_exn dd (Explicit.name fig1b a))
               (Explicit.of_name_exn dd (Explicit.name fig1b b))))
        (Explicit.all fig1b))
    (Explicit.all fig1b)

let duality_prop =
  QCheck.Test.make ~count:40 ~name:"dual swaps atoms/coatoms and join/meet irreducibles"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:5
          ~n_generators:4 ~max_size:30
      in
      let d = Theory.dual lat in
      let names_of l ls = List.sort compare (List.map (Explicit.name l) ls) in
      names_of lat (Theory.atoms lat) = names_of d (Theory.coatoms d)
      && names_of lat (Theory.join_irreducibles lat)
         = names_of d (Theory.meet_irreducibles d))

let suite =
  [
    case "atoms and coatoms" atoms_coatoms;
    case "irreducibles" irreducibles;
    case "distributivity and modularity" distributivity;
    case "boolean lattices" boolean;
    case "dual" dual;
    Helpers.qcheck duality_prop;
  ]
