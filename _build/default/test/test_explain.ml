open Minup_lattice
open Helpers
module Explain = Minup_core.Explain.Make (Explicit)
module Cst = Minup_constraints.Cst

let case = Helpers.case

let fig2_problem () =
  S.compile_exn ~lattice:fig1b ~attrs:Minup_core.Paper.fig2_attrs
    Minup_core.Paper.fig2_constraints

let direct_binding () =
  let p = fig2_problem () in
  let sol = S.solve p in
  (* F = L4; lowering to L3 violates its basic floor F ⊒ L2 (L3 ⋣ L2),
     lowering to L2 breaks the cycle at M's floor. *)
  let blocked = Explain.binding_constraints p sol.S.levels "F" in
  Alcotest.(check int) "two covers" 2 (List.length blocked);
  List.iter
    (fun { Explain.to_level; reason } ->
      match (Explicit.level_to_string fig1b to_level, reason) with
      | "L3", Explain.Direct c ->
          Alcotest.(check string) "floor binds" "λ(F) ⊒ L2"
            (Format.asprintf "%a" (Cst.pp (Explicit.pp_level fig1b)) c)
      | "L2", (Explain.Direct _ | Explain.Propagated _) -> ()
      | l, Explain.At_bottom -> Alcotest.failf "unexpected At_bottom at %s" l
      | l, _ -> Alcotest.failf "unexpected cover %s" l)
    blocked

let cycle_binding () =
  let p = fig2_problem () in
  let sol = S.solve p in
  (* O = L5 is held only through its simple cycle with N and I, which is
     pinned by I's role in lub{F,I} ⊒ B — lowering O must fail through the
     cycle. *)
  let blocked = Explain.binding_constraints p sol.S.levels "O" in
  Alcotest.(check bool) "has entries" true (blocked <> []);
  List.iter
    (fun { Explain.reason; _ } ->
      match reason with
      | Explain.Propagated _ -> ()
      | Explain.Direct _ -> ()
      | Explain.At_bottom -> Alcotest.fail "O reported lowerable")
    blocked

let at_bottom_empty () =
  let p = fig2_problem () in
  let sol = S.solve p in
  (* E = L1 = ⊥: no covers below, nothing holds it up. *)
  Alcotest.(check int) "no entries for bottom" 0
    (List.length (Explain.binding_constraints p sol.S.levels "E"))

let detects_overclassification () =
  let p = S.compile_exn ~lattice:fig1b [ level_cst "a" "L2" ] in
  Alcotest.(check bool) "L6 detected as non-minimal" false
    (Explain.is_locally_minimal p [| lvl "L6" |]);
  Alcotest.(check bool) "L2 locally minimal" true
    (Explain.is_locally_minimal p [| lvl "L2" |])

let detects_joint_lowering () =
  (* The cycle a=b at L3 can only be lowered jointly — the replay must
     find it. *)
  let p = S.compile_exn ~lattice:fig1b [ attr_cst "a" "b"; attr_cst "b" "a" ] in
  Alcotest.(check bool) "joint lowering detected" false
    (Explain.is_locally_minimal p [| lvl "L3"; lvl "L3" |])

let report_renders () =
  let p = fig2_problem () in
  let sol = S.solve p in
  let r = Explain.report p sol.S.levels in
  let contains needle =
    let n = String.length needle and h = String.length r in
    let rec go i = i + n <= h && (String.sub r i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions F" true (contains "F = L4");
  Alcotest.(check bool) "mentions a binding constraint" true
    (contains "cannot lower");
  Alcotest.(check bool) "no non-minimal flags" false (contains "non-minimal")

(* Exact agreement with the oracle: on every satisfying assignment of
   small random instances, the polynomial replay check and the exhaustive
   enumeration agree. *)
let exact_agreement =
  QCheck.Test.make ~count:50
    ~name:"replay minimality check = exhaustive oracle" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:3
          ~n_generators:3 ~max_size:8
      in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 4;
            n_simple = 3;
            n_complex = 2;
            max_lhs = 3;
            n_constants = 2;
            constants = Explicit.all lat;
          }
      in
      let attrs, csts =
        if Minup_workload.Prng.bool rng then
          Minup_workload.Gen_constraints.acyclic rng spec
        else Minup_workload.Gen_constraints.single_scc rng spec
      in
      let p = S.compile_exn ~lattice:lat ~attrs csts in
      match V.all_solutions ~cap:100_000 p with
      | Error `Too_large -> true
      | Ok sols ->
          let minimal = V.minimal_among lat sols in
          let is_min s =
            List.exists (fun m -> V.equal_assignment lat m s) minimal
          in
          (* Sample at most 40 solutions to keep the case cheap. *)
          let sampled = List.filteri (fun i _ -> i mod 7 = 0 || i < 20) sols in
          List.for_all
            (fun s -> Explain.is_locally_minimal p s = is_min s)
            sampled)

let suite =
  [
    case "direct binding constraint" direct_binding;
    case "cycle binding constraint" cycle_binding;
    case "bottom has no bindings" at_bottom_empty;
    case "detects overclassification" detects_overclassification;
    case "detects joint lowering" detects_joint_lowering;
    case "report rendering" report_renders;
    Helpers.qcheck exact_agreement;
  ]
