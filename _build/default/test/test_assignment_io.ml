open Minup_lattice
open Helpers
module Aio = Minup_core.Assignment_io

let case = Helpers.case
let level_of_string = Explicit.level_of_string fig1b
let level_to_string = Explicit.level_to_string fig1b

let parse_ok () =
  let text = "# deployed labels\na = L2\n\nb = L6  # top\n" in
  match Aio.parse ~level_of_string text with
  | Ok [ ("a", a); ("b", b) ] ->
      Alcotest.check (level_t fig1b) "a" (lvl "L2") a;
      Alcotest.check (level_t fig1b) "b" (lvl "L6") b
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "parse: %a" Aio.pp_error e

let parse_errors () =
  (match Aio.parse ~level_of_string "a = NOPE\n" with
  | Error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "accepted unknown level");
  (match Aio.parse ~level_of_string "just words\n" with
  | Error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "accepted malformed line");
  match Aio.parse ~level_of_string "a = L1\na = L2\n" with
  | Error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "accepted duplicate"

let roundtrip () =
  let assignment = [ ("x", lvl "L3"); ("y", lvl "L1") ] in
  match Aio.parse ~level_of_string (Aio.render ~level_to_string assignment) with
  | Ok back ->
      Alcotest.(check int) "same length" 2 (List.length back);
      List.iter2
        (fun (a, l) (a', l') ->
          Alcotest.(check string) "attr" a a';
          Alcotest.check (level_t fig1b) "level" l l')
        assignment back
  | Error e -> Alcotest.failf "roundtrip: %a" Aio.pp_error e

let bind_cases () =
  let p = S.compile_exn ~lattice:fig1b [ level_cst "a" "L2"; attr_cst "b" "a" ] in
  (match Aio.bind p.S.prob [ ("a", lvl "L2"); ("b", lvl "L2") ] with
  | Ok levels -> Alcotest.(check int) "two" 2 (Array.length levels)
  | Error _ -> Alcotest.fail "bind failed");
  (match Aio.bind p.S.prob [ ("a", lvl "L2") ] with
  | Error (`Missing "b") -> ()
  | _ -> Alcotest.fail "missing not detected");
  match Aio.bind p.S.prob [ ("a", lvl "L2"); ("zz", lvl "L1") ] with
  | Error (`Unknown "zz") -> ()
  | _ -> Alcotest.fail "unknown not detected"

let suite =
  [
    case "parse" parse_ok;
    case "parse errors" parse_errors;
    case "round-trip" roundtrip;
    case "bind" bind_cases;
  ]
