open Minup_lattice

let case = Helpers.case

let fig1b () =
  let enc = Encode.of_explicit Helpers.fig1b in
  Alcotest.(check bool) "few chains" true (Encode.n_chains enc <= 3);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "leq %s %s" (Explicit.name Helpers.fig1b a)
               (Explicit.name Helpers.fig1b b))
            (Explicit.leq Helpers.fig1b a b)
            (Encode.leq enc a b))
        (Explicit.all Helpers.fig1b))
    (Explicit.all Helpers.fig1b)

let chain_single () =
  let c = Explicit.chain [ "a"; "b"; "c"; "d" ] in
  let enc = Encode.of_explicit c in
  Alcotest.(check int) "one chain" 1 (Encode.n_chains enc)

let agree_prop =
  QCheck.Test.make ~count:60
    ~name:"chain encoding agrees with explicit dominance" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:6
          ~n_generators:5 ~max_size:40
      in
      let enc = Encode.of_explicit lat in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Encode.leq enc a b = Explicit.leq lat a b)
            (Explicit.all lat))
        (Explicit.all lat))

let suite =
  [
    case "Fig. 1(b) encoding" fig1b;
    case "chains collapse to one" chain_single;
    Helpers.qcheck agree_prop;
  ]
