module Graphviz = Minup_constraints.Graphviz
module Problem = Minup_constraints.Problem

let case = Helpers.case

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let fig2 () =
  let p =
    Problem.compile_exn ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let dot =
    Graphviz.render ~pp_level:(Minup_lattice.Explicit.pp_level Helpers.fig1b) p
  in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  (* 11 circle attribute nodes. *)
  let count needle =
    List.length
      (List.filter (fun l -> contains l needle) (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "11 attr nodes" 11 (count "shape=circle");
  (* Level constants L1..L5 deduplicated: 5 box nodes. *)
  Alcotest.(check int) "5 level nodes" 5 (count "shape=box");
  (* 3 hypernodes for the 3 complex constraints. *)
  Alcotest.(check int) "3 hypernodes" 3 (count "shape=point");
  (* Hypernode member edges are dashed; 2 members each. *)
  Alcotest.(check int) "6 member edges" 6 (count "style=dashed")

let suite = [ case "Fig. 2(a) rendering" fig2 ]
