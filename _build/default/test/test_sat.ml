open Minup_poset

let case = Helpers.case

let known_sat () =
  let cnf = Sat.{ n_vars = 3; clauses = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] } in
  match Sat.solve cnf with
  | Some a -> Alcotest.(check bool) "satisfies" true (Sat.satisfies cnf a)
  | None -> Alcotest.fail "should be satisfiable"

let known_unsat () =
  (* (x)(¬x) and a pigeonhole-1 instance. *)
  Alcotest.(check bool) "x ∧ ¬x" true
    (Sat.solve { n_vars = 1; clauses = [ [ 1 ]; [ -1 ] ] } = None);
  let php =
    Sat.
      {
        n_vars = 2;
        clauses = [ [ 1; 2 ]; [ -1; -2 ]; [ 1; -2 ]; [ -1; 2 ] ];
      }
  in
  Alcotest.(check bool) "no assignment" true (Sat.solve php = None)

let empty_formula () =
  match Sat.solve { n_vars = 2; clauses = [] } with
  | Some _ -> ()
  | None -> Alcotest.fail "empty formula is satisfiable"

let empty_clause () =
  Alcotest.(check bool) "empty clause unsat" true
    (Sat.solve { n_vars = 1; clauses = [ [ 1 ]; [] ] } = None)

let checks () =
  (match Sat.check { n_vars = 2; clauses = [ [ 0 ] ] } with
  | Error Sat.Zero_literal -> ()
  | _ -> Alcotest.fail "accepted literal 0");
  (match Sat.check { n_vars = 2; clauses = [ [ 3 ] ] } with
  | Error (Sat.Var_out_of_range 3) -> ()
  | _ -> Alcotest.fail "accepted out-of-range variable");
  match Sat.check { n_vars = 2; clauses = [ [ 1; -2 ] ] } with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rejected valid formula"

(* Brute-force equivalence on small formulas. *)
let brute cnf =
  let n = cnf.Sat.n_vars in
  let rec go v (a : bool array) =
    if v > n then Sat.satisfies cnf a
    else begin
      a.(v) <- true;
      go (v + 1) a || (a.(v) <- false; go (v + 1) a)
    end
  in
  go 1 (Array.make (n + 1) false)

let dpll_equals_brute =
  QCheck.Test.make ~count:200 ~name:"DPLL agrees with brute force"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let cnf =
        Minup_workload.Gen_sat.random_3sat rng ~n_vars:6
          ~n_clauses:(6 + Minup_workload.Prng.int rng 20)
      in
      let d = Sat.solve cnf in
      (match d with Some a -> Sat.satisfies cnf a | None -> true)
      && (d <> None) = brute cnf)

let suite =
  [
    case "known satisfiable" known_sat;
    case "known unsatisfiable" known_unsat;
    case "empty formula" empty_formula;
    case "empty clause" empty_clause;
    case "validation" checks;
    Helpers.qcheck dpll_equals_brute;
  ]
