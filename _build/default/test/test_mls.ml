(* Schema validation, constraint extraction, and level-filtered views. *)

open Minup_lattice
open Minup_mls
module Cst = Minup_constraints.Cst

let case = Helpers.case

let employee_schema =
  Schema.create_exn
    [
      {
        Schema.rel_name = "emp";
        columns = [ "id"; "name"; "dept"; "salary" ];
        key = [ "id" ];
      };
      {
        Schema.rel_name = "proj";
        columns = [ "code"; "site"; "lead" ];
        key = [ "code"; "site" ];
      };
      { Schema.rel_name = "department"; columns = [ "dname"; "floor" ]; key = [ "dname" ] };
    ]
    [ { Schema.from_rel = "emp"; from_cols = [ "dept" ]; to_rel = "department" } ]

let schema_validation () =
  let rel name cols key = { Schema.rel_name = name; columns = cols; key } in
  (match Schema.create [ rel "r" [ "a" ] [ "a" ]; rel "r" [ "b" ] [ "b" ] ] [] with
  | Error (Schema.Duplicate_relation "r") -> ()
  | _ -> Alcotest.fail "dup relation");
  (match Schema.create [ rel "r" [ "a"; "a" ] [ "a" ] ] [] with
  | Error (Schema.Duplicate_column ("r", "a")) -> ()
  | _ -> Alcotest.fail "dup column");
  (match Schema.create [ rel "r" [ "a" ] [] ] [] with
  | Error (Schema.Empty_key "r") -> ()
  | _ -> Alcotest.fail "empty key");
  (match Schema.create [ rel "r" [ "a" ] [ "z" ] ] [] with
  | Error (Schema.Key_not_column ("r", "z")) -> ()
  | _ -> Alcotest.fail "key not column");
  (match
     Schema.create
       [ rel "r" [ "a" ] [ "a" ] ]
       [ { Schema.from_rel = "r"; from_cols = [ "a" ]; to_rel = "zz" } ]
   with
  | Error (Schema.Unknown_relation "zz") -> ()
  | _ -> Alcotest.fail "unknown relation");
  match
    Schema.create
      [ rel "r" [ "a" ] [ "a" ]; rel "s" [ "x"; "y" ] [ "x"; "y" ] ]
      [ { Schema.from_rel = "r"; from_cols = [ "a" ]; to_rel = "s" } ]
  with
  | Error (Schema.Fk_arity_mismatch ("r", "s")) -> ()
  | _ -> Alcotest.fail "fk arity"

let qualified_attrs () =
  Alcotest.(check (list string)) "attrs"
    [
      "emp.id"; "emp.name"; "emp.dept"; "emp.salary"; "proj.code"; "proj.site";
      "proj.lead"; "department.dname"; "department.floor";
    ]
    (Schema.attrs employee_schema)

let integrity () =
  let csts : int Cst.t list = Extract.integrity_constraints employee_schema in
  (* proj's two key columns form a uniformity cycle. *)
  let has lhs rhs =
    List.exists
      (fun (c : int Cst.t) -> c.Cst.lhs = lhs && c.Cst.rhs = Cst.Attr rhs)
      csts
  in
  Alcotest.(check bool) "code ⊒ site" true (has [ "proj.code" ] "proj.site");
  Alcotest.(check bool) "site ⊒ code" true (has [ "proj.site" ] "proj.code");
  (* Non-key dominates key. *)
  Alcotest.(check bool) "name ⊒ id" true (has [ "emp.name" ] "emp.id");
  Alcotest.(check bool) "salary ⊒ id" true (has [ "emp.salary" ] "emp.id");
  (* Foreign key dominates the referenced key. *)
  Alcotest.(check bool) "dept ⊒ department.dname" true
    (has [ "emp.dept" ] "department.dname");
  (* Single-column key of emp gets no uniformity cycle. *)
  Alcotest.(check bool) "no id self constraint" false (has [ "emp.id" ] "emp.id")

let fd_extraction () =
  let fds = [ ("emp", Fd.make ~lhs:[ "dept" ] ~rhs:[ "salary"; "dept" ]) ] in
  let csts : int Cst.t list = Extract.fd_constraints employee_schema fds in
  Alcotest.(check int) "one nontrivial" 1 (List.length csts);
  match csts with
  | [ c ] ->
      Alcotest.(check (list string)) "lhs" [ "emp.dept" ] c.Cst.lhs;
      (match c.Cst.rhs with
      | Cst.Attr "emp.salary" -> ()
      | _ -> Alcotest.fail "wrong rhs")
  | _ -> Alcotest.fail "unexpected"

let end_to_end () =
  (* Extract everything, solve over Fig. 1(b), check the MLS invariants
     hold in the resulting classification. *)
  let lat = Helpers.fig1b in
  let lvl = Helpers.lvl in
  let csts =
    Extract.all ~schema:employee_schema
      ~fds:[ ("emp", Fd.make ~lhs:[ "dept" ] ~rhs:[ "salary" ]) ]
      ~basic:[ ("emp.salary", lvl "L5") ]
      ~associations:[ ([ "emp.name"; "emp.salary" ], lvl "L6") ]
  in
  let p = Helpers.S.compile_exn ~lattice:lat csts in
  let sol = Helpers.S.solve p in
  Alcotest.(check bool) "satisfies" true (Helpers.S.satisfies p sol.Helpers.S.levels);
  let l a = Option.get (Helpers.S.find p sol a) in
  (* Key uniformity. *)
  Alcotest.check (Helpers.level_t lat) "uniform proj key" (l "proj.code")
    (l "proj.site");
  (* Non-key dominates key. *)
  Alcotest.(check bool) "salary ⊒ id" true (Explicit.leq lat (l "emp.id") (l "emp.salary"));
  (* FD inference: dept alone must reach salary. *)
  Alcotest.(check bool) "dept ⊒ salary" true
    (Explicit.leq lat (l "emp.salary") (l "emp.dept"));
  (* Association: the pair reaches L6. *)
  Alcotest.(check bool) "association" true
    (Explicit.leq lat (lvl "L6") (Explicit.lub lat (l "emp.name") (l "emp.salary")))

let views () =
  let table =
    Instance.make_exn ~relation:"emp"
      ~columns:[ "id"; "name"; "salary" ]
      [ [ "1"; "alice"; "90k" ]; [ "2"; "bob"; "80k" ] ]
  in
  let readable = function
    | "emp.salary" -> false
    | _ -> true
  in
  let v = Instance.view_at ~readable table in
  Alcotest.(check bool) "salary hidden" false v.Instance.visible.(2);
  Alcotest.(check bool) "name visible" true v.Instance.visible.(1);
  (match v.Instance.rows with
  | [ r1; _ ] ->
      Alcotest.(check (option string)) "cell masked" None r1.(2);
      Alcotest.(check (option string)) "cell visible" (Some "alice") r1.(1)
  | _ -> Alcotest.fail "rows");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let rendered = Instance.render v in
  Alcotest.(check bool) "*** in render" true (contains rendered "***")

let arity_check () =
  match Instance.make ~relation:"r" ~columns:[ "a"; "b" ] [ [ "1" ] ] with
  | Error (Instance.Arity_mismatch { row = 0; expected = 2; got = 1 }) -> ()
  | _ -> Alcotest.fail "accepted ragged row"


let classified_rows () =
  let lat = Helpers.fig1b in
  let lvl = Helpers.lvl in
  let t =
    Instance.make_classified_exn ~relation:"mission"
      ~columns:[ "code"; "target" ]
      [
        (lvl "L2", [ "m1"; "alpha" ]);
        (lvl "L5", [ "m2"; "bravo" ]);
        (lvl "L1", [ "m3"; "charlie" ]);
      ]
  in
  let clearance = lvl "L2" in
  let v =
    Instance.view_classified
      ~row_visible:(fun l -> Explicit.leq lat l clearance)
      ~readable:(fun _ -> true)
      t
  in
  (* L2 and L1 rows visible; L5 row dropped. *)
  Alcotest.(check int) "two rows" 2 (List.length v.Instance.rows);
  let top_view =
    Instance.view_classified
      ~row_visible:(fun l -> Explicit.leq lat l (lvl "L6"))
      ~readable:(fun c -> c <> "mission.target")
      t
  in
  Alcotest.(check int) "all rows at top" 3 (List.length top_view.Instance.rows);
  Alcotest.(check bool) "target masked" false top_view.Instance.visible.(1)

let classified_arity () =
  match
    Instance.make_classified ~relation:"r" ~columns:[ "a"; "b" ]
      [ (0, [ "1" ]) ]
  with
  | Error (Instance.Arity_mismatch _) -> ()
  | _ -> Alcotest.fail "accepted ragged classified row"

let suite =
  [
    case "schema validation" schema_validation;
    case "qualified attributes" qualified_attrs;
    case "integrity constraints" integrity;
    case "FD inference constraints" fd_extraction;
    case "end-to-end classification" end_to_end;
    case "level-filtered views" views;
    case "arity check" arity_check;
    case "row-classified views" classified_rows;
    case "classified arity check" classified_arity;
  ]
