open Minup_lattice

let case = Helpers.case

let sample = {|
# Figure 1(b)
levels L1, L2, L3, L4, L5, L6
L1 < L2
L1 < L3
L2 < L4
L3 < L4
L3 < L5
L4 < L6
L5 < L6
|}

let parse_ok () =
  match Lattice_file.parse sample with
  | Error e -> Alcotest.failf "parse: %a" Lattice_file.pp_error e
  | Ok lat ->
      Alcotest.(check int) "6 levels" 6 (Explicit.cardinal lat);
      Alcotest.(check int) "height" 3 (Explicit.height lat);
      Alcotest.(check bool) "L2 ⊑ L6" true
        (Explicit.leq lat (Explicit.of_name_exn lat "L2") (Explicit.of_name_exn lat "L6"))

let roundtrip () =
  let lat = Helpers.fig1b in
  match Lattice_file.parse (Lattice_file.to_string lat) with
  | Error e -> Alcotest.failf "reparse: %a" Lattice_file.pp_error e
  | Ok lat' ->
      Alcotest.(check int) "same size" (Explicit.cardinal lat) (Explicit.cardinal lat');
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check bool) "same covers" true
            (List.mem
               (Explicit.name lat lo, Explicit.name lat hi)
               (List.map
                  (fun (a, b) -> (Explicit.name lat' a, Explicit.name lat' b))
                  (Explicit.cover_pairs lat'))))
        (Explicit.cover_pairs lat)

let errors () =
  (match Lattice_file.parse "levels a, b\ngarbage\n" with
  | Error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "accepted garbage");
  (match Lattice_file.parse "levels a, b\na < \n" with
  | Error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "accepted malformed pair");
  (* Not a lattice: reported with line 0 and the Explicit diagnosis. *)
  match Lattice_file.parse "levels a, b, c\na < b\na < c\n" with
  | Error { line = 0; message } ->
      Alcotest.(check bool) "mentions upper bound" true (String.length message > 0)
  | _ -> Alcotest.fail "accepted non-lattice"

let semilattice () =
  match Lattice_file.parse_semilattice "levels a, b, c\na < b\na < c\n" with
  | Error e -> Alcotest.failf "semilattice: %a" Lattice_file.pp_error e
  | Ok s ->
      Alcotest.(check bool) "dummy top" true (s.Semilattice.dummy_top <> None);
      Alcotest.(check int) "4 levels" 4 (Explicit.cardinal s.Semilattice.lattice)

let suite =
  [
    case "parse" parse_ok;
    case "round-trip" roundtrip;
    case "errors" errors;
    case "semilattice completion" semilattice;
  ]
