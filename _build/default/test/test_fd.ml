open Minup_mls

let case = Helpers.case

let fd lhs rhs = Fd.make ~lhs ~rhs

let closure () =
  let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ]; fd [ "c"; "d" ] [ "e" ] ] in
  Alcotest.(check (list string)) "a+" [ "a"; "b"; "c" ] (Fd.closure fds [ "a" ]);
  Alcotest.(check (list string)) "ad+" [ "a"; "b"; "c"; "d"; "e" ]
    (Fd.closure fds [ "a"; "d" ]);
  Alcotest.(check (list string)) "d+" [ "d" ] (Fd.closure fds [ "d" ])

let implication () =
  let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ] ] in
  Alcotest.(check bool) "transitivity" true (Fd.implies fds (fd [ "a" ] [ "c" ]));
  Alcotest.(check bool) "augment" true (Fd.implies fds (fd [ "a"; "z" ] [ "c" ]));
  Alcotest.(check bool) "not implied" false (Fd.implies fds (fd [ "c" ] [ "a" ]))

let keys () =
  (* Classic: R(a,b,c,d) with a→b, b→c: key is {a,d}. *)
  let attrs = [ "a"; "b"; "c"; "d" ] in
  let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ] ] in
  Alcotest.(check (list (list string))) "single key" [ [ "a"; "d" ] ]
    (Fd.candidate_keys ~attrs fds);
  (* Two keys: a→b and b→a make {a,c} and {b,c} both keys of R(a,b,c). *)
  let fds2 = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "a" ] ] in
  Alcotest.(check (list (list string)))
    "two keys"
    [ [ "a"; "c" ]; [ "b"; "c" ] ]
    (List.sort compare (Fd.candidate_keys ~attrs:[ "a"; "b"; "c" ] fds2))

let is_key () =
  let attrs = [ "a"; "b"; "c" ] in
  let fds = [ fd [ "a" ] [ "b"; "c" ] ] in
  Alcotest.(check bool) "a is key" true (Fd.is_key ~attrs fds [ "a" ]);
  Alcotest.(check bool) "b is not" false (Fd.is_key ~attrs fds [ "b" ])

let minimal_cover () =
  (* a→bc splits; a→b, b→c, a→c: a→c is redundant. *)
  let fds = [ fd [ "a" ] [ "b"; "c" ]; fd [ "b" ] [ "c" ] ] in
  let cover = Fd.minimal_cover fds in
  Alcotest.(check int) "two dependencies" 2 (List.length cover);
  List.iter
    (fun (f : Fd.t) ->
      Alcotest.(check int) "singleton rhs" 1 (List.length f.Fd.rhs))
    cover;
  (* Extraneous lhs attribute removed: ab→c with a→c reduces to a→c. *)
  let cover2 = Fd.minimal_cover [ fd [ "a"; "b" ] [ "c" ]; fd [ "a" ] [ "c" ] ] in
  Alcotest.(check int) "one dependency" 1 (List.length cover2);
  match cover2 with
  | [ f ] -> Alcotest.(check (list string)) "reduced lhs" [ "a" ] f.Fd.lhs
  | _ -> Alcotest.fail "expected singleton cover"

let cover_equivalent_prop =
  QCheck.Test.make ~count:100 ~name:"minimal cover is equivalent"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let attrs = [ "a"; "b"; "c"; "d" ] in
      let random_fd () =
        let pick () = Minup_workload.Prng.sample rng (1 + Minup_workload.Prng.int rng 2) attrs in
        Fd.make ~lhs:(pick ()) ~rhs:(pick ())
      in
      let fds = List.init (2 + Minup_workload.Prng.int rng 4) (fun _ -> random_fd ()) in
      let cover = Fd.minimal_cover fds in
      List.for_all (Fd.implies cover) (List.filter (fun (f : Fd.t) ->
          not (List.for_all (fun r -> List.mem r f.Fd.lhs) f.Fd.rhs)) fds)
      && List.for_all (Fd.implies fds) cover)

let validation () =
  Alcotest.check_raises "empty lhs" (Invalid_argument "Fd.make: empty side")
    (fun () -> ignore (Fd.make ~lhs:[] ~rhs:[ "a" ]));
  Alcotest.check_raises "key guard"
    (Invalid_argument "Fd.candidate_keys: more than 16 attributes") (fun () ->
      ignore
        (Fd.candidate_keys ~attrs:(List.init 17 string_of_int) []))

let suite =
  [
    case "attribute closure" closure;
    case "implication" implication;
    case "candidate keys" keys;
    case "is_key" is_key;
    case "minimal cover" minimal_cover;
    Helpers.qcheck cover_equivalent_prop;
    case "validation" validation;
  ]
