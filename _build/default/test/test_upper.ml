(* Upper-bound constraints (§6). *)

open Minup_lattice
open Helpers

let case = Helpers.case

let trivial_inconsistency () =
  (* The paper's smallest example: {A ⊒ ⊤, A ⊑ ⊥}. *)
  let p = S.compile_exn ~lattice:fig1b [ level_cst "A" "L6" ] in
  match S.solve_with_bounds p [ ("A", lvl "L1") ] with
  | Error (S.Unsatisfiable _) -> ()
  | Error (S.Unknown_attr _) -> Alcotest.fail "wrong inconsistency"
  | Ok _ -> Alcotest.fail "accepted A ⊒ ⊤ ∧ A ⊑ ⊥"

let unknown_attr () =
  let p = S.compile_exn ~lattice:fig1b [ level_cst "A" "L2" ] in
  match S.solve_with_bounds p [ ("nope", lvl "L3") ] with
  | Error (S.Unknown_attr "nope") -> ()
  | _ -> Alcotest.fail "missed unknown attribute"

let bounds_propagate () =
  (* b ⊒ a and b ⊑ L3 cap a at L3 as well. *)
  let p = S.compile_exn ~lattice:fig1b [ attr_cst "b" "a" ] in
  match S.derive_upper_bounds p [ ("b", lvl "L3") ] with
  | Error _ -> Alcotest.fail "unexpected inconsistency"
  | Ok ub ->
      let id x = Option.get (Minup_constraints.Problem.attr_id p.S.prob x) in
      Alcotest.check (level_t fig1b) "b capped" (lvl "L3") ub.(id "b");
      Alcotest.check (level_t fig1b) "a capped via constraint" (lvl "L3")
        ub.(id "a")

let complex_bound_propagation () =
  (* lub{a,b} ⊒ c with a ⊑ L2, b ⊑ L3: c is capped at lub(L2,L3) = L4. *)
  let p = S.compile_exn ~lattice:fig1b [ infer_cst [ "a"; "b" ] "c" ] in
  match S.derive_upper_bounds p [ ("a", lvl "L2"); ("b", lvl "L3") ] with
  | Error _ -> Alcotest.fail "unexpected inconsistency"
  | Ok ub ->
      let id x = Option.get (Minup_constraints.Problem.attr_id p.S.prob x) in
      Alcotest.check (level_t fig1b) "c capped at L4" (lvl "L4") ub.(id "c")

let detect_deep_inconsistency () =
  (* a ⊑ L2, a ⊒ b, b ⊒ L3: pushing the bound through a hits the floor. *)
  let p =
    S.compile_exn ~lattice:fig1b [ attr_cst "a" "b"; level_cst "b" "L3" ]
  in
  match S.solve_with_bounds p [ ("a", lvl "L2") ] with
  | Error (S.Unsatisfiable _) -> ()
  | _ -> Alcotest.fail "missed propagated inconsistency"

let consistent_solve () =
  (* Visibility guarantee: name ⊑ L4 while {name, salary} ⊒ L6. *)
  let csts = [ assoc_cst [ "name"; "salary" ] "L6"; level_cst "salary" "L3" ] in
  let p = S.compile_exn ~lattice:fig1b csts in
  let bounds = [ ("name", lvl "L4") ] in
  match S.solve_with_bounds p bounds with
  | Error _ -> Alcotest.fail "unexpected inconsistency"
  | Ok sol ->
      Alcotest.(check bool) "satisfies" true (S.satisfies p sol.S.levels);
      let l a = Option.get (S.find p sol a) in
      Alcotest.(check bool) "bound respected" true
        (Explicit.leq fig1b (l "name") (lvl "L4"));
      (* salary must absorb the association requirement: lub must be L6. *)
      Alcotest.check (level_t fig1b) "lub reaches L6" (lvl "L6")
        (Explicit.lub fig1b (l "name") (l "salary"))

let bounded_minimality () =
  (* Among assignments below the bounds, the solver's answer is minimal. *)
  let csts = [ assoc_cst [ "a"; "b" ] "L6"; level_cst "b" "L2" ] in
  let p = S.compile_exn ~lattice:fig1b csts in
  let bounds = [ ("b", lvl "L4") ] in
  match S.solve_with_bounds p bounds with
  | Error _ -> Alcotest.fail "unexpected inconsistency"
  | Ok sol ->
      Alcotest.(check bool) "satisfies" true (S.satisfies p sol.S.levels);
      (match V.is_minimal_solution p sol.S.levels with
      | Ok b -> Alcotest.(check bool) "minimal" true b
      | Error `Too_large -> Alcotest.fail "oracle too large");
      let id x = Option.get (Minup_constraints.Problem.attr_id p.S.prob x) in
      Alcotest.(check bool) "b within bound" true
        (Explicit.leq fig1b sol.S.levels.(id "b") (lvl "L4"))

let bounds_on_cycles () =
  (* A cycle capped from above and floored from below. *)
  let csts =
    [ attr_cst "x" "y"; attr_cst "y" "x"; level_cst "x" "L2" ]
  in
  let p = S.compile_exn ~lattice:fig1b csts in
  match S.solve_with_bounds p [ ("y", lvl "L4") ] with
  | Error _ -> Alcotest.fail "unexpected inconsistency"
  | Ok sol ->
      Alcotest.(check bool) "satisfies" true (S.satisfies p sol.S.levels);
      List.iter
        (fun (a, l) ->
          Alcotest.(check string) (a ^ " at L2") "L2"
            (Explicit.level_to_string fig1b l))
        sol.S.assignment

let no_bounds_equals_plain_solve () =
  let p =
    S.compile_exn ~lattice:fig1b ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  match S.solve_with_bounds p [] with
  | Error _ -> Alcotest.fail "inconsistent without bounds?"
  | Ok sol ->
      let plain = S.solve p in
      Alcotest.(check bool) "same assignment" true
        (V.equal_assignment fig1b plain.S.levels sol.S.levels)

let random_bounded_prop =
  QCheck.Test.make ~count:40 ~name:"random bounded: satisfies, capped, minimal"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:4
          ~n_generators:3 ~max_size:12
      in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 5;
            n_simple = 4;
            n_complex = 1;
            max_lhs = 2;
            n_constants = 2;
            constants = Explicit.all lat;
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.acyclic rng spec in
      let p = S.compile_exn ~lattice:lat ~attrs csts in
      let bound_attr = Minup_workload.Prng.pick rng attrs in
      let bound_level =
        Minup_workload.Prng.pick rng (Explicit.all lat)
      in
      match S.solve_with_bounds p [ (bound_attr, bound_level) ] with
      | Error (S.Unsatisfiable _) ->
          (* Must really be unsatisfiable under the bound: no solution of
             the oracle respects it. *)
          let id = Option.get (Minup_constraints.Problem.attr_id p.S.prob bound_attr) in
          (match V.all_solutions ~cap:150_000 p with
          | Error `Too_large -> true
          | Ok sols ->
              not
                (List.exists
                   (fun s -> Explicit.leq lat s.(id) bound_level)
                   sols))
      | Error (S.Unknown_attr _) -> false
      | Ok sol ->
          let id = Option.get (Minup_constraints.Problem.attr_id p.S.prob bound_attr) in
          S.satisfies p sol.S.levels
          && Explicit.leq lat sol.S.levels.(id) bound_level)

let suite =
  [
    case "trivial inconsistency" trivial_inconsistency;
    case "unknown attribute" unknown_attr;
    case "bounds propagate backward" bounds_propagate;
    case "bounds propagate through complex" complex_bound_propagation;
    case "deep inconsistency detected" detect_deep_inconsistency;
    case "consistent bounded solve" consistent_solve;
    case "bounded minimality" bounded_minimality;
    case "bounds on cycles" bounds_on_cycles;
    case "no bounds = plain solve" no_bounds_equals_plain_solve;
    Helpers.qcheck random_bounded_prop;
  ]
