open Minup_lattice

let case = Helpers.case
let ps = Powerset.create [ "a"; "b"; "c" ]

let structure () =
  Alcotest.(check int) "arity" 3 (Powerset.arity ps);
  Alcotest.(check int) "height" 3 (Powerset.height ps);
  Alcotest.(check int) "top" 7 (Powerset.top ps);
  Alcotest.(check int) "bottom" 0 (Powerset.bottom ps);
  let ab = Powerset.of_elements_exn ps [ "a"; "b" ] in
  let bc = Powerset.of_elements_exn ps [ "b"; "c" ] in
  Alcotest.(check int) "lub=union" (Powerset.top ps) (Powerset.lub ps ab bc);
  Alcotest.(check int) "glb=inter"
    (Powerset.of_elements_exn ps [ "b" ])
    (Powerset.glb ps ab bc);
  Alcotest.(check bool) "subset" true
    (Powerset.leq ps (Powerset.of_elements_exn ps [ "b" ]) ab);
  Alcotest.(check (list int)) "covers of {a,b}"
    [ Powerset.of_elements_exn ps [ "b" ]; Powerset.of_elements_exn ps [ "a" ] ]
    (Powerset.covers_below ps ab)

let strings () =
  let ab = Powerset.of_elements_exn ps [ "a"; "b" ] in
  Alcotest.(check string) "to_string" "{a,b}" (Powerset.level_to_string ps ab);
  Alcotest.(check (option int)) "parse" (Some ab)
    (Powerset.level_of_string ps "{ a , b }");
  Alcotest.(check (option int)) "parse empty" (Some 0) (Powerset.level_of_string ps "{}");
  Alcotest.(check (option int)) "parse bad" None (Powerset.level_of_string ps "{z}");
  Alcotest.(check (option int)) "parse no braces" None (Powerset.level_of_string ps "a")

let validation () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Powerset.create: duplicate element \"a\"") (fun () ->
      ignore (Powerset.create [ "a"; "a" ]));
  match Powerset.of_elements ps [ "z" ] with
  | None -> ()
  | Some _ -> Alcotest.fail "accepted unknown element"

let laws () =
  let module Laws = Check.Laws (Powerset) in
  match Laws.check ps with Ok () -> () | Error m -> Alcotest.fail m

let residual_prop =
  QCheck.Test.make ~count:200 ~name:"powerset residual = set difference"
    QCheck.(pair (int_bound 7) (int_bound 7))
    (fun (target, others) ->
      Powerset.residual ps ~target ~others = target land lnot others)

let suite =
  [
    case "structure" structure;
    case "string round-trips" strings;
    case "validation" validation;
    case "lattice laws" laws;
    Helpers.qcheck residual_prop;
  ]
