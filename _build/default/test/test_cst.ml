module Cst = Minup_constraints.Cst

let case = Helpers.case

let make_validation () =
  (match Cst.make ~lhs:[] ~rhs:(Cst.Level 0) with
  | Error Cst.Empty_lhs -> ()
  | _ -> Alcotest.fail "accepted empty lhs");
  (match Cst.make ~lhs:[ "a"; "b"; "a" ] ~rhs:(Cst.Level 0) with
  | Error (Cst.Duplicate_lhs "a") -> ()
  | _ -> Alcotest.fail "accepted duplicate lhs");
  match Cst.make ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "c") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "rejected valid constraint"

let classify () =
  let simple = Cst.simple "a" (Cst.Level 3) in
  let complex = Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "c") in
  Alcotest.(check bool) "simple" true (Cst.is_simple simple);
  Alcotest.(check bool) "not complex" false (Cst.is_complex simple);
  Alcotest.(check bool) "complex" true (Cst.is_complex complex);
  Alcotest.(check int) "size simple" 2 (Cst.size simple);
  Alcotest.(check int) "size complex" 3 (Cst.size complex)

let trivial () =
  let t = Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "a") in
  Alcotest.(check bool) "trivial" true (Cst.is_trivial t);
  Alcotest.(check bool) "level rhs never trivial" false
    (Cst.is_trivial (Cst.simple "a" (Cst.Level 0)));
  Alcotest.(check bool) "distinct attr not trivial" false
    (Cst.is_trivial (Cst.simple "a" (Cst.Attr "b")))

let attrs () =
  Alcotest.(check (list string)) "attrs with rhs" [ "a"; "b"; "c" ]
    (Cst.attrs (Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "c")));
  Alcotest.(check (list string)) "level rhs" [ "a" ]
    (Cst.attrs (Cst.simple "a" (Cst.Level 9)))

let map_level () =
  let c = Cst.simple "a" (Cst.Level 3) in
  let c' = Cst.map_level string_of_int c in
  (match c'.Cst.rhs with
  | Cst.Level "3" -> ()
  | _ -> Alcotest.fail "level not mapped");
  let a = Cst.simple "a" (Cst.Attr "b") in
  match (Cst.map_level string_of_int a).Cst.rhs with
  | Cst.Attr "b" -> ()
  | _ -> Alcotest.fail "attr rhs altered"

let pp () =
  let s =
    Format.asprintf "%a"
      (Cst.pp (fun ppf l -> Format.pp_print_int ppf l))
      (Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Level 4))
  in
  Alcotest.(check string) "render" "lub{λ(a), λ(b)} ⊒ 4" s;
  let s2 =
    Format.asprintf "%a"
      (Cst.pp (fun ppf l -> Format.pp_print_int ppf l))
      (Cst.simple "x" (Cst.Attr "y"))
  in
  Alcotest.(check string) "render simple" "λ(x) ⊒ λ(y)" s2

let suite =
  [
    case "make validation" make_validation;
    case "simple/complex classification" classify;
    case "trivial detection" trivial;
    case "mentioned attributes" attrs;
    case "map_level" map_level;
    case "pretty printing" pp;
  ]
