open Minup_lattice

let case = Helpers.case

(* The diamond as raw order pairs plus a redundant transitive edge. *)
let diamond_edges = [ (0, 1); (0, 2); (1, 3); (2, 3); (0, 3) ]

let closure () =
  let up = Hasse.transitive_closure 4 diamond_edges in
  Alcotest.(check (list int)) "up 0" [ 0; 1; 2; 3 ] (Bitset.to_list up.(0));
  Alcotest.(check (list int)) "up 1" [ 1; 3 ] (Bitset.to_list up.(1));
  Alcotest.(check (list int)) "up 3" [ 3 ] (Bitset.to_list up.(3))

let reduction () =
  Alcotest.(check (list (pair int int)))
    "diamond reduction"
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]
    (Hasse.transitive_reduction 4 diamond_edges);
  (* A chain given as its full closure reduces to covers. *)
  Alcotest.(check (list (pair int int)))
    "chain reduction"
    [ (0, 1); (1, 2) ]
    (Hasse.transitive_reduction 3 [ (0, 1); (1, 2); (0, 2) ])

let topo () =
  Alcotest.(check (list int)) "diamond topo" [ 0; 1; 2; 3 ]
    (Hasse.topological_order 4 diamond_edges);
  Alcotest.(check (list int)) "no edges" [ 0; 1; 2 ]
    (Hasse.topological_order 3 [])

let cycles () =
  Alcotest.(check bool) "acyclic" true (Hasse.is_acyclic 4 diamond_edges);
  Alcotest.(check bool) "cycle" false (Hasse.is_acyclic 3 [ (0, 1); (1, 2); (2, 0) ]);
  Alcotest.check_raises "topo on cycle"
    (Invalid_argument "Hasse: order relation is cyclic") (fun () ->
      ignore (Hasse.topological_order 2 [ (0, 1); (1, 0) ]))

let longest () =
  Alcotest.(check int) "diamond height" 2 (Hasse.longest_path 4 diamond_edges);
  Alcotest.(check int) "chain height" 4
    (Hasse.longest_path 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]);
  Alcotest.(check int) "antichain" 0 (Hasse.longest_path 3 [])

(* Property: the reduction has the same closure as the input, and no edge
   of the reduction is implied by the others. *)
let reduction_prop =
  QCheck.Test.make ~count:200 ~name:"transitive reduction preserves closure"
    QCheck.(small_list (pair (int_bound 7) (int_bound 7)))
    (fun pairs ->
      let n = 8 in
      (* Keep only upward edges to guarantee acyclicity. *)
      let edges = List.filter_map
          (fun (a, b) -> if a < b then Some (a, b) else if b < a then Some (b, a) else None)
          pairs
      in
      let red = Hasse.transitive_reduction n edges in
      let c1 = Hasse.transitive_closure n edges in
      let c2 = Hasse.transitive_closure n red in
      Array.for_all2 Bitset.equal c1 c2
      && List.for_all
           (fun e ->
             let without = List.filter (fun e' -> e' <> e) red in
             not
               (Array.for_all2 Bitset.equal c1 (Hasse.transitive_closure n without)))
           red)

let suite =
  [
    case "transitive closure" closure;
    case "transitive reduction" reduction;
    case "topological order" topo;
    case "cycle detection" cycles;
    case "longest path" longest;
    Helpers.qcheck reduction_prop;
  ]
