open Minup_lattice
module P = Product.Make (Total) (Powerset)

let case = Helpers.case
let ladder = Total.create [ "lo"; "hi" ]
let ps = Powerset.create [ "x"; "y" ]
let lat = (ladder, ps)

let structure () =
  Alcotest.(check (option int)) "size" (Some 8) (P.size lat);
  Alcotest.(check int) "height" 3 (P.height lat);
  Alcotest.(check bool) "componentwise leq" true (P.leq lat (0, 1) (1, 3));
  Alcotest.(check bool) "incomparable" false (P.leq lat (1, 0) (0, 3));
  Alcotest.(check bool) "lub" true (P.equal lat (P.lub lat (1, 1) (0, 2)) (1, 3));
  Alcotest.(check bool) "glb" true (P.equal lat (P.glb lat (1, 1) (0, 3)) (0, 1));
  Alcotest.(check int) "covers count of top" 3
    (List.length (P.covers_below lat (P.top lat)))

let laws () =
  let module Laws = Check.Laws (P) in
  match Laws.check lat with Ok () -> () | Error m -> Alcotest.fail m

let laws_nested () =
  (* A product of products. *)
  let module PP = Product.Make (P) (Total) in
  let module Laws = Check.Laws (PP) in
  match Laws.check ~max_size:64 (lat, Total.anonymous 3) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let strings () =
  let l = (1, Powerset.of_elements_exn ps [ "x" ]) in
  Alcotest.(check string) "to_string" "(hi,{x})" (P.level_to_string lat l);
  match P.level_of_string lat "(hi,{x})" with
  | Some l' -> Alcotest.(check bool) "roundtrip" true (P.equal lat l l')
  | None -> Alcotest.fail "parse failed"

let suite =
  [
    case "structure" structure;
    case "lattice laws" laws;
    case "nested product laws" laws_nested;
    case "string round-trips" strings;
  ]
