  $ mlsclassify demo
  $ mlsclassify solve -l fig1b.lat -c employee.cst
  $ mlsclassify solve -l fig1b.lat -c employee.cst --check-minimal
  $ mlsclassify stats -l fig1b.lat -c employee.cst
  $ mlsclassify solve -l fig1b.lat -c employee.cst --bound salary=L2
  $ mlsclassify dot -l fig1b.lat | head -4
  $ mlsclassify dot -l fig1b.lat -c employee.cst | grep -c circle
  $ mlsclassify solve -l fig1b.lat -c employee.cst --explain | tail -6
  $ mlsclassify solve -l fig1b.lat -c employee.cst -o out.lvl
  $ mlsclassify check -l fig1b.lat -c employee.cst -a out.lvl
  $ sed 's/^rank = L1/rank = L4/' out.lvl > fat.lvl
  $ mlsclassify check -l fig1b.lat -c employee.cst -a fat.lvl
  $ sed 's/^salary = L6/salary = L1/' out.lvl > bad.lvl
  $ mlsclassify check -l fig1b.lat -c employee.cst -a bad.lvl
