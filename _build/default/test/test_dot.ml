open Minup_lattice

let case = Helpers.case

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let explicit () =
  let dot = Dot.of_explicit Helpers.fig1b in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "has L6" true (contains ~needle:"\"L6\"" dot);
  (* 7 cover edges *)
  let count =
    List.length
      (List.filter (fun l -> contains ~needle:"->" l) (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "edge lines" 7 count

let poset () =
  let dot = Dot.of_poset Poset.butterfly in
  Alcotest.(check bool) "has a" true (contains ~needle:"\"a\"" dot);
  let count =
    List.length
      (List.filter (fun l -> contains ~needle:"->" l) (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "4 cover edges" 4 count

let escaping () =
  let l = Explicit.create_exn ~names:[ "a\"b"; "top" ] ~order:[ ("a\"b", "top") ] in
  let dot = Dot.of_explicit l in
  Alcotest.(check bool) "escaped quote" true (contains ~needle:"a\\\"b" dot)

let suite = [ case "explicit export" explicit; case "poset export" poset; case "escaping" escaping ]
