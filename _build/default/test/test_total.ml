open Minup_lattice

let case = Helpers.case
let ladder = Total.create [ "U"; "C"; "S"; "TS" ]

let structure () =
  Alcotest.(check int) "cardinal" 4 (Total.cardinal ladder);
  Alcotest.(check int) "height" 3 (Total.height ladder);
  Alcotest.(check int) "top" 3 (Total.top ladder);
  Alcotest.(check int) "bottom" 0 (Total.bottom ladder);
  Alcotest.(check (list int)) "covers of 2" [ 1 ] (Total.covers_below ladder 2);
  Alcotest.(check (list int)) "covers of 0" [] (Total.covers_below ladder 0);
  Alcotest.(check bool) "C ⊑ S" true (Total.leq ladder 1 2);
  Alcotest.(check bool) "S ⊑ C" false (Total.leq ladder 2 1);
  Alcotest.(check int) "lub" 2 (Total.lub ladder 1 2);
  Alcotest.(check int) "glb" 1 (Total.glb ladder 1 2)

let names () =
  Alcotest.(check (option int)) "of_name" (Some 3) (Total.of_name ladder "TS");
  Alcotest.(check (option int)) "unknown" None (Total.of_name ladder "Z");
  Alcotest.(check string) "name" "S" (Total.name ladder 2);
  Alcotest.(check (option int)) "parse" (Some 1) (Total.level_of_string ladder "C")

let validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Total.create: empty")
    (fun () -> ignore (Total.create []));
  Alcotest.check_raises "dup" (Invalid_argument "Total.create: duplicate name \"x\"")
    (fun () -> ignore (Total.create [ "x"; "x" ]))

let laws () =
  let module Laws = Check.Laws (Total) in
  match Laws.check ladder with Ok () -> () | Error m -> Alcotest.fail m

let residual_least_prop =
  QCheck.Test.make ~count:200 ~name:"total residual is least sufficient level"
    QCheck.(pair (int_bound 3) (int_bound 3))
    (fun (target, others) ->
      let m = Total.residual ladder ~target ~others in
      Total.leq ladder target (Total.lub ladder m others)
      && List.for_all
           (fun m' ->
             if Total.leq ladder target (Total.lub ladder m' others) then
               Total.leq ladder m m'
             else true)
           [ 0; 1; 2; 3 ])

let suite =
  [
    case "structure" structure;
    case "names" names;
    case "validation" validation;
    case "lattice laws" laws;
    Helpers.qcheck residual_least_prop;
  ]
