open Minup_lattice

let case = Helpers.case
let fig1a = Compartment.fig1a
let mk cls cats = Compartment.make_exn fig1a ~cls ~cats

let ct =
  Alcotest.testable (Compartment.pp_level fig1a) (Compartment.equal fig1a)

let fig1a_structure () =
  (* Fig. 1(a): ⟨TS,{Army,Nuclear}⟩ dominates everything; ⟨S,{Army}⟩ and
     ⟨TS,{Nuclear}⟩ are incomparable; etc. *)
  Alcotest.(check int) "8 classes"
    (Option.get (Compartment.size fig1a))
    8;
  Alcotest.(check int) "height" 3 (Compartment.height fig1a);
  let s_army = mk "S" [ "Army" ] and ts_nuc = mk "TS" [ "Nuclear" ] in
  Alcotest.(check bool) "incomparable 1" false (Compartment.leq fig1a s_army ts_nuc);
  Alcotest.(check bool) "incomparable 2" false (Compartment.leq fig1a ts_nuc s_army);
  Alcotest.check ct "lub" (mk "TS" [ "Army"; "Nuclear" ])
    (Compartment.lub fig1a s_army ts_nuc);
  Alcotest.check ct "glb" (mk "S" []) (Compartment.glb fig1a s_army ts_nuc);
  Alcotest.(check bool) "S{} ⊑ TS{Army}" true
    (Compartment.leq fig1a (mk "S" []) (mk "TS" [ "Army" ]));
  Alcotest.check ct "top" (mk "TS" [ "Army"; "Nuclear" ]) (Compartment.top fig1a);
  Alcotest.check ct "bottom" (mk "S" []) (Compartment.bottom fig1a)

let covers () =
  let l = mk "TS" [ "Army" ] in
  Alcotest.(check (list ct)) "covers"
    [ mk "S" [ "Army" ]; mk "TS" [] ]
    (Compartment.covers_below fig1a l);
  Alcotest.(check (list ct)) "covers of bottom" []
    (Compartment.covers_below fig1a (Compartment.bottom fig1a))

let strings () =
  let l = mk "TS" [ "Army"; "Nuclear" ] in
  Alcotest.(check string) "to_string" "TS:{Army,Nuclear}"
    (Compartment.level_to_string fig1a l);
  Alcotest.(check (option ct)) "roundtrip" (Some l)
    (Compartment.level_of_string fig1a "TS:{Army,Nuclear}");
  Alcotest.(check (option ct)) "bare classification" (Some (mk "S" []))
    (Compartment.level_of_string fig1a "S");
  Alcotest.(check (option ct)) "bad" None (Compartment.level_of_string fig1a "X:{Army}")

let laws () =
  let module Laws = Check.Laws (Compartment) in
  (match Laws.check fig1a with Ok () -> () | Error m -> Alcotest.fail m);
  match Laws.check ~max_size:64 (Compartment.dod ~n_categories:4) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let dod () =
  (* One OCaml int covers 62 of the 64 categories the DoD standard allows;
     the full standard would take a second word. *)
  let d = Compartment.dod ~n_categories:62 in
  Alcotest.(check int) "classifications" 4 (Compartment.n_classifications d);
  Alcotest.(check int) "categories" 62 (Compartment.n_categories d);
  Alcotest.check_raises "63 rejected"
    (Invalid_argument "Powerset.create: more than 62 elements") (fun () ->
      ignore (Compartment.dod ~n_categories:63))

let residual_least_prop =
  QCheck.Test.make ~count:300
    ~name:"compartment residual is least sufficient level (footnote 4)"
    QCheck.(pair (pair (int_bound 1) (int_bound 3)) (pair (int_bound 1) (int_bound 3)))
    (fun ((c1, m1), (c2, m2)) ->
      let target = Compartment.{ cls = c1; cats = m1 } in
      let others = Compartment.{ cls = c2; cats = m2 } in
      let r = Compartment.residual fig1a ~target ~others in
      Compartment.leq fig1a target (Compartment.lub fig1a r others)
      && Seq.for_all
           (fun m' ->
             if Compartment.leq fig1a target (Compartment.lub fig1a m' others)
             then Compartment.leq fig1a r m'
             else true)
           (Compartment.levels fig1a))

let suite =
  [
    case "Fig. 1(a) structure" fig1a_structure;
    case "covers" covers;
    case "string round-trips" strings;
    case "lattice laws" laws;
    case "DoD shape" dod;
    Helpers.qcheck residual_least_prop;
  ]
