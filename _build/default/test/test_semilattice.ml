open Minup_lattice

let case = Helpers.case

let no_top () =
  (* Two incomparable maximal elements: a dummy top is required. *)
  let t =
    Semilattice.complete_exn
      ~names:[ "bot"; "a"; "b" ]
      ~order:[ ("bot", "a"); ("bot", "b") ]
  in
  Alcotest.(check bool) "has dummy top" true (t.dummy_top <> None);
  Alcotest.(check bool) "no dummy bottom" true (t.dummy_bottom = None);
  Alcotest.(check int) "4 levels" 4 (Explicit.cardinal t.lattice);
  Alcotest.(check bool) "dummy is top" true
    (Some (Explicit.top t.lattice) = t.dummy_top);
  Alcotest.(check bool) "is_dummy" true
    (Semilattice.is_dummy t (Explicit.top t.lattice));
  Alcotest.(check bool) "real not dummy" false
    (Semilattice.is_dummy t (Explicit.of_name_exn t.lattice "a"))

let no_bottom () =
  let t =
    Semilattice.complete_exn
      ~names:[ "a"; "b"; "top" ]
      ~order:[ ("a", "top"); ("b", "top") ]
  in
  Alcotest.(check bool) "has dummy bottom" true (t.dummy_bottom <> None);
  Alcotest.(check bool) "no dummy top" true (t.dummy_top = None)

let neither () =
  (* Already a lattice: nothing added. *)
  let t =
    Semilattice.complete_exn ~names:[ "a"; "b" ] ~order:[ ("a", "b") ]
  in
  Alcotest.(check bool) "no dummies" true
    (t.dummy_top = None && t.dummy_bottom = None);
  Alcotest.(check int) "unchanged" 2 (Explicit.cardinal t.lattice)

let both () =
  (* An antichain needs both dummies. *)
  let t = Semilattice.complete_exn ~names:[ "a"; "b"; "c" ] ~order:[] in
  Alcotest.(check bool) "both dummies" true
    (t.dummy_top <> None && t.dummy_bottom <> None);
  Alcotest.(check int) "5 levels" 5 (Explicit.cardinal t.lattice);
  let module Laws = Check.Laws (Explicit) in
  match Laws.check t.lattice with Ok () -> () | Error m -> Alcotest.fail m

let still_not_lattice () =
  (* Even with dummies, the inner butterfly is not a partial lattice: the
     two lower elements have two minimal upper bounds. *)
  match
    Semilattice.complete
      ~names:[ "c"; "d"; "a"; "b" ]
      ~order:[ ("c", "a"); ("c", "b"); ("d", "a"); ("d", "b") ]
  with
  | Error (Explicit.No_least_upper_bound _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Explicit.pp_error e
  | Ok _ -> Alcotest.fail "accepted the butterfly"

let suite =
  [
    case "missing top" no_top;
    case "missing bottom" no_bottom;
    case "already complete" neither;
    case "missing both" both;
    case "butterfly still rejected" still_not_lattice;
  ]
