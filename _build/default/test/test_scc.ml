module Cst = Minup_constraints.Cst
module Problem = Minup_constraints.Problem
module Scc = Minup_constraints.Scc

let case = Helpers.case

let fig2 () =
  let p =
    Problem.compile_exn ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let scc = Scc.compute p in
  Alcotest.(check int) "4 components" 4 scc.Scc.n_components;
  let id a = Option.get (Problem.attr_id p a) in
  Alcotest.(check bool) "B~M" true (Scc.same_component scc (id "B") (id "M"));
  Alcotest.(check bool) "I~N" true (Scc.same_component scc (id "I") (id "N"));
  Alcotest.(check bool) "B!~I" false (Scc.same_component scc (id "B") (id "I"));
  Alcotest.(check bool) "P alone" false (Scc.same_component scc (id "P") (id "D"))

let reverse_topological () =
  let p =
    Problem.compile_exn
      [ Cst.simple "a" (Cst.Attr "b"); Cst.simple "b" (Cst.Attr "c") ]
  in
  let scc = Scc.compute p in
  let id x = Option.get (Problem.attr_id p x) in
  (* Edge a→b means component(a) > component(b). *)
  Alcotest.(check bool) "a after b" true
    (scc.Scc.component.(id "a") > scc.Scc.component.(id "b"));
  Alcotest.(check bool) "b after c" true
    (scc.Scc.component.(id "b") > scc.Scc.component.(id "c"))

let cyclic_component () =
  let p =
    Problem.compile_exn
      [ Cst.simple "a" (Cst.Attr "b"); Cst.simple "b" (Cst.Attr "a"); Cst.simple "c" (Cst.Level 0) ]
  in
  let scc = Scc.compute p in
  let id x = Option.get (Problem.attr_id p x) in
  Alcotest.(check bool) "ab cyclic" true
    (Scc.is_cyclic_component scc p scc.Scc.component.(id "a"));
  Alcotest.(check bool) "c not cyclic" false
    (Scc.is_cyclic_component scc p scc.Scc.component.(id "c"))

(* Cross-check against reachability: same component iff mutually
   reachable. *)
let reachability_prop =
  QCheck.Test.make ~count:100 ~name:"SCC = mutual reachability" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 12;
            n_simple = 14;
            n_complex = 4;
            max_lhs = 3;
            n_constants = 2;
            constants = [ 0 ];
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.single_scc rng spec in
      (* add an acyclic tail *)
      let csts = Cst.simple "A0" (Cst.Attr "T") :: csts in
      let p = Problem.compile_exn ~attrs:(attrs @ [ "T" ]) csts in
      let n = Problem.n_attrs p in
      let reach = Array.make_matrix n n false in
      Array.iter
        (fun (c : _ Problem.cst) ->
          match c.rhs with
          | Problem.Rattr b -> Array.iter (fun a -> reach.(a).(b) <- true) c.lhs
          | Problem.Rlevel _ -> ())
        p.Problem.csts;
      for i = 0 to n - 1 do
        reach.(i).(i) <- true
      done;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let scc = Scc.compute p in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if
            scc.Scc.component.(i) = scc.Scc.component.(j)
            <> (reach.(i).(j) && reach.(j).(i))
          then ok := false
        done
      done;
      !ok)

let suite =
  [
    case "Fig. 2 components" fig2;
    case "reverse topological numbering" reverse_topological;
    case "cyclic component detection" cyclic_component;
    Helpers.qcheck reachability_prop;
  ]
