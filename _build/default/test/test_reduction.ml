open Minup_lattice
open Minup_poset

let case = Helpers.case

(* The paper's running example: (P ∨ Q) ∧ (Q ∨ ¬R). *)
let paper_formula = Sat.{ n_vars = 3; clauses = [ [ 1; 2 ]; [ 2; -3 ] ] }

let paper_example_shape () =
  let red = Reduction.build paper_formula in
  (* 3 vars × 3 elements + per 2-literal clause: C_i + 3 satisfying
     assignments = 9 + 4 + 4 = 17 elements; height one. *)
  Alcotest.(check int) "17 elements" 17 (Poset.cardinal red.Reduction.poset);
  Alcotest.(check int) "height 1" 1 (Poset.height red.Reduction.poset);
  (* 2 clause attrs + 3 wp + 3 wu. *)
  Alcotest.(check int) "8 attributes" 8 (Minposet.n_attrs red.Reduction.problem);
  (* It is genuinely not a partial lattice (that is the point). *)
  Alcotest.(check bool) "not a partial lattice" false
    (Poset.is_partial_lattice red.Reduction.poset)

let paper_example_solvable () =
  let red = Reduction.build paper_formula in
  match Minposet.satisfiable red.Reduction.problem with
  | None -> Alcotest.fail "satisfiable formula gave unsolvable min-poset"
  | Some sol ->
      let truth = Reduction.decode red sol in
      Alcotest.(check bool) "decoded assignment satisfies" true
        (Sat.satisfies paper_formula truth)

let unsat_maps_to_unsolvable () =
  let u = Sat.{ n_vars = 1; clauses = [ [ 1 ]; [ -1 ] ] } in
  let red = Reduction.build u in
  Alcotest.(check bool) "unsolvable" true
    (Minposet.satisfiable red.Reduction.problem = None)

let encode_roundtrip () =
  let red = Reduction.build paper_formula in
  let truth = Option.get (Sat.solve paper_formula) in
  let sol = Reduction.encode red truth in
  Alcotest.(check bool) "encoded satisfies min-poset" true
    (Minposet.satisfies red.Reduction.problem sol);
  let truth' = Reduction.decode red sol in
  let agree = ref true in
  for v = 1 to paper_formula.Sat.n_vars do
    if truth.(v) <> truth'.(v) then agree := false
  done;
  Alcotest.(check bool) "decode ∘ encode = id on variables" true !agree

let rejects_empty_clause () =
  Alcotest.check_raises "empty clause"
    (Invalid_argument "Reduction.build: empty clause") (fun () ->
      ignore (Reduction.build { n_vars = 1; clauses = [ [] ] }))

let tautological_clause () =
  (* x ∨ ¬x: all assignments of {x} satisfy the clause. *)
  let red = Reduction.build { n_vars = 1; clauses = [ [ 1; -1 ] ] } in
  match Minposet.satisfiable red.Reduction.problem with
  | Some _ -> ()
  | None -> Alcotest.fail "tautology should be solvable"

(* Thm. 6.1 equivalence, checked both ways on random 3-SAT. *)
let equivalence_prop =
  QCheck.Test.make ~count:60 ~name:"SAT ⇔ min-poset solvable (Thm. 6.1)"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let cnf =
        Minup_workload.Gen_sat.random_3sat rng ~n_vars:4
          ~n_clauses:(4 + Minup_workload.Prng.int rng 16)
      in
      let red = Reduction.build cnf in
      match (Sat.solve cnf, Minposet.satisfiable red.Reduction.problem) with
      | None, None -> true
      | Some truth, Some sol ->
          Minposet.satisfies red.Reduction.problem (Reduction.encode red truth)
          && Sat.satisfies cnf (Reduction.decode red sol)
      | Some _, None | None, Some _ -> false)

let suite =
  [
    case "paper example shape" paper_example_shape;
    case "paper example solvable + decodes" paper_example_solvable;
    case "unsat maps to unsolvable" unsat_maps_to_unsolvable;
    case "encode round-trip" encode_roundtrip;
    case "rejects empty clause" rejects_empty_clause;
    case "tautological clause" tautological_clause;
    Helpers.qcheck equivalence_prop;
  ]
