module Problem = Minup_constraints.Problem
module Stats = Minup_constraints.Stats

let case = Helpers.case

let fig2 () =
  let p =
    Problem.compile_exn ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let s = Stats.compute p in
  Alcotest.(check int) "attrs" 11 s.Stats.n_attrs;
  Alcotest.(check int) "constraints" 16 s.Stats.n_csts;
  Alcotest.(check int) "complex" 3 s.Stats.n_complex;
  Alcotest.(check int) "simple" 13 s.Stats.n_simple;
  (* S = 13*(1+1) + 3*(2+1) = 35 *)
  Alcotest.(check int) "S" 35 s.Stats.total_size;
  Alcotest.(check bool) "cyclic" false s.Stats.acyclic;
  Alcotest.(check int) "SCCs" 4 s.Stats.n_sccs;
  Alcotest.(check int) "largest SCC" 6 s.Stats.largest_scc;
  Alcotest.(check int) "cyclic attrs" 9 s.Stats.n_cyclic_attrs;
  Alcotest.(check int) "max lhs" 2 s.Stats.max_lhs

let acyclic_stats () =
  let _, csts =
    Minup_workload.Gen_constraints.acyclic
      (Minup_workload.Prng.create 7)
      Minup_workload.Gen_constraints.
        {
          n_attrs = 30;
          n_simple = 25;
          n_complex = 10;
          max_lhs = 4;
          n_constants = 5;
          constants = [ 0; 1 ];
        }
  in
  let s = Stats.compute (Problem.compile_exn csts) in
  Alcotest.(check bool) "acyclic" true s.Stats.acyclic;
  Alcotest.(check int) "no cyclic attrs" 0 s.Stats.n_cyclic_attrs;
  Alcotest.(check int) "singleton SCCs" s.Stats.n_attrs s.Stats.n_sccs

let suite = [ case "Fig. 2 stats" fig2; case "acyclic stats" acyclic_stats ]
