module Cst = Minup_constraints.Cst
module Problem = Minup_constraints.Problem
module Priorities = Minup_constraints.Priorities
module Scc = Minup_constraints.Scc

let case = Helpers.case

let fig2_problem () =
  Problem.compile_exn ~attrs:Minup_core.Paper.fig2_attrs
    Minup_core.Paper.fig2_constraints

let paper_priorities () =
  let p = fig2_problem () in
  let prio = Priorities.compute p in
  Alcotest.(check int) "max priority" 4 prio.Priorities.max_priority;
  let set i =
    List.sort compare
      (Array.to_list (Array.map (Problem.attr_name p) prio.Priorities.sets.(i)))
  in
  List.iteri
    (fun i expected ->
      Alcotest.(check (list string))
        (Printf.sprintf "priority[%d]" (i + 1))
        (List.sort compare expected) (set i))
    Minup_core.Paper.fig2_expected_priorities

let cycle_detection () =
  let p = fig2_problem () in
  let prio = Priorities.compute p in
  let id a = Option.get (Problem.attr_id p a) in
  List.iter
    (fun a ->
      Alcotest.(check bool) (a ^ " in cycle") true (Priorities.in_cycle prio p (id a)))
    [ "B"; "C"; "E"; "F"; "G"; "M"; "I"; "O"; "N" ];
  List.iter
    (fun a ->
      Alcotest.(check bool) (a ^ " not in cycle") false
        (Priorities.in_cycle prio p (id a)))
    [ "P"; "D" ]

let self_loop_via_hypernode () =
  (* lub{a,b} ⊒ a is trivial and dropped, but a → b → a through a
     hypernode is a real cycle. *)
  let p =
    Problem.compile_exn
      [
        Cst.make_exn ~lhs:[ "a"; "c" ] ~rhs:(Cst.Attr "b");
        Cst.simple "b" (Cst.Attr "a");
      ]
  in
  let prio = Priorities.compute p in
  let id x = Option.get (Problem.attr_id p x) in
  Alcotest.(check int) "a and b share priority" prio.Priorities.priority.(id "a")
    prio.Priorities.priority.(id "b");
  Alcotest.(check bool) "c different" true
    (prio.Priorities.priority.(id "c") <> prio.Priorities.priority.(id "a"))

(* The three invariants from the paper, cross-checked against Tarjan on
   random mixed constraint sets. *)
let invariants_prop =
  QCheck.Test.make ~count:100 ~name:"priorities match SCCs and respect edges"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 24;
            n_simple = 20;
            n_complex = 8;
            max_lhs = 3;
            n_constants = 4;
            constants = [ 0; 1; 2 ];
          }
      in
      let attrs, csts =
        Minup_workload.Gen_constraints.mixed rng spec ~n_islands:2 ~island_size:5
      in
      let p = Problem.compile_exn ~attrs csts in
      let prio = Priorities.compute p in
      let scc = Scc.compute p in
      let n = Problem.n_attrs p in
      (* (1) every attribute has exactly one priority in range *)
      let ok1 =
        Array.for_all
          (fun pr -> pr >= 1 && pr <= prio.Priorities.max_priority)
          prio.Priorities.priority
      in
      (* (2) same priority ⇔ same SCC *)
      let ok2 =
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                prio.Priorities.priority.(a) = prio.Priorities.priority.(b)
                = (scc.Scc.component.(a) = scc.Scc.component.(b)))
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      (* (3) along every constraint edge, priority does not increase
         from rhs to lhs: priority(lhs) <= priority(rhs). *)
      let ok3 =
        Array.for_all
          (fun (c : _ Problem.cst) ->
            match c.rhs with
            | Problem.Rlevel _ -> true
            | Problem.Rattr b ->
                Array.for_all
                  (fun a ->
                    prio.Priorities.priority.(a) <= prio.Priorities.priority.(b))
                  c.lhs)
          p.Problem.csts
      in
      ok1 && ok2 && ok3)

let suite =
  [
    case "paper priorities (Fig. 2(b))" paper_priorities;
    case "cycle membership" cycle_detection;
    case "hypernode cycles" self_loop_via_hypernode;
    Helpers.qcheck invariants_prop;
  ]
