(* PRNG determinism and generator well-formedness. *)

open Minup_lattice
module Prng = Minup_workload.Prng
module Gen_lattice = Minup_workload.Gen_lattice
module Gen_constraints = Minup_workload.Gen_constraints
module Problem = Minup_constraints.Problem
module Stats = Minup_constraints.Stats

let case = Helpers.case

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let seq r = List.init 20 (fun _ -> Prng.int r 1000) in
  Alcotest.(check (list int)) "same stream" (seq a) (seq b);
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true (seq (Prng.create 42) <> seq c)

let prng_bounds () =
  let r = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.int r 7 in
    if x < 0 || x >= 7 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "nonpositive" (Invalid_argument "Prng.int: nonpositive bound")
    (fun () -> ignore (Prng.int r 0))

let prng_shuffle_permutes () =
  let r = Prng.create 5 in
  let arr = Array.init 30 Fun.id in
  Prng.shuffle r arr;
  Alcotest.(check (list int)) "permutation" (List.init 30 Fun.id)
    (List.sort compare (Array.to_list arr));
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 30 Fun.id)

let prng_sample_distinct () =
  let r = Prng.create 9 in
  let s = Prng.sample r 5 (List.init 10 Fun.id) in
  Alcotest.(check int) "5 drawn" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s))

let spec =
  Gen_constraints.
    {
      n_attrs = 20;
      n_simple = 18;
      n_complex = 6;
      max_lhs = 4;
      n_constants = 5;
      constants = [ 0; 1; 2 ];
    }

let acyclic_is_acyclic () =
  for seed = 0 to 20 do
    let _, csts = Gen_constraints.acyclic (Prng.create seed) spec in
    let p = Problem.compile_exn csts in
    Alcotest.(check bool) "acyclic" true (Problem.is_acyclic p)
  done

let single_scc_is_one_component () =
  for seed = 0 to 20 do
    let attrs, csts = Gen_constraints.single_scc (Prng.create seed) spec in
    let p = Problem.compile_exn ~attrs csts in
    let s = Stats.compute p in
    Alcotest.(check int) "one SCC over the attrs" 1 s.Stats.n_sccs;
    Alcotest.(check int) "all attrs cyclic" spec.Gen_constraints.n_attrs
      s.Stats.n_cyclic_attrs
  done

let mixed_has_islands () =
  let attrs, csts =
    Gen_constraints.mixed (Prng.create 3) spec ~n_islands:3 ~island_size:4
  in
  let p = Problem.compile_exn ~attrs csts in
  let s = Stats.compute p in
  Alcotest.(check bool) "cyclic attrs = islands" true (s.Stats.n_cyclic_attrs = 12);
  Alcotest.(check int) "largest SCC = island" 4 s.Stats.largest_scc

let chain_product_laws () =
  let lat = Gen_lattice.chain_product [ 2; 1; 1 ] in
  Alcotest.(check int) "size" 12 (Explicit.cardinal lat);
  Alcotest.(check int) "height" 4 (Explicit.height lat);
  let module Laws = Minup_lattice.Check.Laws (Explicit) in
  match Laws.check lat with Ok () -> () | Error m -> Alcotest.fail m

let diamond_stack_laws () =
  let lat = Gen_lattice.diamond_stack 3 in
  Alcotest.(check int) "size" 10 (Explicit.cardinal lat);
  Alcotest.(check int) "height" 6 (Explicit.height lat);
  let module Laws = Minup_lattice.Check.Laws (Explicit) in
  match Laws.check lat with Ok () -> () | Error m -> Alcotest.fail m

let random_closure_laws =
  QCheck.Test.make ~count:40 ~name:"random closure lattices satisfy the laws"
    Helpers.seed_arb
    (fun seed ->
      let rng = Prng.create seed in
      let lat =
        Gen_lattice.random_closure_exn rng ~universe:5 ~n_generators:4 ~max_size:40
      in
      let module Laws = Minup_lattice.Check.Laws (Explicit) in
      Laws.check ~max_size:40 lat = Ok ())

let suite =
  [
    case "prng determinism" prng_deterministic;
    case "prng bounds" prng_bounds;
    case "prng shuffle permutes" prng_shuffle_permutes;
    case "prng sample distinct" prng_sample_distinct;
    case "acyclic generator" acyclic_is_acyclic;
    case "single SCC generator" single_scc_is_one_component;
    case "mixed generator" mixed_has_islands;
    case "chain product" chain_product_laws;
    case "diamond stack" diamond_stack_laws;
    Helpers.qcheck random_closure_laws;
  ]
