open Minup_lattice

let case = Helpers.case

(* An adversarial lattice module with a broken lub, to show the law checker
   actually catches violations. *)
module Broken_lub : Lattice_intf.S with type t = Total.t and type level = int =
struct
  include Total

  let lub t a b = if a = 1 && b = 2 then top t else max a b
end

module Broken_covers : Lattice_intf.S with type t = Total.t and type level = int =
struct
  include Total

  let covers_below _ l = if l = 0 then [] else [ 0 ]
end

let catches_broken_lub () =
  let module Laws = Check.Laws (Broken_lub) in
  match Laws.check (Total.anonymous 4) with
  | Error msg ->
      Alcotest.(check bool) "mentions lub" true
        (String.length msg > 0
        &&
        let lower = String.lowercase_ascii msg in
        String.length lower >= 3)
  | Ok () -> Alcotest.fail "law checker missed a broken lub"

let catches_broken_covers () =
  let module Laws = Check.Laws (Broken_covers) in
  match Laws.check (Total.anonymous 4) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "law checker missed non-immediate covers"

let catches_wrong_height () =
  let module Broken_height :
    Lattice_intf.S with type t = Total.t and type level = int = struct
    include Total

    let height t = cardinal t (* off by one *)
  end in
  let module Laws = Check.Laws (Broken_height) in
  match Laws.check (Total.anonymous 3) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "law checker missed a wrong height"

let size_guard () =
  let module Laws = Check.Laws (Powerset) in
  match Laws.check ~max_size:8 (Powerset.create [ "a"; "b"; "c"; "d" ]) with
  | Error msg ->
      Alcotest.(check bool) "guarded" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "size guard did not trip"

let suite =
  [
    case "catches broken lub" catches_broken_lub;
    case "catches broken covers" catches_broken_covers;
    case "catches wrong height" catches_wrong_height;
    case "size guard" size_guard;
  ]
