module Cst = Minup_constraints.Cst
module Problem = Minup_constraints.Problem

let case = Helpers.case

let csts =
  [
    Cst.simple "a" (Cst.Level 1);
    Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "c");
    Cst.simple "c" (Cst.Attr "d");
  ]

let interning () =
  let p = Problem.compile_exn csts in
  Alcotest.(check int) "4 attrs" 4 (Problem.n_attrs p);
  Alcotest.(check int) "3 csts" 3 (Problem.n_csts p);
  (* First-mention order: a, b, c, d. *)
  Alcotest.(check string) "attr 0" "a" (Problem.attr_name p 0);
  Alcotest.(check string) "attr 3" "d" (Problem.attr_name p 3);
  Alcotest.(check (option int)) "id of c" (Some 2) (Problem.attr_id p "c");
  Alcotest.(check (option int)) "unknown" None (Problem.attr_id p "zz")

let declared_order () =
  let p = Problem.compile_exn ~attrs:[ "z"; "a" ] csts in
  Alcotest.(check string) "declared first" "z" (Problem.attr_name p 0);
  Alcotest.(check string) "then a" "a" (Problem.attr_name p 1);
  Alcotest.(check int) "5 attrs" 5 (Problem.n_attrs p)

let strict_mode () =
  match Problem.compile ~attrs:[ "a" ] ~strict:true csts with
  | Error (Problem.Undeclared_attr _) -> ()
  | _ -> Alcotest.fail "strict mode accepted undeclared attribute"

let indexes () =
  let p = Problem.compile_exn csts in
  let a = Option.get (Problem.attr_id p "a") in
  let c = Option.get (Problem.attr_id p "c") in
  Alcotest.(check (list int)) "Constr[a]" [ 0; 1 ] p.Problem.constr_of.(a);
  Alcotest.(check (list int)) "Constr[c]" [ 2 ] p.Problem.constr_of.(c);
  Alcotest.(check (list int)) "incoming c" [ 1 ] p.Problem.incoming.(c);
  (* lhs arrays are sorted *)
  Array.iter
    (fun (cst : _ Problem.cst) ->
      let l = Array.to_list cst.lhs in
      Alcotest.(check (list int)) "sorted" (List.sort compare l) l)
    p.Problem.csts

let trivial_dropped () =
  let p =
    Problem.compile_exn
      [ Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "a"); Cst.simple "c" (Cst.Level 0) ]
  in
  Alcotest.(check int) "1 kept" 1 (Problem.n_csts p);
  Alcotest.(check int) "1 dropped" 1 (List.length p.Problem.dropped);
  (* Attributes of the dropped constraint still exist. *)
  Alcotest.(check bool) "a interned" true (Problem.attr_id p "a" <> None);
  Alcotest.(check bool) "b interned" true (Problem.attr_id p "b" <> None)

let total_size () =
  let p = Problem.compile_exn csts in
  (* S = (1+1) + (2+1) + (1+1) = 7 *)
  Alcotest.(check int) "S" 7 (Problem.total_size p)

let acyclicity () =
  Alcotest.(check bool) "dag" true (Problem.is_acyclic (Problem.compile_exn csts));
  let cyc =
    Problem.compile_exn [ Cst.simple "a" (Cst.Attr "b"); Cst.simple "b" (Cst.Attr "a") ]
  in
  Alcotest.(check bool) "cycle" false (Problem.is_acyclic cyc);
  (* Cycle through a hypernode. *)
  let hyper =
    Problem.compile_exn
      [
        Cst.make_exn ~lhs:[ "a"; "x" ] ~rhs:(Cst.Attr "b");
        Cst.simple "b" (Cst.Attr "a");
      ]
  in
  Alcotest.(check bool) "hypernode cycle" false (Problem.is_acyclic hyper)

let satisfies () =
  let p = Problem.compile_exn csts in
  let leq (a : int) b = a <= b and lub = max and bottom = 0 in
  let get names v a = List.assoc (Problem.attr_name names a) v in
  (* a=1, b=0, c=0, d=0 satisfies everything. *)
  Alcotest.(check bool) "sat" true
    (Problem.satisfies ~leq ~lub ~bottom p
       (get p [ ("a", 1); ("b", 0); ("c", 0); ("d", 0) ]));
  (* c below d violates the last constraint. *)
  Alcotest.(check bool) "unsat" false
    (Problem.satisfies ~leq ~lub ~bottom p
       (get p [ ("a", 1); ("b", 9); ("c", 0); ("d", 5) ]));
  (* complex: lub(a,b) must reach c *)
  Alcotest.(check bool) "complex sat" true
    (Problem.satisfies ~leq ~lub ~bottom p
       (get p [ ("a", 1); ("b", 7); ("c", 7); ("d", 2) ]))

let roundtrip () =
  let p = Problem.compile_exn csts in
  let back = Array.to_list (Array.map (Problem.cst_to_source p) p.Problem.csts) in
  Alcotest.(check int) "same count" (List.length csts) (List.length back);
  List.iter2
    (fun (orig : _ Cst.t) (recon : _ Cst.t) ->
      Alcotest.(check (list string))
        "lhs" (List.sort compare orig.lhs) (List.sort compare recon.lhs))
    csts back

let suite =
  [
    case "attribute interning" interning;
    case "declared order wins" declared_order;
    case "strict mode" strict_mode;
    case "constraint indexes" indexes;
    case "trivial constraints dropped" trivial_dropped;
    case "total size S" total_size;
    case "acyclicity" acyclicity;
    case "satisfaction" satisfies;
    case "source round-trip" roundtrip;
  ]
