(* Semi-lattice classification (§6). *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Semis = Minup_core.Semis

let case = Helpers.case

(* Two incomparable top levels Army / Navy over a shared Confidential. *)
let semi =
  Semilattice.complete_exn
    ~names:[ "Conf"; "Army"; "Navy" ]
    ~order:[ ("Conf", "Army"); ("Conf", "Navy") ]

let lx name = Explicit.of_name_exn semi.Semilattice.lattice name

let satisfiable_case () =
  match
    Semis.solve semi
      [ Cst.simple "a" (Cst.Level (lx "Army")); Cst.simple "b" (Cst.Attr "a") ]
  with
  | Error e -> Alcotest.failf "compile: %a" Minup_constraints.Problem.pp_error e
  | Ok outcome ->
      Alcotest.(check (list string)) "nothing unsatisfiable" []
        outcome.Semis.unsatisfiable;
      let l a = List.assoc a outcome.Semis.solution.Semis.Solve.assignment in
      Alcotest.(check string) "a at Army" "Army"
        (Explicit.level_to_string semi.Semilattice.lattice (l "a"));
      Alcotest.(check string) "b at Army" "Army"
        (Explicit.level_to_string semi.Semilattice.lattice (l "b"))

let unsatisfiable_case () =
  (* a must dominate both Army and Navy — only the dummy top does. *)
  match
    Semis.solve semi
      [
        Cst.simple "a" (Cst.Level (lx "Army"));
        Cst.simple "a" (Cst.Level (lx "Navy"));
      ]
  with
  | Error e -> Alcotest.failf "compile: %a" Minup_constraints.Problem.pp_error e
  | Ok outcome ->
      Alcotest.(check (list string)) "a unsatisfiable" [ "a" ]
        outcome.Semis.unsatisfiable

let unconstrained_case () =
  (* The order has a real bottom (Conf), so no dummy bottom exists and an
     unconstrained attribute lands on Conf without a flag. *)
  match Semis.solve semi ~attrs:[ "free" ] [] with
  | Error e -> Alcotest.failf "compile: %a" Minup_constraints.Problem.pp_error e
  | Ok outcome ->
      Alcotest.(check (list string)) "no unconstrained flag" []
        outcome.Semis.unconstrained

let dummy_bottom_flagged () =
  (* No real bottom: the unconstrained attribute is flagged. *)
  let semi2 =
    Semilattice.complete_exn
      ~names:[ "x"; "y"; "top" ]
      ~order:[ ("x", "top"); ("y", "top") ]
  in
  match
    Semis.solve semi2 ~attrs:[ "free"; "used" ]
      [ Cst.simple "used" (Cst.Level (Explicit.of_name_exn semi2.Semilattice.lattice "x")) ]
  with
  | Error e -> Alcotest.failf "compile: %a" Minup_constraints.Problem.pp_error e
  | Ok outcome ->
      Alcotest.(check (list string)) "free flagged" [ "free" ]
        outcome.Semis.unconstrained;
      Alcotest.(check (list string)) "used not flagged" []
        outcome.Semis.unsatisfiable

let suite =
  [
    case "satisfiable within real levels" satisfiable_case;
    case "dummy top flags unsatisfiable" unsatisfiable_case;
    case "real bottom: no flag" unconstrained_case;
    case "dummy bottom flags unconstrained" dummy_bottom_flagged;
  ]
