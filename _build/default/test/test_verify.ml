(* The verification oracle itself. *)

open Helpers

let case = Helpers.case

let dominance () =
  let a = [| lvl "L4"; lvl "L2" |] and b = [| lvl "L2"; lvl "L2" |] in
  Alcotest.(check bool) "a dominates b" true (V.dominates fig1b a b);
  Alcotest.(check bool) "b does not dominate a" false (V.dominates fig1b b a);
  let c = [| lvl "L5"; lvl "L1" |] in
  Alcotest.(check bool) "incomparable 1" false (V.dominates fig1b a c);
  Alcotest.(check bool) "incomparable 2" false (V.dominates fig1b c a)

let minimal_among () =
  let sols =
    [ [| lvl "L2" |]; [| lvl "L3" |]; [| lvl "L4" |]; [| lvl "L6" |] ]
  in
  let min = V.minimal_among fig1b sols in
  Alcotest.(check int) "two minimal" 2 (List.length min);
  Alcotest.(check bool) "L2 minimal" true
    (List.exists (fun s -> V.equal_assignment fig1b s [| lvl "L2" |]) min);
  Alcotest.(check bool) "L4 not minimal" false
    (List.exists (fun s -> V.equal_assignment fig1b s [| lvl "L4" |]) min)

let all_solutions_counts () =
  (* a ⊒ L5 over fig1b: solutions are a ∈ {L5, L6}. *)
  let p = S.compile_exn ~lattice:fig1b [ level_cst "a" "L5" ] in
  match V.all_solutions p with
  | Ok sols -> Alcotest.(check int) "two solutions" 2 (List.length sols)
  | Error `Too_large -> Alcotest.fail "too large"

let non_minimal_detected () =
  let p = S.compile_exn ~lattice:fig1b [ level_cst "a" "L2" ] in
  Alcotest.(check bool) "L6 not minimal" true
    (V.is_minimal_solution p [| lvl "L6" |] = Ok false);
  Alcotest.(check bool) "L2 minimal" true
    (V.is_minimal_solution p [| lvl "L2" |] = Ok true);
  (* An assignment violating the constraint is not a minimal solution. *)
  Alcotest.(check bool) "violating not minimal" true
    (V.is_minimal_solution p [| lvl "L1" |] = Ok false)

let simultaneous_lowering_needed () =
  (* In the cycle a=b, (L3,L3) satisfies but is not minimal even though no
     single attribute can be lowered alone — the oracle must catch it. *)
  let p =
    S.compile_exn ~lattice:fig1b [ attr_cst "a" "b"; attr_cst "b" "a" ]
  in
  Alcotest.(check bool) "joint lowering detected" true
    (V.is_minimal_solution p [| lvl "L3"; lvl "L3" |] = Ok false)

let cap_guard () =
  let attrs = List.init 12 (Printf.sprintf "a%d") in
  let p = S.compile_exn ~lattice:fig1b ~attrs [] in
  match V.all_solutions ~cap:1000 p with
  | Error `Too_large -> ()
  | Ok _ -> Alcotest.fail "cap did not trip"

let suite =
  [
    case "pointwise dominance" dominance;
    case "minimal_among" minimal_among;
    case "all_solutions" all_solutions_counts;
    case "non-minimal detected" non_minimal_detected;
    case "simultaneous lowering needed" simultaneous_lowering_needed;
    case "cap guard" cap_guard;
  ]
