(* Policy evolution: a policy change lands, impact analysis shows exactly
   what moved, and the explanation facility justifies the new levels —
   the review workflow for classification changes.

   Run with: dune exec examples/policy_evolution.exe *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Impact = Minup_core.Impact.Make (Total)
module Explain = Minup_core.Explain.Make (Total)
module Solver = Minup_core.Solver.Make (Total)

let () =
  let lattice = Total.create [ "Public"; "Internal"; "Confidential"; "Secret" ] in
  let lvl = Total.of_name_exn lattice in
  let level n = Cst.Level (lvl n) in
  (* The standing policy. *)
  let base =
    [
      Cst.simple "salary" (level "Internal");
      Cst.simple "ssn" (level "Confidential");
      Cst.make_exn ~lhs:[ "name"; "ssn" ] ~rhs:(level "Secret");
      Cst.simple "payroll" (Cst.Attr "salary");
    ]
  in
  (* The change under review: salary data is reclassified Confidential,
     and a new inference channel is recorded (department and grade
     determine salary). *)
  let added =
    [
      Cst.simple "salary" (level "Confidential");
      Cst.make_exn ~lhs:[ "department"; "grade" ] ~rhs:(Cst.Attr "salary");
    ]
  in
  print_endline "== impact of the proposed change ==";
  (match Impact.of_added_constraints ~lattice ~base ~added () with
  | Error e -> Format.printf "error: %a@." Minup_constraints.Problem.pp_error e
  | Ok report ->
      Format.printf "%a@." (Impact.pp_report lattice) report;
      print_endline "\n== justification of the new classification ==";
      let problem =
        Solver.compile_exn ~lattice (base @ added)
      in
      print_string (Explain.report problem report.Impact.solution.Solver.levels);
      Printf.printf "\nminimal: %b\n"
        (Explain.is_locally_minimal problem report.Impact.solution.Solver.levels))
