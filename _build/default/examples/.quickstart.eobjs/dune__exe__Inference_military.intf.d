examples/inference_military.mli:
