examples/paper_figure2.mli:
