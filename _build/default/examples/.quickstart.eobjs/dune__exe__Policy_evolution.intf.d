examples/policy_evolution.mli:
