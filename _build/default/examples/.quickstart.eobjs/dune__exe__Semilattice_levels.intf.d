examples/semilattice_levels.mli:
