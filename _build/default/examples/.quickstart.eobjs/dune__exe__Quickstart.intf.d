examples/quickstart.mli:
