examples/mls_employee.ml: Extract Fd Instance List Minup_core Minup_lattice Minup_mls Printf Schema Total
