examples/semilattice_levels.ml: Explicit Format List Minup_constraints Minup_core Minup_lattice Printf Semilattice String
