examples/paper_figure2.ml: Array Explicit Format List Minup_constraints Minup_core Minup_lattice Option Printf String
