examples/policy_evolution.ml: Format Minup_constraints Minup_core Minup_lattice Printf Total
