examples/upper_bounds.ml: Array Format List Minup_constraints Minup_core Minup_lattice Printf Total
