examples/np_hardness.mli:
