examples/mls_employee.mli:
