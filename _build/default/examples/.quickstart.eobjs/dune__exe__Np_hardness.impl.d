examples/np_hardness.ml: Array Minposet Minup_lattice Minup_poset Poset Printf Reduction Sat
