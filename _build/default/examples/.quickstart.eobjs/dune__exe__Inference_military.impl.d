examples/inference_military.ml: Compartment Format List Minup_constraints Minup_core Minup_lattice Printf String
