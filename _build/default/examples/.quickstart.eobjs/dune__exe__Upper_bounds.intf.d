examples/upper_bounds.mli:
