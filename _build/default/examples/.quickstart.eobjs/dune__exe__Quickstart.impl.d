examples/quickstart.ml: Explicit List Minup_constraints Minup_core Minup_lattice Printf
