(* Upper-bound constraints (§6): guaranteeing visibility.  A hospital
   wants patient names readable by ward staff (an upper bound) while the
   name+diagnosis association stays highly classified; the solver must
   push the upgrade onto the diagnosis.  A second run shows inconsistency
   detection when the bounds contradict the lower bounds.

   Run with: dune exec examples/upper_bounds.exe *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Solver = Minup_core.Solver.Make (Total)

let () =
  let lattice = Total.create [ "Ward"; "Clinic"; "Hospital"; "Board" ] in
  let lvl = Total.of_name_exn lattice in
  let level n = Cst.Level (lvl n) in
  let constraints =
    [
      (* The association of a name with a diagnosis is Board-only. *)
      Cst.make_exn ~lhs:[ "name"; "diagnosis" ] ~rhs:(level "Board");
      (* Diagnoses are at least Clinic. *)
      Cst.simple "diagnosis" (level "Clinic");
      (* Billing code reveals the diagnosis. *)
      Cst.simple "billing" (Cst.Attr "diagnosis");
    ]
  in
  let problem = Solver.compile_exn ~lattice constraints in

  (* Visibility guarantee: ward staff must be able to read names. *)
  print_endline "bounds: name ⊑ Ward";
  (match Solver.solve_with_bounds problem [ ("name", lvl "Ward") ] with
  | Ok solution ->
      print_endline "classification:";
      List.iter
        (fun (attr, l) ->
          Printf.printf "  %-10s %s\n" attr (Total.name lattice l))
        solution.Solver.assignment;
      Printf.printf "satisfies: %b\n"
        (Solver.satisfies problem solution.Solver.levels)
  | Error i ->
      Format.printf "inconsistent: %a@." (Solver.pp_inconsistency lattice) i);

  (* Derived bounds: capping billing also caps nothing upstream, but
     capping diagnosis caps billing's floor source. *)
  print_endline "\nderived upper bounds for diagnosis ⊑ Hospital:";
  (match Solver.derive_upper_bounds problem [ ("diagnosis", lvl "Hospital") ] with
  | Ok ub ->
      Array.iteri
        (fun a l ->
          Printf.printf "  %-10s ⊑ %s\n"
            (Minup_constraints.Problem.attr_name problem.Solver.prob a)
            (Total.name lattice l))
        ub
  | Error i ->
      Format.printf "inconsistent: %a@." (Solver.pp_inconsistency lattice) i);

  (* An impossible demand: diagnosis readable by the ward. *)
  print_endline "\nbounds: diagnosis ⊑ Ward (conflicts with diagnosis ⊒ Clinic)";
  match Solver.solve_with_bounds problem [ ("diagnosis", lvl "Ward") ] with
  | Ok _ -> print_endline "unexpectedly consistent!"
  | Error i ->
      Format.printf "rejected: %a@." (Solver.pp_inconsistency lattice) i
