(* Quickstart: build a lattice, state constraints, get a minimal
   classification.

   Run with: dune exec examples/quickstart.exe *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Solver = Minup_core.Solver.Make (Explicit)

let () =
  (* 1. A security lattice, from its Hasse diagram (Fig. 1(b) of the
     paper).  Creation validates that the order really is a lattice. *)
  let lattice = Minup_core.Paper.fig1b in
  let level name = Cst.Level (Explicit.of_name_exn lattice name) in

  (* 2. Classification constraints (§3.1's example):
     - basic lower bounds on single attributes,
     - an association constraint on the pair. *)
  let constraints =
    [
      Cst.simple "A" (level "L1");
      Cst.simple "B" (level "L2");
      Cst.make_exn ~lhs:[ "A"; "B" ] ~rhs:(level "L4");
    ]
  in

  (* 3. Compile and solve. *)
  let problem = Solver.compile_exn ~lattice constraints in
  let solution = Solver.solve problem in

  print_endline "minimal classification:";
  List.iter
    (fun (attr, l) ->
      Printf.printf "  λ(%s) = %s\n" attr (Explicit.level_to_string lattice l))
    solution.Solver.assignment;

  (* 4. Verify: the solution satisfies the constraints and is pointwise
     minimal (here checked against the exhaustive oracle). *)
  let module Verify = Minup_core.Verify.Make (Explicit) in
  Printf.printf "satisfies constraints: %b\n"
    (Solver.satisfies problem solution.Solver.levels);
  (match Verify.is_minimal_solution problem solution.Solver.levels with
  | Ok ok -> Printf.printf "pointwise minimal:     %b\n" ok
  | Error `Too_large -> print_endline "oracle skipped (too large)");

  (* The paper notes this instance has exactly two minimal solutions:
     upgrade A to L3, or B to L4. *)
  match Verify.minimal_solutions problem with
  | Ok sols -> Printf.printf "number of minimal solutions: %d\n" (List.length sols)
  | Error `Too_large -> ()
