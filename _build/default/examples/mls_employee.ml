(* A multilevel employee database: classification constraints are
   extracted automatically from the schema (keys, foreign keys, functional
   dependencies) and combined with explicit policy; the computed minimal
   classification then drives per-clearance views.

   Run with: dune exec examples/mls_employee.exe *)

open Minup_lattice
open Minup_mls
module Solver = Minup_core.Solver.Make (Total)

let () =
  (* The classification ladder. *)
  let lattice = Total.create [ "Public"; "Internal"; "Confidential"; "Secret" ] in
  let lvl = Total.of_name_exn lattice in

  (* Relational schema: employees reference departments. *)
  let schema =
    Schema.create_exn
      [
        {
          Schema.rel_name = "employee";
          columns = [ "id"; "name"; "dept"; "rank"; "salary" ];
          key = [ "id" ];
        };
        {
          Schema.rel_name = "department";
          columns = [ "dname"; "budget" ];
          key = [ "dname" ];
        };
      ]
      [ { Schema.from_rel = "employee"; from_cols = [ "dept" ]; to_rel = "department" } ]
  in

  (* The inference channel from the paper's introduction: rank and
     department determine salary. *)
  let fds = [ ("employee", Fd.make ~lhs:[ "rank"; "dept" ] ~rhs:[ "salary" ]) ] in

  (* Explicit policy: salaries are Confidential; budgets Secret; the
     association of a name with its salary is Secret even if each alone is
     not. *)
  let basic =
    [ ("employee.salary", lvl "Confidential"); ("department.budget", lvl "Secret") ]
  in
  let associations = [ ([ "employee.name"; "employee.salary" ], lvl "Secret") ] in

  let constraints = Extract.all ~schema ~fds ~basic ~associations in
  Printf.printf "extracted %d constraints from the schema and policy\n\n"
    (List.length constraints);

  let problem = Solver.compile_exn ~lattice constraints in
  let solution = Solver.solve problem in

  print_endline "minimal classification:";
  List.iter
    (fun (attr, l) ->
      Printf.printf "  %-18s %s\n" attr (Total.name lattice l))
    solution.Solver.assignment;

  (* A concrete instance, viewed at different clearances. *)
  let table =
    Instance.make_exn ~relation:"employee"
      ~columns:[ "id"; "name"; "dept"; "rank"; "salary" ]
      [
        [ "1"; "alice"; "crypto"; "E7"; "184000" ];
        [ "2"; "bob"; "ops"; "E5"; "132000" ];
        [ "3"; "carol"; "crypto"; "E6"; "158000" ];
      ]
  in
  let classification attr =
    match Solver.find problem solution attr with
    | Some l -> l
    | None -> Total.bottom lattice
  in
  List.iter
    (fun clearance ->
      Printf.printf "\n== view at clearance %s ==\n" clearance;
      let subject = lvl clearance in
      let readable attr = Total.leq lattice (classification attr) subject in
      print_endline (Instance.render (Instance.view_at ~readable table)))
    [ "Public"; "Confidential"; "Secret" ]
