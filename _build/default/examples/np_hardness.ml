(* Thm. 6.1: over arbitrary posets the problem is NP-complete.  This demo
   builds the Fig. 4 reduction for the paper's formula (P ∨ Q) ∧ (Q ∨ ¬R),
   solves the resulting min-poset instance by backtracking, and decodes a
   satisfying truth assignment — then does the same for an unsatisfiable
   formula.

   Run with: dune exec examples/np_hardness.exe *)

open Minup_lattice
open Minup_poset

let show cnf label =
  Printf.printf "== %s ==\n" label;
  let red = Reduction.build cnf in
  Printf.printf "reduction poset: %d elements, height %d, partial lattice: %b\n"
    (Poset.cardinal red.Reduction.poset)
    (Poset.height red.Reduction.poset)
    (Poset.is_partial_lattice red.Reduction.poset);
  Printf.printf "min-poset instance: %d attributes\n"
    (Minposet.n_attrs red.Reduction.problem);
  let sat, sat_decisions = Sat.solve_count cnf in
  let sol, mp_decisions = Minposet.satisfiable_count red.Reduction.problem in
  Printf.printf "DPLL: %s (%d decisions);  min-poset: %s (%d decisions)\n"
    (if sat <> None then "SAT" else "UNSAT")
    sat_decisions
    (if sol <> None then "solvable" else "unsolvable")
    mp_decisions;
  (match sol with
  | Some assignment ->
      let truth = Reduction.decode red assignment in
      Printf.printf "decoded assignment:";
      for v = 1 to cnf.Sat.n_vars do
        Printf.printf " x%d=%b" v truth.(v)
      done;
      Printf.printf "  (satisfies formula: %b)\n" (Sat.satisfies cnf truth);
      (* Show a few attribute placements of the minimized solution. *)
      let minimized = Minposet.minimize red.Reduction.problem assignment in
      print_endline "minimized min-poset solution:";
      Array.iteri
        (fun i e ->
          Printf.printf "  %s = %s\n"
            (Minposet.attr_name red.Reduction.problem i)
            (Poset.name red.Reduction.poset e))
        minimized
  | None -> ());
  print_newline ()

let () =
  (* The paper's example: (P ∨ Q) ∧ (Q ∨ ¬R). *)
  show { n_vars = 3; clauses = [ [ 1; 2 ]; [ 2; -3 ] ] } "(P ∨ Q) ∧ (Q ∨ ¬R)";
  (* An unsatisfiable formula maps to an unsolvable instance. *)
  show
    { n_vars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] }
    "all four 2-clauses over {x1,x2} (unsatisfiable)"
