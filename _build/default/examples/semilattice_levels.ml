(* Semi-lattices (§6): orders missing a top (no subject sees everything)
   or a bottom (nothing is public).  The completion adds dummies; residual
   dummies in the answer flag unsatisfiable or unconstrained attributes.

   Run with: dune exec examples/semilattice_levels.exe *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Semis = Minup_core.Semis

let () =
  (* Two service branches share a Confidential floor but have no common
     top: nobody is cleared for both. *)
  let semi =
    Semilattice.complete_exn
      ~names:[ "Confidential"; "ArmySecret"; "NavySecret" ]
      ~order:
        [ ("Confidential", "ArmySecret"); ("Confidential", "NavySecret") ]
  in
  Printf.printf "completed lattice has %d levels (dummy top added: %b)\n\n"
    (Explicit.cardinal semi.Semilattice.lattice)
    (semi.Semilattice.dummy_top <> None);
  let lvl n = Cst.Level (Explicit.of_name_exn semi.Semilattice.lattice n) in
  let run label csts =
    Printf.printf "== %s ==\n" label;
    match Semis.solve semi csts with
    | Error e -> Format.printf "error: %a@." Minup_constraints.Problem.pp_error e
    | Ok outcome ->
        List.iter
          (fun (attr, l) ->
            Printf.printf "  %-10s %s\n" attr
              (Explicit.level_to_string semi.Semilattice.lattice l))
          outcome.Semis.solution.Semis.Solve.assignment;
        if outcome.Semis.unsatisfiable <> [] then
          Printf.printf "  UNSATISFIABLE within real levels: %s\n"
            (String.concat ", " outcome.Semis.unsatisfiable);
        if outcome.Semis.unconstrained <> [] then
          Printf.printf "  unconstrained (at dummy bottom): %s\n"
            (String.concat ", " outcome.Semis.unconstrained);
        print_newline ()
  in
  (* Fine: each attribute fits inside one branch. *)
  run "branch-local requirements"
    [
      Cst.simple "artillery" (lvl "ArmySecret");
      Cst.simple "sonar" (lvl "NavySecret");
      Cst.simple "logistics" (lvl "Confidential");
    ];
  (* Impossible: one attribute needs both branches — it lands on the dummy
     top and is reported. *)
  run "joint-branch requirement (unsatisfiable)"
    [
      Cst.simple "jointops" (lvl "ArmySecret");
      Cst.simple "jointops" (lvl "NavySecret");
    ]
