open Minup_lattice
module S = Minup_core.Solver.Make (Explicit)
module V = Minup_core.Verify.Make (Explicit)

let () =
  let seed = 657906 in
  let rng = Minup_workload.Prng.create seed in
  let lat =
    Minup_workload.Gen_lattice.random_closure_exn rng ~universe:4 ~n_generators:3
      ~max_size:12
  in
  Printf.printf "lattice (%d levels):\n" (Explicit.cardinal lat);
  List.iter
    (fun (a, b) ->
      Printf.printf "  %s < %s\n" (Explicit.name lat a) (Explicit.name lat b))
    (Explicit.cover_pairs lat);
  let spec =
    Minup_workload.Gen_constraints.
      { n_attrs = 6; n_simple = 5; n_complex = 2; max_lhs = 3; n_constants = 3;
        constants = Explicit.all lat }
  in
  let attrs, csts = Minup_workload.Gen_constraints.acyclic rng spec in
  List.iter
    (fun c ->
      Format.printf "  %a@." (Minup_constraints.Cst.pp (Explicit.pp_level lat)) c)
    csts;
  let p = S.compile_exn ~lattice:lat ~attrs csts in
  let sol = S.solve p in
  Printf.printf "satisfies=%b\n" (S.satisfies p sol.S.levels);
  List.iter
    (fun (a, l) -> Printf.printf "  %s=%s\n" a (Explicit.level_to_string lat l))
    sol.S.assignment;
  (match V.is_minimal_solution ~cap:500_000 p sol.S.levels with
   | Ok b -> Printf.printf "minimal=%b\n" b
   | Error `Too_large -> print_endline "too large");
  match V.minimal_solutions ~cap:500_000 p with
  | Ok sols ->
      Printf.printf "%d minimal solutions, e.g.:\n" (List.length sols);
      (match sols with
       | s :: _ ->
           Array.iteri
             (fun i l ->
               Printf.printf "  %s=%s\n"
                 (Minup_constraints.Problem.attr_name p.S.prob i)
                 (Explicit.level_to_string lat l))
             s
       | [] -> ())
  | Error `Too_large -> print_endline "enum too large"
