(** The Qian-style baseline (reference [13] of the paper).

    Qian's view-based algorithm computes classifications from constraints
    in polynomial time but, as the paper notes in §1, "does not guarantee
    minimality and, in fact, tends to overclassify information
    unnecessarily."  We model that behavioral profile with the natural
    monotone fixpoint labeler: start everything at ⊥ and, whenever a
    constraint [lub{lhs} ⊒ target] is unsatisfied, raise {e every}
    left-hand-side attribute to dominate the target (rather than choosing
    one attribute to upgrade, which is where the minimality of the paper's
    algorithm comes from).

    The result always satisfies the constraints and is computed in
    [O(N_A · H)] rounds over the constraint set, but complex constraints
    overclassify all but one of their left-hand-side attributes. *)

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Minup_core.Solver.Make (L)

  (** [solve problem] — the fixpoint labeling, as an assignment array
      indexed like {!Minup_core.Solver.Make.solution.levels}. *)
  let solve (problem : S.problem) =
    let lat = problem.lat in
    let prob = problem.prob in
    let n = Minup_constraints.Problem.n_attrs prob in
    let lam = Array.make n (L.bottom lat) in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (c : _ Minup_constraints.Problem.cst) ->
          let target =
            match c.rhs with
            | Minup_constraints.Problem.Rlevel l -> l
            | Minup_constraints.Problem.Rattr a -> lam.(a)
          in
          let combined =
            Array.fold_left
              (fun acc a -> L.lub lat acc lam.(a))
              (L.bottom lat) c.lhs
          in
          if not (L.leq lat target combined) then begin
            Array.iter
              (fun a ->
                let raised = L.lub lat lam.(a) target in
                if not (L.equal lat raised lam.(a)) then begin
                  lam.(a) <- raised;
                  changed := true
                end)
              c.lhs
          end)
        prob.Minup_constraints.Problem.csts
    done;
    lam
end
