(** The rejected alternative (1) of §3.2: back-propagation with
    backtracking over upgrade choices.

    A complex constraint can be solved minimally by upgrading {e any one}
    left-hand-side attribute, {e provided} the levels of the right-hand
    side and the remaining left-hand-side attributes are already final.
    This baseline therefore explores every {e choice vector} — one chosen
    attribute per complex constraint — and for each one schedules the
    constraints exactly as back-propagation would: a simple constraint
    fires once its right-hand side is final; a complex constraint fires
    once its right-hand side and its non-chosen attributes are final; an
    attribute becomes final once all constraints that can raise it have
    fired.  A choice vector whose schedule deadlocks (the choices are
    incompatible with any evaluation order, which is guaranteed to happen
    on constraint cycles) is completed by a best-effort fixpoint and
    flagged as inexact.

    On acyclic inputs, every exactly-scheduled candidate is a minimal
    classification (the same argument as the paper's minimality proof for
    back-propagation), and at least one choice vector schedules exactly —
    so {!Make.solve} is correct there.  The cost, however, is
    [Π |lhs|] schedules — "proportional to the product of the sizes of the
    left-hand sides of all constraints" — which is precisely why the paper
    rejects the approach; the ABL-BT benchmark measures that blow-up. *)

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Minup_core.Solver.Make (L)
  module P = Minup_constraints.Problem

  (* Least m with m ⊔ others ⊒ target: the Minlevel walk, from ⊤. *)
  let minimal_upgrade lat ~target ~others =
    if L.leq lat target others then L.bottom lat
    else begin
      let last = ref (L.top lat) in
      let continue = ref true in
      while !continue do
        match
          List.find_opt
            (fun l' -> L.leq lat target (L.lub lat l' others))
            (L.covers_below lat !last)
        with
        | Some l' -> last := l'
        | None -> continue := false
      done;
      !last
    end

  type candidate = { levels : L.level array; exact : bool }

  (* Run one choice vector through the dependency-aware schedule. *)
  let schedule (problem : S.problem) choice =
    let lat = problem.lat in
    let prob = problem.prob in
    let n = P.n_attrs prob in
    let csts = prob.P.csts in
    let lam = Array.make n (L.bottom lat) in
    let fired = Array.map (fun _ -> false) csts in
    let final = Array.make n false in
    let target_of (c : _ P.cst) =
      match c.rhs with P.Rlevel l -> l | P.Rattr b -> lam.(b)
    in
    let rhs_final (c : _ P.cst) =
      match c.rhs with P.Rlevel _ -> true | P.Rattr b -> final.(b)
    in
    let chosen ci =
      let c = csts.(ci) in
      if Array.length c.lhs = 1 then c.lhs.(0) else c.lhs.(choice ci)
    in
    let fire ci =
      let c = csts.(ci) in
      let a = chosen ci in
      let others =
        Array.fold_left
          (fun acc a' -> if a' = a then acc else L.lub lat acc lam.(a'))
          (L.bottom lat) c.lhs
      in
      let up = minimal_upgrade lat ~target:(target_of c) ~others in
      lam.(a) <- L.lub lat lam.(a) up;
      fired.(ci) <- true
    in
    let ready ci =
      let c = csts.(ci) in
      (not fired.(ci))
      && rhs_final c
      && Array.for_all (fun a -> a = chosen ci || final.(a)) c.lhs
    in
    let raisers a =
      (* constraint indices that can raise attribute a under this choice *)
      List.filter (fun ci -> chosen ci = a) prob.P.constr_of.(a)
    in
    let exact = ref true in
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iteri (fun ci _ -> if ready ci then begin fire ci; progress := true end) csts;
      for a = 0 to n - 1 do
        if (not final.(a)) && List.for_all (fun ci -> fired.(ci)) (raisers a)
        then begin
          final.(a) <- true;
          progress := true
        end
      done
    done;
    (* Deadlock (cycles or incompatible choices): finish with a monotone
       fixpoint; the result may not be minimal. *)
    if Array.exists not fired then begin
      exact := false;
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun ci (c : _ P.cst) ->
            let combined =
              Array.fold_left (fun acc a -> L.lub lat acc lam.(a)) (L.bottom lat) c.lhs
            in
            if not (L.leq lat (target_of c) combined) then begin
              let a = chosen ci in
              let others =
                Array.fold_left
                  (fun acc a' -> if a' = a then acc else L.lub lat acc lam.(a'))
                  (L.bottom lat) c.lhs
              in
              let up = minimal_upgrade lat ~target:(target_of c) ~others in
              let raised = L.lub lat lam.(a) up in
              if not (L.equal lat raised lam.(a)) then begin
                lam.(a) <- raised;
                changed := true
              end
            end)
          csts
      done
    end;
    { levels = lam; exact = !exact }

  (** Number of choice vectors ([Π |lhs|] over complex constraints) —
      the quantity the paper's rejection argument is about.  [None] on
      overflow. *)
  let search_space (problem : S.problem) =
    Array.fold_left
      (fun acc (c : _ P.cst) ->
        match acc with
        | None -> None
        | Some s ->
            let k = Array.length c.lhs in
            if k <= 1 then acc
            else if s > max_int / k then None
            else Some (s * k))
      (Some 1) problem.prob.P.csts

  (** All satisfying classifications reachable by some choice vector.
      Cost proportional to {!search_space}. *)
  let candidates (problem : S.problem) =
    let csts = problem.prob.P.csts in
    let nc = Array.length csts in
    let choice = Array.make nc 0 in
    let out = ref [] in
    let rec go ci =
      if ci = nc then begin
        let c = schedule problem (fun i -> choice.(i)) in
        if S.satisfies problem c.levels then out := c :: !out
      end
      else begin
        let k = Array.length csts.(ci).P.lhs in
        if k <= 1 then go (ci + 1)
        else
          for v = 0 to k - 1 do
            choice.(ci) <- v;
            go (ci + 1)
          done
      end
    in
    go 0;
    List.rev !out

  (** A minimal classification, by exhaustive choice-vector search.
      Prefers exactly-scheduled candidates (always minimal on acyclic
      inputs) over deadlock-completed ones.  Raises [Invalid_argument] if
      the search space exceeds [max_space] (default [200_000]). *)
  let solve ?(max_space = 200_000) (problem : S.problem) =
    (match search_space problem with
    | Some s when s <= max_space -> ()
    | _ -> invalid_arg "Backtrack.solve: choice space too large");
    let cands = candidates problem in
    let lat = problem.lat in
    let dominates a b =
      let ok = ref true in
      Array.iteri (fun i ai -> if not (L.leq lat b.(i) ai) then ok := false) a;
      !ok
    in
    let pool =
      match List.filter (fun c -> c.exact) cands with
      | [] -> cands
      | exact -> exact
    in
    let levels = List.map (fun c -> c.levels) pool in
    let minimal =
      List.filter
        (fun s ->
          not (List.exists (fun s' -> dominates s s' && not (dominates s' s)) levels))
        levels
    in
    match minimal with m :: _ -> Some m | [] -> None
end
