(** The Qian-style baseline (reference [13] of the paper): a polynomial
    view-based labeler that satisfies every constraint but upgrades whole
    left-hand sides instead of choosing one attribute — sound, not
    minimal.  See the implementation comment for the behavioral model. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  module S : module type of Minup_core.Solver.Make (L)

  (** Monotone raise-to-fixpoint labeling; always satisfies the problem's
      constraints; overclassifies whenever a complex constraint leaves a
      choice. *)
  val solve : S.problem -> L.level array
end
