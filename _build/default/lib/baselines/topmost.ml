(** The trivial classifier: everything at ⊤.

    "The mapping λ : A ↦ {⊤} ... satisfies any set of classification
    constraints.  Such a strong classification is clearly undesirable"
    (§2).  It anchors the information-loss comparisons: the worst sound
    classifier any approach must beat. *)

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Minup_core.Solver.Make (L)

  let solve (problem : S.problem) =
    Array.make
      (Minup_constraints.Problem.n_attrs problem.prob)
      (L.top problem.lat)
end
