(** The trivial classifier — everything at ⊤ (§2's worst sound
    classification), anchoring the information-loss comparisons. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  module S : module type of Minup_core.Solver.Make (L)

  val solve : S.problem -> L.level array
end
