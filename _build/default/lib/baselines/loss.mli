(** Information-loss measures: quantify overclassification of a candidate
    assignment against a reference (usually the algorithm's minimal
    solution). *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  (** [ranker lat] memoizes the rank of a level — the length of the
      longest cover-chain from ⊥ up to it. *)
  val ranker : L.t -> L.level -> int

  (** How many attributes the candidate classifies strictly above the
      reference. *)
  val n_overclassified :
    L.t -> reference:L.level array -> L.level array -> int

  (** Total unnecessary upgrading in lattice-rank steps:
      [Σ max(0, rank(candidate) − rank(reference))]. *)
  val excess_rank : L.t -> reference:L.level array -> L.level array -> int
end
