lib/baselines/qian.ml: Array Minup_constraints Minup_core Minup_lattice
