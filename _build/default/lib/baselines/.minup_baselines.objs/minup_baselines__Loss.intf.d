lib/baselines/loss.mli: Minup_lattice
