lib/baselines/backtrack.mli: Minup_constraints Minup_core Minup_lattice
