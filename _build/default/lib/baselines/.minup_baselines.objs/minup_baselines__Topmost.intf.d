lib/baselines/topmost.mli: Minup_core Minup_lattice
