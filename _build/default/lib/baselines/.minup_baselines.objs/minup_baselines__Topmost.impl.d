lib/baselines/topmost.ml: Array Minup_constraints Minup_core Minup_lattice
