lib/baselines/loss.ml: Array List Map Minup_lattice
