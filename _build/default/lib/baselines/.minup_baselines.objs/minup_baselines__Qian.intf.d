lib/baselines/qian.mli: Minup_core Minup_lattice
