lib/baselines/backtrack.ml: Array List Minup_constraints Minup_core Minup_lattice
