(** Information-loss measures for comparing classifications.

    "Minimizing information loss" is what distinguishes the paper's
    algorithm from sound-but-overclassifying approaches (Qian [13]).  These
    measures quantify overclassification of one assignment against a
    reference:

    - {!Make.n_overclassified} — how many attributes sit strictly above the
      reference level;
    - {!Make.excess_rank} — total number of lattice levels of unnecessary
      upgrading, where a level's rank is the length of the longest chain
      from ⊥ up to it. *)

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  (** [ranker lat] is a memoizing rank function: the length of the longest
      cover-chain from the bottom to a level. *)
  let ranker lat =
    let module M = Map.Make (struct
      type t = L.level

      let compare = L.compare_level lat
    end) in
    let memo = ref M.empty in
    let rec rank l =
      match M.find_opt l !memo with
      | Some r -> r
      | None ->
          let r =
            List.fold_left
              (fun acc c -> max acc (1 + rank c))
              0 (L.covers_below lat l)
          in
          memo := M.add l r !memo;
          r
    in
    rank

  let n_overclassified lat ~reference candidate =
    let count = ref 0 in
    Array.iteri
      (fun i l ->
        if L.leq lat reference.(i) l && not (L.equal lat reference.(i) l) then
          incr count)
      candidate;
    !count

  let excess_rank lat ~reference candidate =
    let rank = ranker lat in
    let total = ref 0 in
    Array.iteri
      (fun i l -> total := !total + max 0 (rank l - rank reference.(i)))
      candidate;
    !total
end
