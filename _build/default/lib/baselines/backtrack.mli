(** The rejected alternative (1) of §3.2: back-propagation with
    backtracking over which left-hand-side attribute each complex
    constraint upgrades.  Exponential in the product of left-hand-side
    sizes — exactly the cost the paper's forward-lowering approach avoids
    (benchmark ABL-BT).  See the implementation comment for the
    scheduling model. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  module S : module type of Minup_core.Solver.Make (L)
  module P = Minup_constraints.Problem

  type candidate = {
    levels : L.level array;
    exact : bool;
        (** the schedule completed without deadlock: on acyclic inputs such
            candidates are minimal *)
  }

  (** Least [m] with [lub m others ⊒ target], walking covers from ⊤. *)
  val minimal_upgrade : L.t -> target:L.level -> others:L.level -> L.level

  (** [Π |lhs|] over complex constraints; [None] on overflow. *)
  val search_space : S.problem -> int option

  (** Every satisfying classification reachable by some choice vector.
      Cost proportional to {!search_space}. *)
  val candidates : S.problem -> candidate list

  (** A minimal classification by exhaustive choice search (preferring
      exactly-scheduled candidates).  @raise Invalid_argument when the
      search space exceeds [max_space] (default [200_000]). *)
  val solve : ?max_space:int -> S.problem -> L.level array option
end
