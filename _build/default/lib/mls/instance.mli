(** Classified relation instances and level-filtered views.

    Once the solver has assigned a level to every attribute, mandatory
    read-down control means a subject cleared at level [s] sees exactly the
    columns whose classification is dominated by [s].  [view_at] performs
    that masking; it is how the examples demonstrate the end-to-end effect
    of a classification (which data each clearance actually sees). *)

type table = {
  relation : string;
  columns : string array;
  rows : string array list;
}

type view = {
  relation : string;
  columns : string array;
  visible : bool array;  (** per column: readable at the subject's level *)
  rows : string option array list;  (** [None] = masked cell *)
}

type error = Arity_mismatch of { row : int; expected : int; got : int }

val pp_error : Format.formatter -> error -> unit

(** [make ~relation ~columns rows]. *)
val make :
  relation:string -> columns:string list -> string list list -> (table, error) result

val make_exn :
  relation:string -> columns:string list -> string list list -> table

(** [view_at ~readable table] where [readable qualified_column] decides
    visibility (typically [fun a -> L.leq lat (λ a) subject_level]). *)
val view_at : readable:(string -> bool) -> table -> view

(** Render a view as an aligned text table; masked cells print as [***]. *)
val render : view -> string

(** {2 Row-classified instances}

    Beyond per-attribute classification, multilevel relations classify
    individual tuples (the row's access class is typically the lub of its
    cells' classes).  A subject sees a row iff cleared for its class, and
    within visible rows, the per-column masking above still applies. *)

type 'lvl classified_table = {
  crelation : string;
  ccolumns : string array;
  crows : ('lvl * string array) list;  (** (row class, cells) *)
}

val make_classified :
  relation:string ->
  columns:string list ->
  ('lvl * string list) list ->
  ('lvl classified_table, error) result

val make_classified_exn :
  relation:string ->
  columns:string list ->
  ('lvl * string list) list ->
  'lvl classified_table

(** [view_classified ~row_visible ~readable t] — rows failing
    [row_visible] are dropped entirely; surviving rows are column-masked
    with [readable] as in {!view_at}. *)
val view_classified :
  row_visible:('lvl -> bool) ->
  readable:(string -> bool) ->
  'lvl classified_table ->
  view
