type relation = { rel_name : string; columns : string list; key : string list }
type foreign_key = { from_rel : string; from_cols : string list; to_rel : string }
type t = { relations : relation list; foreign_keys : foreign_key list }

type error =
  | Duplicate_relation of string
  | Duplicate_column of string * string
  | Empty_key of string
  | Key_not_column of string * string
  | Unknown_relation of string
  | Unknown_column of string * string
  | Fk_arity_mismatch of string * string

let pp_error ppf = function
  | Duplicate_relation r -> Format.fprintf ppf "duplicate relation %S" r
  | Duplicate_column (r, c) -> Format.fprintf ppf "duplicate column %S in %S" c r
  | Empty_key r -> Format.fprintf ppf "relation %S has an empty key" r
  | Key_not_column (r, c) ->
      Format.fprintf ppf "key attribute %S of %S is not a column" c r
  | Unknown_relation r -> Format.fprintf ppf "unknown relation %S" r
  | Unknown_column (r, c) -> Format.fprintf ppf "unknown column %S in %S" c r
  | Fk_arity_mismatch (r, r') ->
      Format.fprintf ppf
        "foreign key from %S does not match the key arity of %S" r r'

exception Err of error

let create relations foreign_keys =
  try
    let seen = Hashtbl.create 8 in
    List.iter
      (fun r ->
        if Hashtbl.mem seen r.rel_name then raise (Err (Duplicate_relation r.rel_name));
        Hashtbl.add seen r.rel_name r;
        let cols = Hashtbl.create 8 in
        List.iter
          (fun c ->
            if Hashtbl.mem cols c then raise (Err (Duplicate_column (r.rel_name, c)));
            Hashtbl.add cols c ())
          r.columns;
        if r.key = [] then raise (Err (Empty_key r.rel_name));
        List.iter
          (fun k ->
            if not (Hashtbl.mem cols k) then
              raise (Err (Key_not_column (r.rel_name, k))))
          r.key)
      relations;
    List.iter
      (fun fk ->
        let find r =
          match Hashtbl.find_opt seen r with
          | Some rel -> rel
          | None -> raise (Err (Unknown_relation r))
        in
        let src = find fk.from_rel and dst = find fk.to_rel in
        List.iter
          (fun c ->
            if not (List.mem c src.columns) then
              raise (Err (Unknown_column (fk.from_rel, c))))
          fk.from_cols;
        if List.length fk.from_cols <> List.length dst.key then
          raise (Err (Fk_arity_mismatch (fk.from_rel, fk.to_rel))))
      foreign_keys;
    Ok { relations; foreign_keys }
  with Err e -> Error e

let create_exn relations foreign_keys =
  match create relations foreign_keys with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "Schema.create: %a" pp_error e)

let qualify rel col = rel ^ "." ^ col

let attrs t =
  List.concat_map
    (fun r -> List.map (qualify r.rel_name) r.columns)
    t.relations

let find_relation t name =
  List.find_opt (fun r -> r.rel_name = name) t.relations
