lib/mls/extract.mli: Fd Minup_constraints Schema
