lib/mls/schema.ml: Format Hashtbl List
