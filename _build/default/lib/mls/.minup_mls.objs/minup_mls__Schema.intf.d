lib/mls/schema.mli: Format
