lib/mls/fd.ml: Array Format Fun List Set String
