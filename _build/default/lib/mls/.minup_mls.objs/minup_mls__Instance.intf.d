lib/mls/instance.mli: Format
