lib/mls/extract.ml: Cst Fd List Minup_constraints Schema
