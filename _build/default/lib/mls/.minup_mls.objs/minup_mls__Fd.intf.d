lib/mls/fd.mli: Format
