lib/mls/instance.ml: Array Format List Schema String
