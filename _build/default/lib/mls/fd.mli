(** Functional dependencies.

    FDs are the paper's canonical source of inference channels (§2: the
    example [lub{λ(rank), λ(department)} ⊒ λ(salary)] models the FD
    [rank, department → salary] — whoever sees the determinant can infer
    the dependent, so the combined classification of the determinant must
    dominate the dependent's).  {!Extract} turns a relation's FD set into
    such inference constraints; this module provides the standard FD
    machinery (Armstrong closure, implication, candidate keys, minimal
    cover) over plain string attributes. *)

type t = private { lhs : string list; rhs : string list }

(** [make ~lhs ~rhs] — sides are deduplicated and sorted.
    @raise Invalid_argument if either side is empty. *)
val make : lhs:string list -> rhs:string list -> t

val pp : Format.formatter -> t -> unit

(** [closure fds xs] — the attribute-set closure [xs⁺] under [fds]. *)
val closure : t list -> string list -> string list

(** [implies fds fd] — does [fds ⊨ fd]? *)
val implies : t list -> t -> bool

(** [is_key ~attrs fds xs] — does [xs] determine all of [attrs]? *)
val is_key : attrs:string list -> t list -> string list -> bool

(** All candidate keys (minimal determining sets), smallest-first.
    Exponential in [|attrs|]; @raise Invalid_argument beyond 16
    attributes. *)
val candidate_keys : attrs:string list -> t list -> string list list

(** A minimal cover: singleton right-hand sides, no extraneous left-hand
    side attributes, no redundant dependencies. *)
val minimal_cover : t list -> t list
