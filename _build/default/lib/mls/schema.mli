(** Relational schemas for the multilevel security model (§2).

    Attributes to be classified are the columns of the relations, globally
    named by qualification ([relation.column]).  The schema's primary keys
    and foreign keys give rise to the paper's integrity classification
    constraints (see {!Extract}):

    - key attributes must be uniformly classified, and their (common) level
      must be dominated by every non-key attribute of the relation;
    - a foreign key's classification must dominate that of the key it
      references. *)

type relation = {
  rel_name : string;
  columns : string list;
  key : string list;  (** non-empty subset of [columns] *)
}

type foreign_key = {
  from_rel : string;
  from_cols : string list;
  to_rel : string;  (** referenced relation; [from_cols] map onto its key *)
}

type t = private { relations : relation list; foreign_keys : foreign_key list }

type error =
  | Duplicate_relation of string
  | Duplicate_column of string * string
  | Empty_key of string
  | Key_not_column of string * string
  | Unknown_relation of string
  | Unknown_column of string * string
  | Fk_arity_mismatch of string * string

val pp_error : Format.formatter -> error -> unit
val create : relation list -> foreign_key list -> (t, error) result
val create_exn : relation list -> foreign_key list -> t

(** [qualify rel col] is ["rel.col"]. *)
val qualify : string -> string -> string

(** All qualified column names, schema order. *)
val attrs : t -> string list

val find_relation : t -> string -> relation option
