type t = { lhs : string list; rhs : string list }

let make ~lhs ~rhs =
  if lhs = [] || rhs = [] then invalid_arg "Fd.make: empty side";
  { lhs = List.sort_uniq compare lhs; rhs = List.sort_uniq compare rhs }

let pp ppf fd =
  Format.fprintf ppf "%s -> %s"
    (String.concat "," fd.lhs)
    (String.concat "," fd.rhs)

module SS = Set.Make (String)

let closure fds xs =
  let fds = List.map (fun fd -> (SS.of_list fd.lhs, SS.of_list fd.rhs)) fds in
  let rec fix acc =
    let acc' =
      List.fold_left
        (fun acc (lhs, rhs) -> if SS.subset lhs acc then SS.union acc rhs else acc)
        acc fds
    in
    if SS.equal acc acc' then acc else fix acc'
  in
  SS.elements (fix (SS.of_list xs))

let implies fds fd = SS.subset (SS.of_list fd.rhs) (SS.of_list (closure fds fd.lhs))

let is_key ~attrs fds xs =
  SS.subset (SS.of_list attrs) (SS.of_list (closure fds xs))

let candidate_keys ~attrs fds =
  let attrs = List.sort_uniq compare attrs in
  let n = List.length attrs in
  if n > 16 then invalid_arg "Fd.candidate_keys: more than 16 attributes";
  let arr = Array.of_list attrs in
  let subset_of_mask m =
    let out = ref [] in
    for i = n - 1 downto 0 do
      if m land (1 lsl i) <> 0 then out := arr.(i) :: !out
    done;
    !out
  in
  let popcount m =
    let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
    go 0 m
  in
  let masks = List.init (1 lsl n) Fun.id in
  let by_size = List.stable_sort (fun a b -> compare (popcount a) (popcount b)) masks in
  let keys = ref [] in
  List.iter
    (fun m ->
      let sub x y = x land lnot y = 0 in
      if
        (not (List.exists (fun k -> sub k m) !keys))
        && is_key ~attrs fds (subset_of_mask m)
      then keys := m :: !keys)
    by_size;
  List.rev_map subset_of_mask !keys |> List.rev

let minimal_cover fds =
  (* 1. Singleton right-hand sides. *)
  let singles =
    List.concat_map
      (fun fd -> List.map (fun r -> { lhs = fd.lhs; rhs = [ r ] }) fd.rhs)
      fds
  in
  (* Drop trivial X -> a with a ∈ X. *)
  let singles =
    List.filter (fun fd -> not (List.mem (List.hd fd.rhs) fd.lhs)) singles
  in
  (* 2. Remove extraneous lhs attributes. *)
  let reduce_lhs all fd =
    let rec go lhs =
      match
        List.find_opt
          (fun a ->
            let lhs' = List.filter (fun x -> x <> a) lhs in
            lhs' <> [] && implies all { fd with lhs = lhs' })
          lhs
      with
      | Some a -> go (List.filter (fun x -> x <> a) lhs)
      | None -> lhs
    in
    { fd with lhs = go fd.lhs }
  in
  let reduced = List.map (reduce_lhs singles) singles in
  let reduced = List.sort_uniq compare reduced in
  (* 3. Remove redundant dependencies. *)
  let rec prune kept = function
    | [] -> List.rev kept
    | fd :: rest ->
        let others = List.rev_append kept rest in
        if implies others fd then prune kept rest else prune (fd :: kept) rest
  in
  prune [] reduced
