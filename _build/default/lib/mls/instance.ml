type table = {
  relation : string;
  columns : string array;
  rows : string array list;
}

type view = {
  relation : string;
  columns : string array;
  visible : bool array;
  rows : string option array list;
}

type error = Arity_mismatch of { row : int; expected : int; got : int }

let pp_error ppf (Arity_mismatch { row; expected; got }) =
  Format.fprintf ppf "row %d has %d cells, expected %d" row got expected

let make ~relation ~columns rows =
  let columns = Array.of_list columns in
  let expected = Array.length columns in
  let rec check i = function
    | [] -> Ok ()
    | r :: rest ->
        let got = List.length r in
        if got <> expected then Error (Arity_mismatch { row = i; expected; got })
        else check (i + 1) rest
  in
  match check 0 rows with
  | Error _ as e -> e
  | Ok () -> Ok { relation; columns; rows = List.map Array.of_list rows }

let make_exn ~relation ~columns rows =
  match make ~relation ~columns rows with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Instance.make: %a" pp_error e)

let view_at ~readable (t : table) =
  let visible =
    Array.map (fun c -> readable (Schema.qualify t.relation c)) t.columns
  in
  {
    relation = t.relation;
    columns = t.columns;
    visible;
    rows =
      List.map
        (fun row ->
          Array.mapi (fun i cell -> if visible.(i) then Some cell else None) row)
        t.rows;
  }

let render (v : view) =
  let cell = function Some s -> s | None -> "***" in
  let widths =
    Array.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (cell row.(i))))
          (String.length c) v.rows)
      v.columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line parts = "| " ^ String.concat " | " parts ^ " |" in
  let header =
    line (Array.to_list (Array.mapi (fun i c -> pad c widths.(i)) v.columns))
  in
  let sep =
    "|" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "|"
  in
  let body =
    List.map
      (fun row ->
        line (Array.to_list (Array.mapi (fun i c -> pad (cell c) widths.(i)) row)))
      v.rows
  in
  String.concat "\n" ((v.relation ^ ":") :: header :: sep :: body)

type 'lvl classified_table = {
  crelation : string;
  ccolumns : string array;
  crows : ('lvl * string array) list;
}

let make_classified ~relation ~columns rows =
  match make ~relation ~columns (List.map snd rows) with
  | Error _ as e -> e
  | Ok t ->
      Ok
        {
          crelation = t.relation;
          ccolumns = t.columns;
          crows = List.map2 (fun (l, _) cells -> (l, cells)) rows t.rows;
        }

let make_classified_exn ~relation ~columns rows =
  match make_classified ~relation ~columns rows with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Instance.make_classified: %a" pp_error e)

let view_classified ~row_visible ~readable (t : _ classified_table) =
  let visible =
    Array.map (fun c -> readable (Schema.qualify t.crelation c)) t.ccolumns
  in
  {
    relation = t.crelation;
    columns = t.ccolumns;
    visible;
    rows =
      List.filter_map
        (fun (l, row) ->
          if row_visible l then
            Some
              (Array.mapi
                 (fun i cell -> if visible.(i) then Some cell else None)
                 row)
          else None)
        t.crows;
  }
