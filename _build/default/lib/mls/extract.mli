(** Automatic extraction of classification constraints from a schema —
    the front end that turns database metadata into the constraint forms of
    Definition 2.1.

    §2 of the paper identifies three sources beyond explicit requirements:

    - {b integrity constraints} imposed by the security model itself:
      uniform key classification, keys dominated by non-key attributes,
      foreign keys dominating the keys they reference;
    - {b inference constraints} from functional dependencies: for
      [X → y], whoever sees [X] infers [y], so [lub{λ(X)} ⊒ λ(y)];
    - {b association constraints}: a set of attributes whose combination is
      more sensitive than each member ([lub{…} ⊒ l]).

    All generators are polymorphic in the level type; combine their output
    with explicit basic constraints and hand the result to the solver. *)

(** Key-uniformity and key-dominance constraints for every relation, plus
    foreign-key dominance, over qualified attribute names.  Key uniformity
    for [k1 … km] is the constraint cycle [λ(k1) ⊒ λ(k2) ⊒ … ⊒ λ(km) ⊒
    λ(k1)], which forces a single level. *)
val integrity_constraints : Schema.t -> 'lvl Minup_constraints.Cst.t list

(** [fd_constraints schema per_relation_fds] — inference constraints from
    per-relation FDs (column names unqualified; qualification is applied).
    Trivial dependents ([y ∈ X]) are skipped. *)
val fd_constraints :
  Schema.t -> (string * Fd.t) list -> 'lvl Minup_constraints.Cst.t list

(** [basic_constraints bs] — explicit [λ(A) ⊒ l] requirements. *)
val basic_constraints : (string * 'lvl) list -> 'lvl Minup_constraints.Cst.t list

(** [association_constraints assocs] — explicit [lub{…} ⊒ l] requirements. *)
val association_constraints :
  (string list * 'lvl) list -> 'lvl Minup_constraints.Cst.t list

(** Everything combined, in a deterministic order (basic, association,
    integrity, FD). *)
val all :
  schema:Schema.t ->
  fds:(string * Fd.t) list ->
  basic:(string * 'lvl) list ->
  associations:(string list * 'lvl) list ->
  'lvl Minup_constraints.Cst.t list
