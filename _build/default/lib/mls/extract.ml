open Minup_constraints

let integrity_constraints (schema : Schema.t) =
  let per_relation (r : Schema.relation) =
    let q = Schema.qualify r.rel_name in
    let key = List.map q r.key in
    (* Uniform key classification: a cycle of simple constraints. *)
    let uniformity =
      match key with
      | [] | [ _ ] -> []
      | k0 :: _ ->
          let rec cycle = function
            | a :: (b :: _ as rest) -> Cst.simple a (Cst.Attr b) :: cycle rest
            | [ last ] -> [ Cst.simple last (Cst.Attr k0) ]
            | [] -> []
          in
          cycle key
    in
    (* Non-key attributes dominate the key. *)
    let dominance =
      let k0 = List.hd key in
      r.columns
      |> List.filter (fun c -> not (List.mem c r.key))
      |> List.map (fun c -> Cst.simple (q c) (Cst.Attr k0))
    in
    uniformity @ dominance
  in
  let fk_constraints (fk : Schema.foreign_key) =
    match Schema.find_relation schema fk.to_rel with
    | None -> []
    | Some target ->
        List.map2
          (fun from_col key_col ->
            Cst.simple
              (Schema.qualify fk.from_rel from_col)
              (Cst.Attr (Schema.qualify fk.to_rel key_col)))
          fk.from_cols target.key
  in
  List.concat_map per_relation schema.relations
  @ List.concat_map fk_constraints schema.foreign_keys

let fd_constraints (schema : Schema.t) fds =
  List.concat_map
    (fun (rel, (fd : Fd.t)) ->
      let q = Schema.qualify rel in
      ignore (Schema.find_relation schema rel);
      fd.rhs
      |> List.filter (fun y -> not (List.mem y fd.lhs))
      |> List.map (fun y ->
             Cst.make_exn ~lhs:(List.map q fd.lhs) ~rhs:(Cst.Attr (q y))))
    fds

let basic_constraints bs =
  List.map (fun (a, l) -> Cst.simple a (Cst.Level l)) bs

let association_constraints assocs =
  List.map (fun (lhs, l) -> Cst.make_exn ~lhs ~rhs:(Cst.Level l)) assocs

let all ~schema ~fds ~basic ~associations =
  basic_constraints basic
  @ association_constraints associations
  @ integrity_constraints schema
  @ fd_constraints schema fds
