open Minup_constraints

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Solver.Make (L)

  type reason =
    | Direct of L.level Cst.t
    | Propagated of L.level Cst.t
    | At_bottom

  type blocked = { to_level : L.level; reason : reason }

  (* Replay a candidate lowering λ(a) := m through the constraint graph,
     lowering right-hand sides as far as needed (greatest fixpoint below
     the current assignment).  Returns [Ok ()] if a strictly lower
     satisfying assignment results, or the index of the level-floor
     constraint that blocks, tagged with whether it was hit on the first
     hop (a constraint directly on [a]).

     Soundness: on success, every constraint involving a lowered attribute
     was (re)checked with final values, so the lowered assignment
     satisfies the whole set — the input was not minimal.  Completeness:
     if a strictly lower solution λ' exists, pick [a] with λ'(a) ≺ λ(a)
     and a cover [m ⊒ λ'(a)]; by induction the replay keeps every pending
     value ⊒ λ', so no floor can fail and the replay succeeds. *)
  let replay (problem : S.problem) levels a m =
    let lat = problem.lat in
    let prob = problem.prob in
    let pending = Hashtbl.create 8 in
    let value x =
      match Hashtbl.find_opt pending x with Some v -> v | None -> levels.(x)
    in
    Hashtbl.replace pending a m;
    let queue = Queue.create () in
    Queue.push a queue;
    let failure = ref None in
    while (not (Queue.is_empty queue)) && !failure = None do
      let x = Queue.pop queue in
      List.iter
        (fun ci ->
          if !failure = None then begin
            let c = prob.Problem.csts.(ci) in
            let combined =
              Array.fold_left
                (fun acc y -> L.lub lat acc (value y))
                (L.bottom lat) c.lhs
            in
            match c.Problem.rhs with
            | Problem.Rlevel target ->
                if not (L.leq lat target combined) then failure := Some (ci, x = a)
            | Problem.Rattr b ->
                if not (L.leq lat (value b) combined) then begin
                  Hashtbl.replace pending b (L.glb lat (value b) combined);
                  Queue.push b queue
                end
          end)
        prob.Problem.constr_of.(x)
    done;
    match !failure with None -> Ok () | Some f -> Error f

  let binding_constraints (problem : S.problem) levels attr =
    let lat = problem.lat in
    let prob = problem.prob in
    let a = Problem.attr_id_exn prob attr in
    List.map
      (fun m ->
        match replay problem levels a m with
        | Ok () -> { to_level = m; reason = At_bottom }
        | Error (ci, first_hop) ->
            let c = Problem.cst_to_source prob prob.Problem.csts.(ci) in
            { to_level = m; reason = (if first_hop then Direct c else Propagated c) })
      (L.covers_below lat levels.(a))

  let is_locally_minimal (problem : S.problem) levels =
    let prob = problem.prob in
    let n = Problem.n_attrs prob in
    let ok = ref true in
    for a = 0 to n - 1 do
      if !ok then
        List.iter
          (fun m -> if replay problem levels a m = Ok () then ok := false)
          (L.covers_below problem.lat levels.(a))
    done;
    !ok

  let report (problem : S.problem) levels =
    let lat = problem.lat in
    let prob = problem.prob in
    let buf = Buffer.create 512 in
    Array.iteri
      (fun a name ->
        Buffer.add_string buf
          (Printf.sprintf "%s = %s\n" name (L.level_to_string lat levels.(a)));
        let blocked = binding_constraints problem levels name in
        if blocked = [] then
          Buffer.add_string buf "  at bottom: no constraint holds it up\n"
        else
          List.iter
            (fun { to_level; reason } ->
              let render c prefix =
                Buffer.add_string buf
                  (Format.asprintf "  cannot lower to %s: %s%a\n"
                     (L.level_to_string lat to_level)
                     prefix
                     (Cst.pp (L.pp_level lat))
                     c)
              in
              match reason with
              | Direct c -> render c ""
              | Propagated c -> render c "via propagation, "
              | At_bottom ->
                  Buffer.add_string buf
                    (Printf.sprintf
                       "  lowering to %s possible?! (non-minimal input)\n"
                       (L.level_to_string lat to_level)))
            blocked)
      prob.Problem.attr_names;
    Buffer.contents buf
end
