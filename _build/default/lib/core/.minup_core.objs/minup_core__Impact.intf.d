lib/core/impact.mli: Format Minup_constraints Minup_lattice Solver
