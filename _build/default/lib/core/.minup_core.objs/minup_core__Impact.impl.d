lib/core/impact.ml: Format List Minup_lattice Solver
