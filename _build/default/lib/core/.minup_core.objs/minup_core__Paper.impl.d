lib/core/paper.ml: Cst Explicit Minup_constraints Minup_lattice
