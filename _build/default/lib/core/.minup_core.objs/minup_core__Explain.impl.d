lib/core/explain.ml: Array Buffer Cst Format Hashtbl List Minup_constraints Minup_lattice Printf Problem Queue Solver
