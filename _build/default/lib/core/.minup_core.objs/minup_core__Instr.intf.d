lib/core/instr.mli: Format
