lib/core/explain.mli: Minup_constraints Minup_lattice Solver
