lib/core/semis.mli: Explicit Minup_constraints Minup_lattice Semilattice Solver
