lib/core/solver.mli: Format Instr Minup_constraints Minup_lattice
