lib/core/paper.mli: Explicit Minup_constraints Minup_lattice
