lib/core/verify.ml: Array List Minup_constraints Minup_lattice Seq Solver
