lib/core/assignment_io.mli: Format Minup_constraints
