lib/core/verify.mli: Minup_lattice Solver
