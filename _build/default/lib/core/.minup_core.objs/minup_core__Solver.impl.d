lib/core/solver.ml: Array Cst Format Instr Int List Minup_constraints Minup_lattice Priorities Problem Queue Set
