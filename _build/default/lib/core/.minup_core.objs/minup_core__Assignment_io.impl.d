lib/core/assignment_io.ml: Array Buffer Format Hashtbl List Minup_constraints Option Printf String
