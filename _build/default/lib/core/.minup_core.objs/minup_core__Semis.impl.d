lib/core/semis.ml: Explicit List Minup_lattice Semilattice Solver
