lib/core/instr.ml: Format
