module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Solver.Make (L)
  module D = Minup_lattice.Lattice_intf.Derived (L)

  let dominates lat a b =
    let ok = ref true in
    Array.iteri (fun i ai -> if not (L.leq lat b.(i) ai) then ok := false) a;
    !ok

  let equal_assignment lat a b =
    let ok = ref true in
    Array.iteri (fun i ai -> if not (L.equal lat ai b.(i)) then ok := false) a;
    !ok

  (* Sequence of all assignment arrays drawing position i from
     candidates.(i). *)
  let product (candidates : L.level list array) : L.level array Seq.t =
    let n = Array.length candidates in
    let rec go i : L.level list Seq.t =
      if i = n then Seq.return []
      else
        Seq.concat_map
          (fun x -> Seq.map (fun rest -> x :: rest) (go (i + 1)))
          (List.to_seq candidates.(i))
    in
    Seq.map Array.of_list (go 0)

  let space_size candidates cap =
    Array.fold_left
      (fun acc c ->
        match acc with
        | None -> None
        | Some s ->
            let k = List.length c in
            if k = 0 || s > cap / k then None else Some (s * k))
      (Some 1) candidates

  let solutions_over ?(cap = 2_000_000) (problem : S.problem) candidates =
    match space_size candidates cap with
    | None -> Error `Too_large
    | Some _ ->
        Ok
          (Seq.fold_left
             (fun acc a -> if S.satisfies problem a then a :: acc else acc)
             []
             (product candidates)
          |> List.rev)

  let all_solutions ?cap (problem : S.problem) =
    let all_levels = List.of_seq (L.levels problem.lat) in
    let n = Minup_constraints.Problem.n_attrs problem.prob in
    solutions_over ?cap problem (Array.make n all_levels)

  let minimal_among lat sols =
    List.filter
      (fun s ->
        not
          (List.exists
             (fun s' -> dominates lat s s' && not (equal_assignment lat s s'))
             sols))
      sols

  let minimal_solutions ?cap (problem : S.problem) =
    match all_solutions ?cap problem with
    | Error _ as e -> e
    | Ok sols -> Ok (minimal_among problem.lat sols)

  let is_minimal_solution ?cap (problem : S.problem) levels =
    if not (S.satisfies problem levels) then Ok false
    else
      let candidates = Array.map (D.downset problem.lat) levels in
      match solutions_over ?cap problem candidates with
      | Error _ as e -> e
      | Ok below ->
          Ok
            (List.for_all
               (fun s -> equal_assignment problem.lat s levels)
               below)
end
