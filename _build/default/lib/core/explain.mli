(** Justification of a computed classification.

    "Why is this attribute classified so high?" is the question a
    classification tool must answer for its output to be auditable.  For a
    minimal solution, every attribute that is not already at ⊥ is pinned,
    for each way of lowering it, by some level-floor constraint;
    {!Make.binding_constraints} finds it by {e replaying} the candidate
    lowering through the constraint graph — lowering dependent attributes
    as far as the order allows — and reporting the floor that finally
    blocks ([Direct] when it constrains the attribute itself, [Propagated]
    when it is reached through inference edges or cycles).

    The same replay decides minimality outright: an assignment is minimal
    iff no replay succeeds ({!Make.is_locally_minimal}), giving a
    polynomial-time exact minimality check that the test suite validates
    against exhaustive enumeration. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  module S : module type of Solver.Make (L)

  type reason =
    | Direct of L.level Minup_constraints.Cst.t
        (** lowering to this cover violates the constraint outright *)
    | Propagated of L.level Minup_constraints.Cst.t
        (** the lowering survives locally but forces lowerings elsewhere
            (through inference edges or cycles) that break this
            constraint *)
    | At_bottom  (** the attribute is at ⊥; nothing holds it up *)

  type blocked = { to_level : L.level; reason : reason }

  (** [binding_constraints problem levels attr] — one {!blocked} entry per
      cover below [levels(attr)].  On a solution produced by the solver,
      no entry carries [At_bottom] unless the level is ⊥ (minimality). *)
  val binding_constraints :
    S.problem -> L.level array -> string -> blocked list

  (** Render a full report for every attribute. *)
  val report : S.problem -> L.level array -> string

  (** Polynomial-time minimality verification of a satisfying assignment,
      by the same replay: the assignment is minimal iff no single-seed
      lowering replay succeeds.

      - {e Sound}: a successful replay exhibits a strictly lower satisfying
        assignment, so [false] means definitely not minimal.
      - {e Complete}: if a strictly lower solution [λ'] exists, seed the
        replay at any attribute with [λ'(a) ≺ λ(a)] and a cover above
        [λ'(a)]; the replay keeps every value pointwise above [λ'], so no
        level floor can fail and it succeeds — [true] means minimal.

      Cost is [O(N_A · B · S · H)] — usable at scales where the exhaustive
      {!Verify} oracle is hopeless.  The suite cross-checks the two on
      random instances.  Precondition: [levels] satisfies the constraints
      (check {!S.satisfies} first). *)
  val is_locally_minimal : S.problem -> L.level array -> bool
end
