open Minup_lattice
open Minup_constraints

let fig1b =
  Explicit.create_exn
    ~names:[ "L1"; "L2"; "L3"; "L4"; "L5"; "L6" ]
    ~order:
      [
        ("L1", "L2");
        ("L1", "L3");
        ("L2", "L4");
        ("L3", "L4");
        ("L3", "L5");
        ("L4", "L6");
        ("L5", "L6");
      ]

let level name = Cst.Level (Explicit.of_name_exn fig1b name)

(* Declaration order chosen so the two DFS passes visit roots in the order
   P, (B's tree), (I's tree), D — which reproduces the paper's priority
   numbering [1]={D}, [2]={I,O,N}, [3]={B,C,E,F,G,M}, [4]={P}. *)
let fig2_attrs = [ "P"; "B"; "C"; "E"; "F"; "G"; "M"; "I"; "O"; "N"; "D" ]

let fig2_constraints =
  [
    (* Basic (acyclic) constraints on level constants. *)
    Cst.simple "P" (level "L1");
    Cst.simple "G" (level "L1");
    Cst.simple "F" (level "L2");
    Cst.simple "M" (level "L3");
    Cst.simple "C" (level "L4");
    Cst.simple "B" (level "L5");
    (* The cyclic constraints of §2. *)
    Cst.make_exn ~lhs:[ "E"; "F" ] ~rhs:(Cst.Attr "M");
    Cst.simple "M" (Cst.Attr "G");
    Cst.make_exn ~lhs:[ "D"; "G" ] ~rhs:(Cst.Attr "C");
    Cst.simple "C" (Cst.Attr "E");
    Cst.simple "C" (Cst.Attr "F");
    Cst.make_exn ~lhs:[ "F"; "I" ] ~rhs:(Cst.Attr "B");
    Cst.simple "B" (Cst.Attr "M");
    (* The simple cycle. *)
    Cst.simple "I" (Cst.Attr "O");
    Cst.simple "O" (Cst.Attr "N");
    Cst.simple "N" (Cst.Attr "I");
  ]

let fig2_expected_priorities =
  [
    [ "D" ];
    [ "I"; "O"; "N" ];
    [ "B"; "C"; "E"; "F"; "G"; "M" ];
    [ "P" ];
  ]

let fig2_expected_solution =
  [
    ("P", "L1");
    ("B", "L5");
    ("C", "L4");
    ("E", "L1");
    ("F", "L4");
    ("G", "L1");
    ("M", "L3");
    ("I", "L5");
    ("O", "L5");
    ("N", "L5");
    ("D", "L4");
  ]

let sec31_constraints =
  [
    Cst.make_exn ~lhs:[ "A"; "B" ] ~rhs:(level "L4");
    Cst.simple "A" (level "L1");
    Cst.simple "B" (level "L2");
  ]

let sec31_minimal_solutions =
  [ [ ("A", "L3"); ("B", "L2") ]; [ ("A", "L1"); ("B", "L4") ] ]
