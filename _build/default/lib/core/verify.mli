(** Ground-truth verification of solutions and minimality.

    Minimality (Definition 2.2) is a global property: an assignment can be
    non-minimal even though no {e single} attribute can be lowered alone
    (cyclic constraints may only admit simultaneous lowerings).  The
    checkers here therefore enumerate assignment spaces exhaustively —
    they are oracles for tests and small instances, not production paths.
    Every enumeration is guarded by a candidate-count cap. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  module S : module type of Solver.Make (L)

  (** [dominates lat a b] — pointwise [b ⊑ a] for assignment arrays
      (i.e. [a] classifies everything at least as high as [b]). *)
  val dominates : L.t -> L.level array -> L.level array -> bool

  val equal_assignment : L.t -> L.level array -> L.level array -> bool

  (** All assignments satisfying the constraints, enumerated over the full
      space [|L|^{N_A}].  [Error `Too_large] if that space exceeds [cap]
      (default [2_000_000]). *)
  val all_solutions :
    ?cap:int -> S.problem -> (L.level array list, [ `Too_large ]) result

  (** The pointwise-minimal elements of a solution list. *)
  val minimal_among : L.t -> L.level array list -> L.level array list

  (** All minimal solutions of the problem. *)
  val minimal_solutions :
    ?cap:int -> S.problem -> (L.level array list, [ `Too_large ]) result

  (** [is_minimal_solution problem levels] — [levels] satisfies the
      constraints and no distinct assignment pointwise below it does.  Only
      the product of down-sets of [levels] is enumerated, which is far
      smaller than the full space. *)
  val is_minimal_solution :
    ?cap:int -> S.problem -> L.level array -> (bool, [ `Too_large ]) result
end
