(** Text format for classification assignments.

    One line per attribute — [attr = LEVEL] — with [#] comments.  This is
    the interchange format between the classifier and the systems that
    enforce the labels; {!parse}/{!render} round-trip, and together with
    {!Explain.Make.is_locally_minimal} they support the auditor workflow:
    {e given} a deployed labeling, check that it still satisfies the
    (evolved) constraint set and wastes no visibility. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** [parse ~level_of_string text] — unknown levels are reported with their
    line; duplicate attributes are errors. *)
val parse :
  level_of_string:(string -> 'lvl option) ->
  string ->
  ((string * 'lvl) list, error) result

val render : level_to_string:('lvl -> string) -> (string * 'lvl) list -> string

(** Match a parsed assignment against a problem's attribute universe:
    every problem attribute must be present ([`Missing]) and assignments
    for unknown attributes are rejected ([`Unknown]). *)
val bind :
  'lvl Minup_constraints.Problem.t ->
  (string * 'lvl) list ->
  ('lvl array, [ `Missing of string | `Unknown of string ]) result
