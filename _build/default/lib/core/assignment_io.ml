type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

let parse ~level_of_string text =
  let seen = Hashtbl.create 16 in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let line = String.trim line in
        if line = "" then go (lineno + 1) acc rest
        else
          match String.index_opt line '=' with
          | None -> Error { line = lineno; message = "expected 'attr = LEVEL'" }
          | Some i -> (
              let attr = String.trim (String.sub line 0 i) in
              let level =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              if attr = "" then Error { line = lineno; message = "empty attribute" }
              else if Hashtbl.mem seen attr then
                Error
                  { line = lineno; message = Printf.sprintf "duplicate attribute %S" attr }
              else
                match level_of_string level with
                | Some l ->
                    Hashtbl.add seen attr ();
                    go (lineno + 1) ((attr, l) :: acc) rest
                | None ->
                    Error
                      {
                        line = lineno;
                        message = Printf.sprintf "unknown level %S" level;
                      }))
  in
  go 1 [] (String.split_on_char '\n' text)

let render ~level_to_string assignment =
  let buf = Buffer.create 256 in
  List.iter
    (fun (attr, l) ->
      Buffer.add_string buf (Printf.sprintf "%s = %s\n" attr (level_to_string l)))
    assignment;
  Buffer.contents buf

let bind prob assignment =
  let n = Minup_constraints.Problem.n_attrs prob in
  let out = Array.make n None in
  let rec place = function
    | [] -> Ok ()
    | (attr, l) :: rest -> (
        match Minup_constraints.Problem.attr_id prob attr with
        | None -> Error (`Unknown attr)
        | Some i ->
            out.(i) <- Some l;
            place rest)
  in
  match place assignment with
  | Error _ as e -> e
  | Ok () -> (
      let missing = ref None in
      Array.iteri
        (fun i v ->
          if v = None && !missing = None then
            missing := Some (Minup_constraints.Problem.attr_name prob i))
        out;
      match !missing with
      | Some a -> Error (`Missing a)
      | None -> Ok (Array.map Option.get out))
