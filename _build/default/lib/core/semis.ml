open Minup_lattice
module Solve = Solver.Make (Explicit)

type outcome = {
  solution : Solve.solution;
  unsatisfiable : string list;
  unconstrained : string list;
}

let solve (semi : Semilattice.t) ?attrs csts =
  match Solve.compile ~lattice:semi.lattice ?attrs csts with
  | Error _ as e -> e
  | Ok problem ->
      let solution = Solve.solve problem in
      let at dummy =
        match dummy with
        | None -> []
        | Some d ->
            List.filter_map
              (fun (a, l) -> if l = d then Some a else None)
              solution.Solve.assignment
      in
      Ok
        {
          solution;
          unsatisfiable = at semi.dummy_top;
          unconstrained = at semi.dummy_bottom;
        }
