(** The paper's worked examples, shared by tests, examples and benches.

    {b Figure 1(b)} — the 6-level lattice.  The Hasse diagram reconstructed
    from the §3.1 example and the Fig. 2(b) trace is:

    {v
            L6
           /  \
         L4    L5
        /  \  /
      L2    L3
        \  /
         L1
    v}

    (lub(L2,L3) = L4 per §3.1; glb(L4,L5) = L3 and the cover order of the
    trace pin the rest down.)

    {b Figure 2(a)} — the 16-constraint example: the seven cyclic
    constraints listed in §2, the I/O/N simple cycle, and six basic
    constraints on level constants (P,G ⊒ L1; F ⊒ L2; M ⊒ L3; C ⊒ L4;
    B ⊒ L5) recovered from the execution trace.

    {b Figure 2(b)} — the expected priority partition
    ([{D} ≺ {I,O,N} ≺ {B,C,E,F,G,M} ≺ {P}]) and the final minimal
    classification. *)

open Minup_lattice

(** The Fig. 1(b) lattice. *)
val fig1b : Explicit.t

(** Attribute declaration order that reproduces the paper's priority
    numbering exactly. *)
val fig2_attrs : string list

val fig2_constraints : Explicit.level Minup_constraints.Cst.t list

(** Expected priority sets, lowest priority first:
    [ [D]; [I,O,N]; [B,C,E,F,G,M]; [P] ]. *)
val fig2_expected_priorities : string list list

(** The paper's final minimal classification (bottom row of Fig. 2(b)). *)
val fig2_expected_solution : (string * string) list

(** §3.1 example over Fig. 1(b): [lub{A,B} ⊒ L4], [A ⊒ L1], [B ⊒ L2];
    its two minimal solutions are [A↦L3, B↦L2] and [A↦L1, B↦L4]. *)
val sec31_constraints : Explicit.level Minup_constraints.Cst.t list

val sec31_minimal_solutions : (string * string) list list
