(** Classification over semi-lattices (§6).

    Run the solver on a {!Minup_lattice.Semilattice} completion and
    interpret residual dummy levels per the paper: an attribute left at the
    dummy ⊤ means its constraints admit no real level ("visible to no
    one"); one left at the dummy ⊥ was never effectively constrained
    (flagged so incomplete constraint sets are noticed). *)

open Minup_lattice

module Solve : module type of Solver.Make (Explicit)

type outcome = {
  solution : Solve.solution;
  unsatisfiable : string list;
      (** attributes classified at the dummy top — no real level satisfies
          their constraints *)
  unconstrained : string list;
      (** attributes at the dummy bottom — no effective constraint *)
}

val solve :
  Semilattice.t ->
  ?attrs:string list ->
  Explicit.level Minup_constraints.Cst.t list ->
  (outcome, Minup_constraints.Problem.error) result
