(** Impact analysis: what does a policy change do to the classification?

    Adding constraints shrinks the solution set, so levels generally rise;
    but because minimal solutions are not unique, a change can also shift
    which attribute of an association absorbs an upgrade, lowering some
    attributes while raising others.  [of_added_constraints] solves before
    and after and reports exactly what moved — the review artifact for a
    policy change. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  module S : module type of Solver.Make (L)

  type move =
    | Raised  (** new level strictly dominates the old *)
    | Lowered
    | Shifted  (** incomparable levels: the minimal solution changed shape *)
    | Added  (** attribute introduced by the change *)

  type change = {
    attr : string;
    before : L.level option;
    after : L.level;
    move : move;
  }

  type report = {
    changes : change list;  (** only attributes that moved, id order *)
    unchanged : int;
    solution : S.solution;  (** the new classification *)
  }

  (** [diff lat ~before ~after] over attribute names. *)
  val diff :
    L.t ->
    before:(string * L.level) list ->
    after:(string * L.level) list ->
    change list

  (** Solve [base] and [base @ added] and diff the minimal solutions.  The
      same [upgrade_preference] is applied to both solves so the diff
      reflects the constraint change, not scheduling noise. *)
  val of_added_constraints :
    lattice:L.t ->
    ?attrs:string list ->
    ?upgrade_preference:(string -> int) ->
    base:L.level Minup_constraints.Cst.t list ->
    added:L.level Minup_constraints.Cst.t list ->
    unit ->
    (report, Minup_constraints.Problem.error) result

  val pp_report : L.t -> Format.formatter -> report -> unit
end
