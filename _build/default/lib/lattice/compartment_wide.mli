(** Compartmented lattices with arbitrarily many categories.

    {!Compartment} packs the category set into a single machine word,
    which covers 62 of the 64 categories the DoD standard allows (§5 of
    the paper).  This variant stores category sets as {!Bitset}s, so any
    number of categories fits — at the cost of a few words per operation
    rather than one.  Same order: [(s1, C1) ⊑ (s2, C2)] iff [s1 ≤ s2] and
    [C1 ⊆ C2]. *)

type t
type level

(** @raise Invalid_argument on empty/duplicate classification names or
    duplicate categories. *)
val create : classifications:string list -> categories:string list -> t

(** The full DoD shape: [U ⊑ C ⊑ S ⊑ TS] and [n] categories [K0…K(n-1)],
    any [n ≥ 0]. *)
val dod : n_categories:int -> t

val make : t -> cls:string -> cats:string list -> level option
val make_exn : t -> cls:string -> cats:string list -> level
val classification_name : t -> level -> string
val category_names : t -> level -> string list
val n_classifications : t -> int
val n_categories : t -> int

include Lattice_intf.S with type t := t and type level := level

(** The footnote-4 direct minimal-level computation (least [m] with
    [lub m others ⊒ target]). *)
val residual : t -> target:level -> others:level -> level
