let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ~name_of ~cardinal ~covers_of =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph lattice {\n  rankdir=BT;\n";
  for i = 0 to cardinal - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape (name_of i)))
  done;
  for hi = 0 to cardinal - 1 do
    List.iter
      (fun lo -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" lo hi))
      (covers_of hi)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_explicit lat =
  render ~name_of:(Explicit.name lat) ~cardinal:(Explicit.cardinal lat)
    ~covers_of:(Explicit.covers_below lat)

let of_poset p =
  render ~name_of:(Poset.name p) ~cardinal:(Poset.cardinal p)
    ~covers_of:(Poset.covers_below p)
