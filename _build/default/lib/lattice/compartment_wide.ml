type level = { cls : int; cats : Bitset.t }

type t = {
  ladder : Total.t;
  cat_names : string array;
  cat_index : (string, int) Hashtbl.t;
}

let create ~classifications ~categories =
  let cat_names = Array.of_list categories in
  let cat_index = Hashtbl.create (Array.length cat_names) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem cat_index c then
        invalid_arg (Printf.sprintf "Compartment_wide.create: duplicate category %S" c);
      Hashtbl.add cat_index c i)
    cat_names;
  { ladder = Total.create classifications; cat_names; cat_index }

let dod ~n_categories =
  create
    ~classifications:[ "U"; "C"; "S"; "TS" ]
    ~categories:(List.init n_categories (Printf.sprintf "K%d"))

let n_classifications t = Total.cardinal t.ladder
let n_categories t = Array.length t.cat_names

let make t ~cls ~cats =
  match Total.of_name t.ladder cls with
  | None -> None
  | Some c ->
      let mask = Bitset.create (n_categories t) in
      let rec fill = function
        | [] -> Some { cls = c; cats = mask }
        | name :: rest -> (
            match Hashtbl.find_opt t.cat_index name with
            | Some i ->
                Bitset.set mask i;
                fill rest
            | None -> None)
      in
      fill cats

let make_exn t ~cls ~cats =
  match make t ~cls ~cats with
  | Some l -> l
  | None ->
      invalid_arg "Compartment_wide.make_exn: unknown classification or category"

let classification_name t l = Total.name t.ladder l.cls

let category_names t l =
  List.map (fun i -> t.cat_names.(i)) (Bitset.to_list l.cats)

let equal _ a b = a.cls = b.cls && Bitset.equal a.cats b.cats

let compare_level _ a b =
  match Int.compare a.cls b.cls with 0 -> Bitset.compare a.cats b.cats | c -> c

let leq t a b = Total.leq t.ladder a.cls b.cls && Bitset.subset a.cats b.cats
let lub _ a b = { cls = max a.cls b.cls; cats = Bitset.union a.cats b.cats }
let glb _ a b = { cls = min a.cls b.cls; cats = Bitset.inter a.cats b.cats }

let top t =
  let cats = Bitset.create (n_categories t) in
  for i = 0 to n_categories t - 1 do
    Bitset.set cats i
  done;
  { cls = Total.top t.ladder; cats }

let bottom t = { cls = 0; cats = Bitset.create (n_categories t) }

let covers_below t l =
  let lower_cls =
    List.map (fun c -> { l with cls = c }) (Total.covers_below t.ladder l.cls)
  in
  let lower_cats =
    List.map
      (fun i ->
        let cats = Bitset.copy l.cats in
        Bitset.clear cats i;
        { l with cats })
      (Bitset.to_list l.cats)
  in
  lower_cls @ lower_cats

let height t = Total.height t.ladder + n_categories t

(* Lazy enumeration: per classification, walk category subsets with a
   binary-counter increment over the bit set (works beyond 62 bits). *)
let subsets n : Bitset.t Seq.t =
  let rec increment s i =
    if i >= n then None
    else if Bitset.mem s i then begin
      Bitset.clear s i;
      increment s (i + 1)
    end
    else begin
      Bitset.set s i;
      Some s
    end
  in
  let rec from s () =
    Seq.Cons
      ( Bitset.copy s,
        fun () ->
          match increment (Bitset.copy s) 0 with
          | Some next -> from next ()
          | None -> Seq.Nil )
  in
  from (Bitset.create n)

let levels t =
  Seq.concat_map
    (fun cls -> Seq.map (fun cats -> { cls; cats }) (subsets (n_categories t)))
    (Total.levels t.ladder)

let size t =
  let k = n_categories t in
  if k >= Sys.int_size - 1 then None
  else
    let subsets = 1 lsl k in
    let n = Total.cardinal t.ladder in
    if subsets > max_int / n then None else Some (n * subsets)

let level_to_string t l =
  Printf.sprintf "%s:{%s}"
    (Total.name t.ladder l.cls)
    (String.concat "," (category_names t l))

let pp_level t ppf l = Format.pp_print_string ppf (level_to_string t l)

let level_of_string t s =
  let parse_cats body =
    let body = String.trim body in
    let n = String.length body in
    if n < 2 || body.[0] <> '{' || body.[n - 1] <> '}' then None
    else
      let inner = String.trim (String.sub body 1 (n - 2)) in
      let names =
        if inner = "" then []
        else
          inner |> String.split_on_char ',' |> List.map String.trim
          |> List.filter (fun x -> x <> "")
      in
      Some names
  in
  match String.index_opt s ':' with
  | None -> (
      match Total.of_name t.ladder (String.trim s) with
      | Some c -> Some { cls = c; cats = Bitset.create (n_categories t) }
      | None -> None)
  | Some i -> (
      let cls = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match (Total.of_name t.ladder cls, parse_cats rest) with
      | Some _, Some names -> make t ~cls ~cats:names
      | _ -> None)

let residual _t ~target ~others =
  {
    cls = (if others.cls >= target.cls then 0 else target.cls);
    cats = Bitset.diff target.cats others.cats;
  }

