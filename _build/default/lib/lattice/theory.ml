open Explicit

let atoms t =
  List.filter (fun l -> covers_below t l = [ bottom t ]) (all t)

let coatoms t =
  List.filter
    (fun l -> List.mem l (covers_below t (top t)))
    (all t)

let join_irreducibles t =
  List.filter (fun l -> List.length (covers_below t l) = 1) (all t)

let meet_irreducibles t =
  let above = Array.make (cardinal t) 0 in
  List.iter
    (fun l -> List.iter (fun c -> above.(c) <- above.(c) + 1) (covers_below t l))
    (all t);
  List.filter (fun l -> above.(l) = 1) (all t)

let for_all_triples t f =
  let ls = all t in
  List.for_all (fun a -> List.for_all (fun b -> List.for_all (f a b) ls) ls) ls

let is_distributive t =
  for_all_triples t (fun a b c ->
      lub t a (glb t b c) = glb t (lub t a b) (lub t a c))

let is_modular t =
  for_all_triples t (fun a b x ->
      (not (leq t a b)) || lub t a (glb t x b) = glb t (lub t a x) b)

let is_boolean t =
  is_distributive t
  && List.for_all
       (fun x ->
         List.exists
           (fun y -> lub t x y = top t && glb t x y = bottom t)
           (all t))
       (all t)

let dual t =
  let names = List.map (name t) (all t) in
  let order =
    List.map (fun (lo, hi) -> (name t hi, name t lo)) (cover_pairs t)
  in
  create_exn ~names ~order
