(** Lattice-theoretic queries over explicit lattices.

    Useful when auditing a security lattice before deployment: atoms and
    irreducibles identify the "primitive" levels, distributivity/modularity
    determine which stronger encodings apply (every finite distributive
    lattice embeds in a powerset, which is when the set-difference
    [residual] shortcut of footnote 4 is exact), and the dual construction
    flips read-down into write-up analyses. *)

open Explicit

(** Covers of ⊥. *)
val atoms : t -> level list

(** Levels covered by ⊤. *)
val coatoms : t -> level list

(** Levels with exactly one cover below (not expressible as a join of
    strictly lower levels). *)
val join_irreducibles : t -> level list

(** Levels with exactly one cover above. *)
val meet_irreducibles : t -> level list

(** [a ⊔ (b ⊓ c) = (a ⊔ b) ⊓ (a ⊔ c)] for all triples. *)
val is_distributive : t -> bool

(** [a ⊑ b ⟹ a ⊔ (x ⊓ b) = (a ⊔ x) ⊓ b] for all triples. *)
val is_modular : t -> bool

(** [is_boolean t] — distributive and every level has a complement
    ([x ⊔ y = ⊤] and [x ⊓ y = ⊥]). *)
val is_boolean : t -> bool

(** The order-dual lattice (same level names, reversed order).  Level ids
    are {e not} preserved; translate by name. *)
val dual : t -> t
