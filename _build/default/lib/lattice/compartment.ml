type level = { cls : int; cats : int }

type t = { ladder : Total.t; catset : Powerset.t }

let create ~classifications ~categories =
  { ladder = Total.create classifications; catset = Powerset.create categories }

let fig1a =
  create ~classifications:[ "S"; "TS" ] ~categories:[ "Army"; "Nuclear" ]

let dod ~n_categories =
  create
    ~classifications:[ "U"; "C"; "S"; "TS" ]
    ~categories:(List.init n_categories (Printf.sprintf "K%d"))

let make t ~cls ~cats =
  match (Total.of_name t.ladder cls, Powerset.of_elements t.catset cats) with
  | Some c, Some m -> Some { cls = c; cats = m }
  | _ -> None

let make_exn t ~cls ~cats =
  match make t ~cls ~cats with
  | Some l -> l
  | None -> invalid_arg "Compartment.make_exn: unknown classification or category"

let classification_name t l = Total.name t.ladder l.cls
let category_names t l = Powerset.elements t.catset l.cats
let n_classifications t = Total.cardinal t.ladder
let n_categories t = Powerset.arity t.catset

let equal _ a b = a.cls = b.cls && a.cats = b.cats

let compare_level _ a b =
  match Int.compare a.cls b.cls with 0 -> Int.compare a.cats b.cats | c -> c

let leq t a b = Total.leq t.ladder a.cls b.cls && Powerset.leq t.catset a.cats b.cats
let lub _ a b = { cls = max a.cls b.cls; cats = a.cats lor b.cats }
let glb _ a b = { cls = min a.cls b.cls; cats = a.cats land b.cats }
let top t = { cls = Total.top t.ladder; cats = Powerset.top t.catset }
let bottom _ = { cls = 0; cats = 0 }

let covers_below t l =
  let lower_cls =
    List.map (fun c -> { l with cls = c }) (Total.covers_below t.ladder l.cls)
  in
  let lower_cats =
    List.map (fun m -> { l with cats = m }) (Powerset.covers_below t.catset l.cats)
  in
  lower_cls @ lower_cats

let height t = Total.height t.ladder + Powerset.height t.catset

let levels t =
  Seq.concat_map
    (fun cls -> Seq.map (fun cats -> { cls; cats }) (Powerset.levels t.catset))
    (Total.levels t.ladder)

let size t =
  match (Total.size t.ladder, Powerset.size t.catset) with
  | Some a, Some b when b = 0 || a <= max_int / b -> Some (a * b)
  | _ -> None

let level_to_string t l =
  Printf.sprintf "%s:%s" (Total.name t.ladder l.cls)
    (Powerset.level_to_string t.catset l.cats)

let pp_level t ppf l = Format.pp_print_string ppf (level_to_string t l)

let level_of_string t s =
  match String.index_opt s ':' with
  | None -> (
      (* A bare classification name means the empty category set. *)
      match Total.of_name t.ladder (String.trim s) with
      | Some c -> Some { cls = c; cats = 0 }
      | None -> None)
  | Some i -> (
      let cls = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match
        (Total.of_name t.ladder cls, Powerset.level_of_string t.catset rest)
      with
      | Some c, Some m -> Some { cls = c; cats = m }
      | _ -> None)

let residual _ ~target ~others =
  {
    cls = (if others.cls >= target.cls then 0 else target.cls);
    cats = target.cats land lnot others.cats;
  }
