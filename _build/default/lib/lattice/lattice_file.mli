(** Text format for lattice files.

    Line-based; [#] starts a comment:

    {v
    levels L1, L2, L3, L4    # declare levels (repeatable)
    L1 < L2                  # order pairs, lo < hi (need not be covers)
    L1 < L3
    L2 < L4
    L3 < L4
    v}

    [parse] validates the result as a lattice ({!Explicit.create});
    [parse_semilattice] completes missing top/bottom with dummies first
    (§6 of the paper). *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit
val parse : string -> (Explicit.t, error) result
val parse_semilattice : string -> (Semilattice.t, error) result

(** Render a lattice back to the file format (covers only). *)
val to_string : Explicit.t -> string
