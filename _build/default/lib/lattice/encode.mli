(** Compact dominance encodings for explicit lattices (§5 of the paper).

    The paper notes that the practicality of the algorithm rests on cheap
    lattice operations, citing encoding techniques (Aït-Kaci et al.,
    Ganguly et al., Talamo–Vocca) that make dominance tests (near)
    constant-time after preprocessing.  This module provides a classic
    *chain-decomposition* encoding: the lattice is greedily partitioned
    into chains; each level stores, per chain, the highest rank it
    dominates on that chain.  [a ⊑ b] then reduces to one integer
    comparison on [a]'s own chain — O(1) per test after O(n·w) space,
    where [w] is the number of chains (≥ the width of the order). *)

type t

(** Preprocess an explicit lattice. *)
val of_explicit : Explicit.t -> t

(** Number of chains used by the decomposition. *)
val n_chains : t -> int

(** Constant-time dominance test, equivalent to {!Explicit.leq}. *)
val leq : t -> Explicit.level -> Explicit.level -> bool

(** [chain_of t l] is [(chain, rank)] — the position of [l] in its chain. *)
val chain_of : t -> Explicit.level -> int * int
