let successors n edges =
  let succ = Array.make n [] in
  List.iter
    (fun (lo, hi) ->
      if lo < 0 || lo >= n || hi < 0 || hi >= n then
        invalid_arg "Hasse: node out of range";
      if lo = hi then invalid_arg "Hasse: self-loop";
      succ.(lo) <- hi :: succ.(lo))
    edges;
  (* Deterministic, duplicate-free adjacency. *)
  Array.map (fun l -> List.sort_uniq compare l) succ

(* Kahn's algorithm; raises on cycles.  Candidates are taken smallest-first
   so the order is canonical. *)
let topological_order n edges =
  let succ = successors n edges in
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun hi -> indeg.(hi) <- indeg.(hi) + 1)) succ;
  let module H = Set.Make (Int) in
  let ready = ref H.empty in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then ready := H.add i !ready
  done;
  let rec go acc ready =
    match H.min_elt_opt ready with
    | None -> List.rev acc
    | Some i ->
        let ready = ref (H.remove i ready) in
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then ready := H.add j !ready)
          succ.(i);
        go (i :: acc) !ready
  in
  let order = go [] !ready in
  if List.length order <> n then invalid_arg "Hasse: order relation is cyclic";
  order

let is_acyclic n edges =
  match topological_order n edges with
  | _ -> true
  | exception Invalid_argument _ -> false

let transitive_closure n edges =
  let succ = successors n edges in
  let order = topological_order n edges in
  let up = Array.init n (fun _ -> Bitset.create n) in
  (* Process nodes from the top down so successors' up-sets are complete. *)
  List.iter
    (fun i ->
      Bitset.set up.(i) i;
      List.iter (fun j -> Bitset.union_into up.(i) up.(j)) succ.(i))
    (List.rev order);
  up

let transitive_reduction n edges =
  let up = transitive_closure n edges in
  let succ = successors n edges in
  (* (lo, hi) is a cover iff no intermediate successor of lo reaches hi. *)
  let is_cover lo hi =
    List.for_all (fun m -> m = hi || not (Bitset.mem up.(m) hi)) succ.(lo)
  in
  let covers = ref [] in
  for lo = n - 1 downto 0 do
    List.iter
      (fun hi -> if is_cover lo hi then covers := (lo, hi) :: !covers)
      (List.rev succ.(lo))
  done;
  List.sort_uniq compare !covers

let longest_path n edges =
  let succ = successors n edges in
  let order = topological_order n edges in
  let dist = Array.make n 0 in
  let best = ref 0 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if dist.(i) + 1 > dist.(j) then dist.(j) <- dist.(i) + 1;
          if dist.(j) > !best then best := dist.(j))
        succ.(i))
    order;
  !best
