type level = int
type t = { names : string array; index : (string, int) Hashtbl.t }

let create names =
  if names = [] then invalid_arg "Total.create: empty";
  let arr = Array.of_list names in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i n ->
      if Hashtbl.mem index n then
        invalid_arg (Printf.sprintf "Total.create: duplicate name %S" n);
      Hashtbl.add index n i)
    arr;
  { names = arr; index }

let anonymous n =
  if n <= 0 then invalid_arg "Total.anonymous: nonpositive size";
  create (List.init n string_of_int)

let cardinal t = Array.length t.names
let of_name t s = Hashtbl.find_opt t.index s

let of_name_exn t s =
  match of_name t s with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Total.of_name_exn: unknown level %S" s)

let name t l = t.names.(l)
let equal _ (a : level) b = a = b
let compare_level _ = Int.compare
let leq _ a b = a <= b
let lub _ a b = max a b
let glb _ a b = min a b
let top t = cardinal t - 1
let bottom _ = 0
let covers_below _ l = if l = 0 then [] else [ l - 1 ]
let height t = cardinal t - 1
let levels t = Seq.init (cardinal t) Fun.id
let size t = Some (cardinal t)
let pp_level t ppf l = Format.pp_print_string ppf t.names.(l)
let level_to_string t l = t.names.(l)
let level_of_string = of_name

let residual _ ~target ~others = if others >= target then 0 else target
