(** Compartmented MLS security lattices (§2, Fig. 1(a); §5).

    An access class is a pair [(s, C)] of a classification level [s] from a
    totally ordered ladder and a set of categories (compartments) [C];
    [(s1, C1) ⊑ (s2, C2)] iff [s1 ≤ s2] and [C1 ⊆ C2].  This is the lattice
    form mandated by DoD 5200.28-STD — at most 16 classification levels and
    64 categories — and, as §5 of the paper observes, it admits a bit-vector
    encoding with constant-time dominance, lub and glb.  This module is that
    encoding (category sets are machine-word masks). *)

type t

type level = { cls : int; cats : int }
(** [cls] is the rank in the classification ladder; [cats] the category
    mask. *)

(** [create ~classifications ~categories] with classifications bottom-up.
    @raise Invalid_argument on empty/duplicate classifications or more than
    62 categories. *)
val create : classifications:string list -> categories:string list -> t

(** The Fig. 1(a) lattice: [S ⊑ TS] with categories [Army], [Nuclear]. *)
val fig1a : t

(** The full DoD-style lattice shape: [U ⊑ C ⊑ S ⊑ TS] and [n] categories
    [K0 … K(n-1)].  @raise Invalid_argument if [n > 62]. *)
val dod : n_categories:int -> t

(** [make t ~cls ~cats] builds a level from names. *)
val make : t -> cls:string -> cats:string list -> level option

val make_exn : t -> cls:string -> cats:string list -> level
val classification_name : t -> level -> string
val category_names : t -> level -> string list
val n_classifications : t -> int
val n_categories : t -> int

include Lattice_intf.S with type t := t and type level := level

(** The direct minimal-level computation of footnote 4: the least level [m]
    with [lub m others ⊒ target].  Substituting this for the lattice walk in
    [Minlevel] removes the [H·B] factor from the complexity of complex
    constraint handling on compartmented lattices. *)
val residual : t -> target:level -> others:level -> level
