type level = int
type t = { elems : string array; index : (string, int) Hashtbl.t }

let max_arity = Sys.int_size - 1 (* 62: keep masks positive *)

let create elements =
  let arr = Array.of_list elements in
  if Array.length arr > max_arity then
    invalid_arg
      (Printf.sprintf "Powerset.create: more than %d elements" max_arity);
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i n ->
      if Hashtbl.mem index n then
        invalid_arg (Printf.sprintf "Powerset.create: duplicate element %S" n);
      Hashtbl.add index n i)
    arr;
  { elems = arr; index }

let arity t = Array.length t.elems

let of_elements t names =
  let rec go acc = function
    | [] -> Some acc
    | n :: rest -> (
        match Hashtbl.find_opt t.index n with
        | Some i -> go (acc lor (1 lsl i)) rest
        | None -> None)
  in
  go 0 names

let of_elements_exn t names =
  match of_elements t names with
  | Some l -> l
  | None -> invalid_arg "Powerset.of_elements_exn: unknown element"

let elements t l =
  let out = ref [] in
  for i = arity t - 1 downto 0 do
    if l land (1 lsl i) <> 0 then out := t.elems.(i) :: !out
  done;
  !out

let singleton t n =
  match Hashtbl.find_opt t.index n with
  | Some i -> Some (1 lsl i)
  | None -> None

let equal _ (a : level) b = a = b
let compare_level _ = Int.compare
let leq _ a b = a land lnot b = 0
let lub _ a b = a lor b
let glb _ a b = a land b
let top t = (1 lsl arity t) - 1
let bottom _ = 0

let covers_below _ l =
  (* Remove one member at a time, lowest first. *)
  let rec go acc rest =
    if rest = 0 then List.rev acc
    else
      let bit = rest land -rest in
      go ((l land lnot bit) :: acc) (rest land lnot bit)
  in
  go [] l

let height t = arity t

let levels t =
  let n = 1 lsl arity t in
  Seq.init n Fun.id

let size t = Some (1 lsl arity t)

let level_to_string t l = "{" ^ String.concat "," (elements t l) ^ "}"
let pp_level t ppf l = Format.pp_print_string ppf (level_to_string t l)

let level_of_string t s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then None
  else
    let body = String.trim (String.sub s 1 (n - 2)) in
    if body = "" then Some 0
    else
      body |> String.split_on_char ',' |> List.map String.trim |> of_elements t

let residual _ ~target ~others = target land lnot others
