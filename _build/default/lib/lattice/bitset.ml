type t = { n : int; w : int array }

let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; w = Array.make (max 1 (words_for n)) 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let q = i / bits_per_word and r = i mod bits_per_word in
  t.w.(q) <- t.w.(q) lor (1 lsl r)

let clear t i =
  check t i;
  let q = i / bits_per_word and r = i mod bits_per_word in
  t.w.(q) <- t.w.(q) land lnot (1 lsl r)

let mem t i =
  check t i;
  let q = i / bits_per_word and r = i mod bits_per_word in
  t.w.(q) land (1 lsl r) <> 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.w

let is_empty t = Array.for_all (fun w -> w = 0) t.w

let copy t = { n = t.n; w = Array.copy t.w }

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  Array.for_all2 ( = ) a.w b.w

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.w - 1 do
    if a.w.(i) land lnot b.w.(i) <> 0 then ok := false
  done;
  !ok

let map2 f a b =
  same_capacity a b;
  { n = a.n; w = Array.init (Array.length a.w) (fun i -> f a.w.(i) b.w.(i)) }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let inter_into a b =
  same_capacity a b;
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) land b.w.(i)
  done

let union_into a b =
  same_capacity a b;
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) lor b.w.(i)
  done

let iter f t =
  for q = 0 to Array.length t.w - 1 do
    let w = t.w.(q) in
    if w <> 0 then
      for r = 0 to bits_per_word - 1 do
        if w land (1 lsl r) <> 0 then f ((q * bits_per_word) + r)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

exception Found of int

let min_elt t =
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let max_elt t =
  let best = ref None in
  for q = Array.length t.w - 1 downto 0 do
    if !best = None then begin
      let w = t.w.(q) in
      if w <> 0 then
        for r = bits_per_word - 1 downto 0 do
          if !best = None && w land (1 lsl r) <> 0 then
            best := Some ((q * bits_per_word) + r)
        done
    end
  done;
  !best

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.w - 1 do
    if a.w.(i) land b.w.(i) <> 0 then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)

let compare a b =
  same_capacity a b;
  let rec go i =
    if i < 0 then 0
    else
      match Int.compare a.w.(i) b.w.(i) with 0 -> go (i - 1) | c -> c
  in
  go (Array.length a.w - 1)
