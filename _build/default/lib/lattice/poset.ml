type elt = int

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  up : Bitset.t array;
  down : Bitset.t array;
  covers_lo : int list array;
  covers_hi : int list array;
  height : int;
}

type error = Empty | Duplicate_name of string | Unknown_name of string | Cyclic_order

let pp_error ppf = function
  | Empty -> Format.fprintf ppf "poset has no elements"
  | Duplicate_name n -> Format.fprintf ppf "duplicate element name %S" n
  | Unknown_name n -> Format.fprintf ppf "order pair mentions unknown element %S" n
  | Cyclic_order -> Format.fprintf ppf "order relation is cyclic"

exception Err of error

let create ~names ~order =
  try
    if names = [] then raise (Err Empty);
    let arr = Array.of_list names in
    let n = Array.length arr in
    let index = Hashtbl.create n in
    Array.iteri
      (fun i nm ->
        if Hashtbl.mem index nm then raise (Err (Duplicate_name nm));
        Hashtbl.add index nm i)
      arr;
    let edge (lo, hi) =
      let find x =
        match Hashtbl.find_opt index x with
        | Some i -> i
        | None -> raise (Err (Unknown_name x))
      in
      (find lo, find hi)
    in
    let edges =
      List.filter (fun (lo, hi) -> lo <> hi) (List.map edge order)
    in
    let covers =
      match Hasse.transitive_reduction n edges with
      | c -> c
      | exception Invalid_argument _ -> raise (Err Cyclic_order)
    in
    let up = Hasse.transitive_closure n covers in
    let down = Array.init n (fun _ -> Bitset.create n) in
    for i = 0 to n - 1 do
      Bitset.iter (fun j -> Bitset.set down.(j) i) up.(i)
    done;
    let covers_lo = Array.make n [] and covers_hi = Array.make n [] in
    List.iter
      (fun (lo, hi) ->
        covers_lo.(hi) <- lo :: covers_lo.(hi);
        covers_hi.(lo) <- hi :: covers_hi.(lo))
      (List.rev covers);
    Ok
      {
        names = arr;
        index;
        up;
        down;
        covers_lo;
        covers_hi;
        height = Hasse.longest_path n covers;
      }
  with Err e -> Error e

let create_exn ~names ~order =
  match create ~names ~order with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Poset.create: %a" pp_error e)

let butterfly =
  create_exn
    ~names:[ "c"; "d"; "a"; "b" ]
    ~order:[ ("c", "a"); ("c", "b"); ("d", "a"); ("d", "b") ]

let cardinal t = Array.length t.names
let all t = List.init (cardinal t) Fun.id
let of_name t s = Hashtbl.find_opt t.index s

let of_name_exn t s =
  match of_name t s with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Poset.of_name_exn: unknown element %S" s)

let name t e = t.names.(e)
let leq t a b = Bitset.mem t.up.(a) b
let equal _ (a : elt) b = a = b
let covers_below t e = t.covers_lo.(e)
let covers_above t e = t.covers_hi.(e)

let maximal_elements t =
  List.filter (fun e -> t.covers_hi.(e) = []) (all t)

let minimal_elements t =
  List.filter (fun e -> t.covers_lo.(e) = []) (all t)

let upper_bounds t = function
  | [] -> all t
  | e :: rest ->
      let acc = Bitset.copy t.up.(e) in
      List.iter (fun x -> Bitset.inter_into acc t.up.(x)) rest;
      Bitset.to_list acc

let lub_opt t a b =
  let ubs = Bitset.inter t.up.(a) t.up.(b) in
  let minimal =
    Bitset.fold
      (fun x acc ->
        if Bitset.fold (fun y strict -> strict || (y <> x && leq t y x)) ubs false
        then acc
        else x :: acc)
      ubs []
  in
  match minimal with [ m ] -> Some m | _ -> None

let strict_below t e =
  List.filter (fun x -> x <> e) (Bitset.to_list t.down.(e))

let height t = t.height
let pp_elt t ppf e = Format.pp_print_string ppf t.names.(e)

let is_partial_lattice t =
  let n = cardinal t in
  let ok = ref true in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let ubs = Bitset.inter t.up.(a) t.up.(b) in
      if (not (Bitset.is_empty ubs)) && lub_opt t a b = None then ok := false
    done
  done;
  !ok
