(** Totally ordered lattices (classification ladders such as
    [Unclassified ⊑ Confidential ⊑ Secret ⊑ TopSecret]).

    Levels are ranks [0 .. n-1]; an optional name per rank is kept for
    display and parsing. *)

type t
type level = int

(** [create names] with [names] listed bottom-up.
    @raise Invalid_argument on an empty or duplicate-carrying list. *)
val create : string list -> t

(** [anonymous n] is the chain [0 ⊑ 1 ⊑ … ⊑ n-1] with numeric names. *)
val anonymous : int -> t

val cardinal : t -> int
val of_name : t -> string -> level option
val of_name_exn : t -> string -> level
val name : t -> level -> string

include Lattice_intf.S with type t := t and type level := level

(** [residual t ~target ~others] is the least level [m] with
    [lub m others ⊒ target] — the direct "minlevel" computation available on
    total orders (cf. footnote 4 of the paper). *)
val residual : t -> target:level -> others:level -> level
