type t = {
  chain : int array; (* chain id per level *)
  rank : int array; (* position within the chain, bottom = 0 *)
  reach : int array array; (* reach.(l).(c) = highest rank on chain c dominated
                              by l, or -1 if none *)
  n_chains : int;
}

(* Greedy path cover: walk levels bottom-up (they are topologically numbered)
   and extend the chain of some immediate predecessor when possible. *)
let of_explicit lat =
  let n = Explicit.cardinal lat in
  let chain = Array.make n (-1) and rank = Array.make n 0 in
  let chain_top = Hashtbl.create 16 in
  (* chain id -> current top level *)
  let next_chain = ref 0 in
  for l = 0 to n - 1 do
    let extendable =
      List.find_opt
        (fun p -> Hashtbl.find_opt chain_top chain.(p) = Some p)
        (Explicit.covers_below lat l)
    in
    match extendable with
    | Some p ->
        chain.(l) <- chain.(p);
        rank.(l) <- rank.(p) + 1;
        Hashtbl.replace chain_top chain.(p) l
    | None ->
        chain.(l) <- !next_chain;
        rank.(l) <- 0;
        Hashtbl.replace chain_top !next_chain l;
        incr next_chain
  done;
  let nc = !next_chain in
  let reach = Array.init n (fun _ -> Array.make nc (-1)) in
  (* Bottom-up: a level dominates, per chain, the max of what its covers
     dominate, plus itself on its own chain. *)
  for l = 0 to n - 1 do
    List.iter
      (fun p ->
        for c = 0 to nc - 1 do
          if reach.(p).(c) > reach.(l).(c) then reach.(l).(c) <- reach.(p).(c)
        done)
      (Explicit.covers_below lat l);
    if rank.(l) > reach.(l).(chain.(l)) then reach.(l).(chain.(l)) <- rank.(l)
  done;
  { chain; rank; reach; n_chains = nc }

let n_chains t = t.n_chains
let leq t a b = t.reach.(b).(t.chain.(a)) >= t.rank.(a)
let chain_of t l = (t.chain.(l), t.rank.(l))
