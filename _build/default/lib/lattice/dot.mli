(** Graphviz export of Hasse diagrams. *)

(** DOT rendering of an explicit lattice (edges point upward: from covered
    level to covering level). *)
val of_explicit : Explicit.t -> string

(** DOT rendering of a poset. *)
val of_poset : Poset.t -> string
