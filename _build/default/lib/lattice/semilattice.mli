(** Semi-lattice completion (§6 of the paper).

    In practice the order of security levels may lack a top (no subject may
    see everything) or a bottom (nothing is truly public).  The paper's
    recipe: add a dummy [⊤] and/or [⊥], run the algorithm unchanged, and
    interpret residual dummies in the result — an attribute left at the
    dummy top means the constraints are unsatisfiable within the real
    levels; one left at the dummy bottom was never effectively constrained.

    This module performs the completion and remembers which dummies were
    added so {!Minup_core.Solver} wrappers can interpret results. *)

type t = {
  lattice : Explicit.t;  (** the completed lattice *)
  dummy_top : Explicit.level option;
      (** the added top, when the input had no unique maximal element *)
  dummy_bottom : Explicit.level option;
}

(** Reserved names of the dummy elements. *)
val dummy_top_name : string

val dummy_bottom_name : string

(** [complete ~names ~order] adds dummies as needed and builds the explicit
    lattice.  Fails like {!Explicit.create} if even the completed order is
    not a lattice (the paper requires at least a partial lattice: any two
    levels with an upper bound must have a least one). *)
val complete :
  names:string list -> order:(string * string) list -> (t, Explicit.error) result

val complete_exn : names:string list -> order:(string * string) list -> t

(** [is_dummy t l] — true iff [l] is one of the added dummies. *)
val is_dummy : t -> Explicit.level -> bool
