(** Finite lattices given explicitly by a Hasse diagram.

    An explicit lattice is created from a list of level names and a list of
    order pairs [(lo, hi)] meaning [lo ⊑ hi].  Creation validates that the
    relation is a partial order (no cycles) and that every pair of levels has
    a least upper bound and a greatest lower bound — i.e. that the input
    really is a lattice, as required by the paper (§2, §6).  Non-lattice
    inputs are rejected with a precise witness.

    Internally, levels are renumbered in topological order and each level
    carries the bit sets of its up-set and down-set, so dominance tests are
    O(1) amortized and lub/glb are either table lookups (small lattices) or
    word-parallel bit-set scans. *)

type t
type level = int

type error =
  | Empty  (** no levels were given *)
  | Duplicate_name of string
  | Unknown_name of string  (** an order pair mentions an undeclared level *)
  | Cyclic_order  (** the order pairs contain a cycle *)
  | No_upper_bound of string * string
  | No_least_upper_bound of string * string * string * string
      (** [(a, b, m1, m2)]: levels [a] and [b] have two incomparable minimal
          upper bounds [m1] and [m2] *)
  | No_lower_bound of string * string
  | No_greatest_lower_bound of string * string * string * string

val pp_error : Format.formatter -> error -> unit

(** [create ~names ~order] builds and validates the lattice.  [order] pairs
    need not be covers; the transitive reduction is computed internally. *)
val create : names:string list -> order:(string * string) list -> (t, error) result

(** Like {!create} but raises [Invalid_argument] with a rendered error. *)
val create_exn : names:string list -> order:(string * string) list -> t

(** [chain names] is the total order with [names] listed bottom-up. *)
val chain : string list -> t

(** Number of levels. *)
val cardinal : t -> int

(** All levels, bottom-first in topological order. *)
val all : t -> level list

(** [of_name t s] is the level named [s]. *)
val of_name : t -> string -> level option

val of_name_exn : t -> string -> level
val name : t -> level -> string

(** Cover pairs [(lo, hi)] of the validated lattice, sorted. *)
val cover_pairs : t -> (level * level) list

(** The lattice signature instance. *)
include Lattice_intf.S with type t := t and type level := level
