(** Lattice-law verification.

    [Laws (L)] exhaustively checks that an [L.t] value really is a lattice
    with consistent operations: partial-order axioms for [leq], agreement of
    [lub]/[glb] with the order (commutativity, associativity, absorption,
    idempotence, and [a ⊑ b ⇔ a ⊔ b = b ⇔ a ⊓ b = a]), correctness and
    completeness of [covers_below], and the advertised [top]/[bottom]/
    [height].  Used by the test suite on every lattice implementation and on
    randomly generated lattices. *)

module Laws (L : Lattice_intf.S) = struct
  let result_of_violation = function
    | [] -> Ok ()
    | v :: _ -> Error v

  let check ?(max_size = 64) ?(max_triples = 40_000) lat =
    let violations = ref [] in
    let fail fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
    let ls =
      (* Enumerate up to max_size + 1 to detect oversize lattices. *)
      List.of_seq (Seq.take (max_size + 1) (L.levels lat))
    in
    if List.length ls > max_size then
      Error (Printf.sprintf "lattice larger than max_size=%d" max_size)
    else begin
      let pp = L.pp_level lat in
      let leq = L.leq lat and lub = L.lub lat and glb = L.glb lat in
      let equal = L.equal lat in
      (* Partial-order axioms. *)
      List.iter
        (fun a -> if not (leq a a) then fail "leq not reflexive at %a" pp a)
        ls;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if leq a b && leq b a && not (equal a b) then
                fail "leq not antisymmetric at %a, %a" pp a pp b;
              (* lub/glb consistency with the order. *)
              let l = lub a b and g = glb a b in
              if not (leq a l && leq b l) then
                fail "lub %a %a = %a is not an upper bound" pp a pp b pp l;
              if not (leq g a && leq g b) then
                fail "glb %a %a = %a is not a lower bound" pp a pp b pp g;
              if not (equal l (lub b a)) then fail "lub not commutative at %a, %a" pp a pp b;
              if not (equal g (glb b a)) then fail "glb not commutative at %a, %a" pp a pp b;
              if leq a b && not (equal l b) then
                fail "a ⊑ b but lub a b ≠ b at %a, %a" pp a pp b;
              if leq a b && not (equal g a) then
                fail "a ⊑ b but glb a b ≠ a at %a, %a" pp a pp b;
              if not (equal (lub a (glb a b)) a) then
                fail "absorption lub/glb fails at %a, %a" pp a pp b;
              if not (equal (glb a (lub a b)) a) then
                fail "absorption glb/lub fails at %a, %a" pp a pp b;
              (* Leastness/greatestness against all candidates. *)
              List.iter
                (fun c ->
                  if leq a c && leq b c && not (leq l c) then
                    fail "lub %a %a not least (%a is a smaller ub)" pp a pp b pp c;
                  if leq c a && leq c b && not (leq c g) then
                    fail "glb %a %a not greatest (%a is a larger lb)" pp a pp b pp c)
                ls)
            ls)
        ls;
      (* Associativity, bounded by max_triples. *)
      let count = ref 0 in
      (try
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 List.iter
                   (fun c ->
                     incr count;
                     if !count > max_triples then raise Exit;
                     if not (equal (lub a (lub b c)) (lub (lub a b) c)) then
                       fail "lub not associative at %a, %a, %a" pp a pp b pp c;
                     if not (equal (glb a (glb b c)) (glb (glb a b) c)) then
                       fail "glb not associative at %a, %a, %a" pp a pp b pp c)
                   ls)
               ls)
           ls
       with Exit -> ());
      (* Top and bottom. *)
      let t = L.top lat and b = L.bottom lat in
      List.iter
        (fun a ->
          if not (leq a t) then fail "%a not below top" pp a;
          if not (leq b a) then fail "%a not above bottom" pp a)
        ls;
      (* covers_below: strictly below, immediate, and complete. *)
      List.iter
        (fun a ->
          let covers = L.covers_below lat a in
          List.iter
            (fun c ->
              if not (leq c a && not (equal c a)) then
                fail "cover %a of %a is not strictly below" pp c pp a;
              List.iter
                (fun m ->
                  if
                    leq c m && leq m a
                    && not (equal m c)
                    && not (equal m a)
                  then fail "cover %a of %a is not immediate (%a between)" pp c pp a pp m)
                ls)
            covers;
          (* Completeness: every strict predecessor lies below some cover. *)
          List.iter
            (fun x ->
              if leq x a && not (equal x a) then
                if not (List.exists (fun c -> leq x c) covers) then
                  fail "strict predecessor %a of %a below no cover" pp x pp a)
            ls)
        ls;
      (* Height: longest chain following covers. *)
      let module M = Map.Make (struct
        type t = L.level

        let compare = L.compare_level lat
      end) in
      let memo = ref M.empty in
      let rec depth x =
        match M.find_opt x !memo with
        | Some d -> d
        | None ->
            let d =
              List.fold_left (fun acc c -> max acc (1 + depth c)) 0
                (L.covers_below lat x)
            in
            memo := M.add x d !memo;
            d
      in
      let h = List.fold_left (fun acc x -> max acc (depth x)) 0 ls in
      if h <> L.height lat then
        fail "height mismatch: computed %d, advertised %d" h (L.height lat);
      (* size agrees with the enumeration when advertised. *)
      (match L.size lat with
      | Some n when n <> List.length ls -> fail "size %d ≠ enumerated %d" n (List.length ls)
      | Some _ | None -> ());
      result_of_violation (List.rev !violations)
    end
end
