(** Arbitrary finite partial orders (not necessarily lattices).

    §6 of the paper shows that over arbitrary posets the minimal
    classification problem ({e min-poset}) is NP-complete; this module is
    the substrate for that result: the Fig. 4 reduction poset, the
    4-element "butterfly" poset, and the backtracking solver in
    {!Minup_poset.Minposet} all live on top of it.

    Unlike {!Explicit}, creation only validates that the order pairs are
    acyclic; lubs/glbs need not exist. *)

type t
type elt = int

type error = Empty | Duplicate_name of string | Unknown_name of string | Cyclic_order

val pp_error : Format.formatter -> error -> unit

(** [create ~names ~order] with order pairs [(lo, hi)] read [lo ⊑ hi]. *)
val create : names:string list -> order:(string * string) list -> (t, error) result

val create_exn : names:string list -> order:(string * string) list -> t

(** The 4-element poset of Fig. 4(b): two maximal elements [a], [b], each
    dominating both minimal elements [c], [d]. *)
val butterfly : t

val cardinal : t -> int
val all : t -> elt list
val of_name : t -> string -> elt option
val of_name_exn : t -> string -> elt
val name : t -> elt -> string
val leq : t -> elt -> elt -> bool
val equal : t -> elt -> elt -> bool

(** Immediate predecessors, ascending. *)
val covers_below : t -> elt -> elt list

val covers_above : t -> elt -> elt list

(** Elements with nothing strictly above/below. *)
val maximal_elements : t -> elt list

val minimal_elements : t -> elt list

(** Common upper bounds of a list of elements (all of them). *)
val upper_bounds : t -> elt list -> elt list

(** Least upper bound if it exists. *)
val lub_opt : t -> elt -> elt -> elt option

(** Strict down-set of an element. *)
val strict_below : t -> elt -> elt list

val height : t -> int
val pp_elt : t -> Format.formatter -> elt -> unit

(** Whether every pair with an upper bound has a least one (a "partial
    lattice" in the paper's §6 sense). *)
val is_partial_lattice : t -> bool
