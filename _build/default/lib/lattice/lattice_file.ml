type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Err of string

let fail fmt = Format.kasprintf (fun s -> raise (Err s)) fmt

let split_commas s =
  s |> String.split_on_char ',' |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_raw text =
  let names = ref [] and order = ref [] in
  let do_line raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = String.trim line in
    if line <> "" then
      if String.length line > 6 && String.sub line 0 6 = "levels" then
        names := !names @ split_commas (String.sub line 6 (String.length line - 6))
      else
        match String.index_opt line '<' with
        | Some i ->
            let lo = String.trim (String.sub line 0 i) in
            let hi = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            if lo = "" || hi = "" then fail "malformed order pair";
            order := (lo, hi) :: !order
        | None -> fail "expected 'levels ...' or 'lo < hi'"
  in
  let rec go lineno = function
    | [] -> Ok (!names, List.rev !order)
    | l :: rest -> (
        match do_line l with
        | () -> go (lineno + 1) rest
        | exception Err message -> Error { line = lineno; message })
  in
  go 1 (String.split_on_char '\n' text)

let parse text =
  match parse_raw text with
  | Error _ as e -> e
  | Ok (names, order) -> (
      match Explicit.create ~names ~order with
      | Ok l -> Ok l
      | Error e ->
          Error { line = 0; message = Format.asprintf "%a" Explicit.pp_error e })

let parse_semilattice text =
  match parse_raw text with
  | Error _ as e -> e
  | Ok (names, order) -> (
      match Semilattice.complete ~names ~order with
      | Ok s -> Ok s
      | Error e ->
          Error { line = 0; message = Format.asprintf "%a" Explicit.pp_error e })

let to_string lat =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    ("levels "
    ^ String.concat ", " (List.map (Explicit.name lat) (Explicit.all lat))
    ^ "\n");
  List.iter
    (fun (lo, hi) ->
      Buffer.add_string buf
        (Printf.sprintf "%s < %s\n" (Explicit.name lat lo) (Explicit.name lat hi)))
    (Explicit.cover_pairs lat);
  Buffer.contents buf
