lib/lattice/dot.mli: Explicit Poset
