lib/lattice/hasse.mli: Bitset
