lib/lattice/encode.ml: Array Explicit Hashtbl List
