lib/lattice/lattice_file.mli: Explicit Format Semilattice
