lib/lattice/theory.ml: Array Explicit List
