lib/lattice/poset.ml: Array Bitset Format Fun Hashtbl Hasse List Printf
