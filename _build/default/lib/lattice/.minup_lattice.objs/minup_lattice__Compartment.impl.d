lib/lattice/compartment.ml: Format Int List Powerset Printf Seq String Total
