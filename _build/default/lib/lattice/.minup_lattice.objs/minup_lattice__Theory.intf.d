lib/lattice/theory.mli: Explicit
