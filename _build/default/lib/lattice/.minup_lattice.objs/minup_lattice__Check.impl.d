lib/lattice/check.ml: Format Lattice_intf List Map Printf Seq
