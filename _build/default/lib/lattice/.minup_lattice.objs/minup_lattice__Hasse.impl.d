lib/lattice/hasse.ml: Array Bitset Int List Set
