lib/lattice/powerset.ml: Array Format Fun Hashtbl Int List Printf Seq String Sys
