lib/lattice/powerset.mli: Lattice_intf
