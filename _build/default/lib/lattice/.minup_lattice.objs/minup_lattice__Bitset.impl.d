lib/lattice/bitset.ml: Array Format Int List Sys
