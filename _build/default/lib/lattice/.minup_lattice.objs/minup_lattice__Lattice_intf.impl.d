lib/lattice/lattice_intf.ml: Format List Map Seq
