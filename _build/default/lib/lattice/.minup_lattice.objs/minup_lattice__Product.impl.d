lib/lattice/product.ml: Format Lattice_intf List Printf Seq String
