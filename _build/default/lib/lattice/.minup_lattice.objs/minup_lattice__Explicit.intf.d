lib/lattice/explicit.mli: Format Lattice_intf
