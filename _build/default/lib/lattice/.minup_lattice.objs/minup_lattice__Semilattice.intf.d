lib/lattice/semilattice.mli: Explicit
