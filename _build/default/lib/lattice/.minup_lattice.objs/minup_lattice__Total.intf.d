lib/lattice/total.mli: Lattice_intf
