lib/lattice/bitset.mli: Format
