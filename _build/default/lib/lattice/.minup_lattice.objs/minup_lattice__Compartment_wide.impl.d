lib/lattice/compartment_wide.ml: Array Bitset Format Hashtbl Int List Printf Seq String Sys Total
