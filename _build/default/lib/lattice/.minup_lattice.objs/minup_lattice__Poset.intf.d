lib/lattice/poset.mli: Format
