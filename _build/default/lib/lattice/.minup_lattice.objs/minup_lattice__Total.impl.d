lib/lattice/total.ml: Array Format Fun Hashtbl Int List Printf Seq
