lib/lattice/dot.ml: Buffer Explicit List Poset Printf String
