lib/lattice/lattice_file.ml: Buffer Explicit Format List Printf Semilattice String
