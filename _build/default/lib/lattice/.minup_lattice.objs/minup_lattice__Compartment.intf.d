lib/lattice/compartment.mli: Lattice_intf
