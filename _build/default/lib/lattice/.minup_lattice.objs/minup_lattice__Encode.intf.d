lib/lattice/encode.mli: Explicit
