lib/lattice/compartment_wide.mli: Lattice_intf
