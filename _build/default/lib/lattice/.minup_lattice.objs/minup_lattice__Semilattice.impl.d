lib/lattice/semilattice.ml: Explicit Format Hashtbl List
