lib/lattice/explicit.ml: Array Bitset Format Fun Hashtbl Hasse Int List Printf Seq
