(** Powerset lattices: levels are subsets of a fixed universe of at most 62
    named elements, ordered by inclusion.  [lub] is union, [glb] is
    intersection.  The category half of a compartmented MLS access class is
    exactly such a lattice. *)

type t

(** A subset, encoded as a bit mask over the universe. *)
type level = int

(** [create elements] with distinct element names; at most 62.
    @raise Invalid_argument otherwise. *)
val create : string list -> t

(** Number of elements of the universe (so the lattice has [2^arity]
    levels). *)
val arity : t -> int

(** [of_elements t names] is the subset holding exactly [names]. *)
val of_elements : t -> string list -> level option

val of_elements_exn : t -> string list -> level
val elements : t -> level -> string list

(** [singleton t name]. *)
val singleton : t -> string -> level option

include Lattice_intf.S with type t := t and type level := level

(** [residual t ~target ~others] is the least subset [m] with
    [m ∪ others ⊇ target], i.e. [target \ others] (footnote 4). *)
val residual : t -> target:level -> others:level -> level
