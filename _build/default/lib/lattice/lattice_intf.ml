(** The lattice abstraction the classification algorithm is generic over.

    The paper assumes security levels are drawn from a (complete, finite)
    lattice [(L, ⊑)].  Every concrete lattice in this library — explicit
    Hasse-diagram lattices, total orders, powersets, compartmented MLS
    lattices, products — implements {!S}.  A lattice is a *value* of type
    [t]; levels are values of type [level].  All operations take the lattice
    value first, which lets a single module serve arbitrarily many lattice
    instances (e.g. powersets of different arities).

    Conventions:
    - [leq lat a b] reads "[a] is dominated by [b]" ([a ⊑ b]); the paper
      writes the converse [b ≽ a] ("b dominates a").
    - [covers_below lat l] is the set of *immediate predecessors* of [l]:
      all [m ≺ l] with no [x], [m ≺ x ≺ l].  The forward-lowering procedure
      of the algorithm walks the lattice downward one cover at a time, so
      this operation must be cheap and must enumerate in a deterministic
      order (runs are reproducible). *)

module type S = sig
  (** A lattice instance. *)
  type t

  (** A security level of the lattice. *)
  type level

  (** Structural equality of levels. *)
  val equal : t -> level -> level -> bool

  (** Arbitrary total order on levels, for use in maps and sets. *)
  val compare_level : t -> level -> level -> int

  (** [leq lat a b] iff [a ⊑ b] (i.e. [b] dominates [a]). *)
  val leq : t -> level -> level -> bool

  (** Least upper bound. *)
  val lub : t -> level -> level -> level

  (** Greatest lower bound. *)
  val glb : t -> level -> level -> level

  val top : t -> level
  val bottom : t -> level

  (** Immediate predecessors of a level, in a deterministic order.
      [covers_below lat (bottom lat) = []]. *)
  val covers_below : t -> level -> level list

  (** Length (number of edges) of the longest chain in the lattice. *)
  val height : t -> int

  (** All levels, lazily.  May be astronomically large (e.g. compartmented
      lattices); callers that enumerate must bound consumption themselves. *)
  val levels : t -> level Seq.t

  (** Number of levels, if it fits in an [int]. *)
  val size : t -> int option

  val pp_level : t -> Format.formatter -> level -> unit
  val level_to_string : t -> level -> string

  (** Parse a level from its [level_to_string] rendering (used by the
      constraint-file front end). *)
  val level_of_string : t -> string -> level option
end

(** Operations derivable from {!S}, provided once for all lattices. *)
module Derived (L : S) = struct
  (** [lub_list lat ls] folds {!S.lub} over [ls] starting from [⊥]. *)
  let lub_list lat ls = List.fold_left (L.lub lat) (L.bottom lat) ls

  (** [glb_list lat ls] folds {!S.glb} over [ls] starting from [⊤]. *)
  let glb_list lat ls = List.fold_left (L.glb lat) (L.top lat) ls

  (** [lt lat a b] iff [a ⊏ b] strictly. *)
  let lt lat a b = L.leq lat a b && not (L.equal lat a b)

  (** Levels strictly dominated by [l] (the strict down-set), computed by
      repeated cover expansion.  Deterministic order, each level once. *)
  let strict_downset lat l =
    let module M = Map.Make (struct
      type t = L.level

      let compare = L.compare_level lat
    end) in
    let rec go seen frontier =
      match frontier with
      | [] -> seen
      | x :: rest ->
          if M.mem x seen then go seen rest
          else go (M.add x () seen) (L.covers_below lat x @ rest)
    in
    let seen = go M.empty (L.covers_below lat l) in
    List.map fst (M.bindings seen)

  (** All levels below-or-equal [l]. *)
  let downset lat l = l :: strict_downset lat l
end
