(** Product lattices.  [Make (A) (B)] is the component-wise order on
    [A.level * B.level]; it is a lattice whenever both components are, which
    makes it a convenient source of large guaranteed-correct lattices for
    tests and benchmarks (e.g. products of chains). *)

module Make (A : Lattice_intf.S) (B : Lattice_intf.S) :
  Lattice_intf.S with type t = A.t * B.t and type level = A.level * B.level =
struct
  type t = A.t * B.t
  type level = A.level * B.level

  let equal (la, lb) (a1, b1) (a2, b2) = A.equal la a1 a2 && B.equal lb b1 b2

  let compare_level (la, lb) (a1, b1) (a2, b2) =
    match A.compare_level la a1 a2 with
    | 0 -> B.compare_level lb b1 b2
    | c -> c

  let leq (la, lb) (a1, b1) (a2, b2) = A.leq la a1 a2 && B.leq lb b1 b2
  let lub (la, lb) (a1, b1) (a2, b2) = (A.lub la a1 a2, B.lub lb b1 b2)
  let glb (la, lb) (a1, b1) (a2, b2) = (A.glb la a1 a2, B.glb lb b1 b2)
  let top (la, lb) = (A.top la, B.top lb)
  let bottom (la, lb) = (A.bottom la, B.bottom lb)

  let covers_below (la, lb) (a, b) =
    List.map (fun a' -> (a', b)) (A.covers_below la a)
    @ List.map (fun b' -> (a, b')) (B.covers_below lb b)

  let height (la, lb) = A.height la + B.height lb

  let levels (la, lb) =
    Seq.concat_map (fun a -> Seq.map (fun b -> (a, b)) (B.levels lb)) (A.levels la)

  let size (la, lb) =
    match (A.size la, B.size lb) with
    | Some a, Some b when b = 0 || a <= max_int / b -> Some (a * b)
    | _ -> None

  let level_to_string (la, lb) (a, b) =
    Printf.sprintf "(%s,%s)" (A.level_to_string la a) (B.level_to_string lb b)

  let pp_level t ppf l = Format.pp_print_string ppf (level_to_string t l)

  let level_of_string (la, lb) s =
    let s = String.trim s in
    let n = String.length s in
    if n < 2 || s.[0] <> '(' || s.[n - 1] <> ')' then None
    else
      let body = String.sub s 1 (n - 2) in
      (* Split at the comma that balances parentheses/braces. *)
      let rec find i depth =
        if i >= String.length body then None
        else
          match body.[i] with
          | '(' | '{' -> find (i + 1) (depth + 1)
          | ')' | '}' -> find (i + 1) (depth - 1)
          | ',' when depth = 0 -> Some i
          | _ -> find (i + 1) depth
      in
      match find 0 0 with
      | None -> None
      | Some i -> (
          let sa = String.sub body 0 i in
          let sb = String.sub body (i + 1) (String.length body - i - 1) in
          match (A.level_of_string la sa, B.level_of_string lb sb) with
          | Some a, Some b -> Some (a, b)
          | _ -> None)
end
