type 'lvl rhs = Level of 'lvl | Attr of string
type 'lvl t = { lhs : string list; rhs : 'lvl rhs }
type error = Empty_lhs | Duplicate_lhs of string

let pp_error ppf = function
  | Empty_lhs -> Format.fprintf ppf "constraint with empty left-hand side"
  | Duplicate_lhs a ->
      Format.fprintf ppf "attribute %S repeated in left-hand side" a

let rec find_dup seen = function
  | [] -> None
  | a :: rest ->
      if List.mem a seen then Some a else find_dup (a :: seen) rest

let make ~lhs ~rhs =
  if lhs = [] then Error Empty_lhs
  else
    match find_dup [] lhs with
    | Some a -> Error (Duplicate_lhs a)
    | None -> Ok { lhs; rhs }

let make_exn ~lhs ~rhs =
  match make ~lhs ~rhs with
  | Ok c -> c
  | Error e -> invalid_arg (Format.asprintf "Cst.make: %a" pp_error e)

let simple attr rhs = make_exn ~lhs:[ attr ] ~rhs
let is_simple c = match c.lhs with [ _ ] -> true | _ -> false
let is_complex c = not (is_simple c)

let is_trivial c =
  match c.rhs with Level _ -> false | Attr a -> List.mem a c.lhs

let attrs c =
  let base = c.lhs in
  match c.rhs with
  | Level _ -> base
  | Attr a -> if List.mem a base then base else base @ [ a ]

let size c = List.length c.lhs + 1

let map_level f c =
  {
    lhs = c.lhs;
    rhs = (match c.rhs with Level l -> Level (f l) | Attr a -> Attr a);
  }

let pp pp_level ppf c =
  let pp_rhs ppf = function
    | Level l -> pp_level ppf l
    | Attr a -> Format.fprintf ppf "λ(%s)" a
  in
  match c.lhs with
  | [ a ] -> Format.fprintf ppf "λ(%s) ⊒ %a" a pp_rhs c.rhs
  | lhs ->
      Format.fprintf ppf "lub{%a} ⊒ %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf a -> Format.fprintf ppf "λ(%s)" a))
        lhs pp_rhs c.rhs
