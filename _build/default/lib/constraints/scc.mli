(** Strongly connected components of the constraint graph, by Tarjan's
    algorithm (iterative).

    Functionally redundant with {!Priorities} — which follows the paper's
    own two-pass formulation — this module exists as an independent
    implementation used to cross-check the priority computation in the test
    suite, and to answer SCC queries without computing priorities. *)

type t = private {
  component : int array;  (** component id per attribute *)
  members : int array array;  (** attributes per component id *)
  n_components : int;
}

(** Component ids are numbered in reverse topological order of the
    condensation: if some constraint edge leads from component [c1] to a
    different component [c2], then [c1 > c2]. *)
val compute : 'lvl Problem.t -> t

val same_component : t -> int -> int -> bool

(** A component is cyclic if it has more than one member or a self edge. *)
val is_cyclic_component : t -> 'lvl Problem.t -> int -> bool
