lib/constraints/priorities.ml: Array List Problem
