lib/constraints/graphviz.ml: Array Buffer Format Hashtbl Printf Problem String
