lib/constraints/graphviz.mli: Format Problem
