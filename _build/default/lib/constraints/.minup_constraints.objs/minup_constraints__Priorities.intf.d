lib/constraints/priorities.mli: Problem
