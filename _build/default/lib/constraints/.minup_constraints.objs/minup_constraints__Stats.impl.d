lib/constraints/stats.ml: Array Format Problem Scc
