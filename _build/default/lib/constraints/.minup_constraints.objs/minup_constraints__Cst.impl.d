lib/constraints/cst.ml: Format List
