lib/constraints/stats.mli: Format Problem
