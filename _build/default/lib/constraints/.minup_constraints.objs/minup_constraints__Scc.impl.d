lib/constraints/scc.ml: Array List Problem
