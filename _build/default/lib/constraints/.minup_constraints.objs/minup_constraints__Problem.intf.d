lib/constraints/problem.mli: Cst Format Hashtbl
