lib/constraints/scc.mli: Problem
