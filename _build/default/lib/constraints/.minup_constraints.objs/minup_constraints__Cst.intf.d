lib/constraints/cst.mli: Format
