lib/constraints/parse.mli: Cst Format
