lib/constraints/parse.ml: Buffer Cst Format Hashtbl List Printf String
