lib/constraints/problem.ml: Array Cst Format Hashtbl List Printf
