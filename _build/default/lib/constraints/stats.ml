type t = {
  n_attrs : int;
  n_csts : int;
  total_size : int;
  n_simple : int;
  n_complex : int;
  max_lhs : int;
  acyclic : bool;
  n_sccs : int;
  largest_scc : int;
  n_cyclic_attrs : int;
}

let compute p =
  let scc = Scc.compute p in
  let n_simple =
    Array.fold_left
      (fun acc (c : _ Problem.cst) ->
        if Array.length c.lhs = 1 then acc + 1 else acc)
      0 p.Problem.csts
  in
  let largest_scc =
    Array.fold_left (fun acc m -> max acc (Array.length m)) 0 scc.Scc.members
  in
  let n_cyclic_attrs =
    Array.fold_left
      (fun acc m -> if Array.length m > 1 then acc + Array.length m else acc)
      0 scc.Scc.members
    +
    (* Single-attribute components that carry a self-loop. *)
    let count = ref 0 in
    Array.iteri
      (fun c m ->
        if Array.length m = 1 && Scc.is_cyclic_component scc p c then incr count)
      scc.Scc.members;
    !count
  in
  {
    n_attrs = Problem.n_attrs p;
    n_csts = Problem.n_csts p;
    total_size = Problem.total_size p;
    n_simple;
    n_complex = Problem.n_csts p - n_simple;
    max_lhs =
      Array.fold_left
        (fun acc (c : _ Problem.cst) -> max acc (Array.length c.lhs))
        0 p.Problem.csts;
    acyclic = Problem.is_acyclic p;
    n_sccs = scc.Scc.n_components;
    largest_scc;
    n_cyclic_attrs;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>attributes: %d@,constraints: %d (simple %d, complex %d, max lhs %d)@,\
     total size S: %d@,acyclic: %b@,SCCs: %d (largest %d, cyclic attributes %d)@]"
    s.n_attrs s.n_csts s.n_simple s.n_complex s.max_lhs s.total_size s.acyclic
    s.n_sccs s.largest_scc s.n_cyclic_attrs
