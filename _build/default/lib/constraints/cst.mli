(** Classification constraints (Definition 2.1 of the paper).

    A constraint [lub{λ(A1), …, λ(An)} ⊒ X] lower-bounds the combined
    classification of the attributes [A1 … An] by [X], where [X] is either
    a concrete security level or the classification of another attribute.
    Constraints are polymorphic in the level type so the same representation
    serves every lattice implementation.

    Terminology from the paper:
    - a constraint is {e simple} when its left-hand side is a singleton, and
      {e complex} otherwise;
    - {e basic} constraints are simple with a level right-hand side;
    - {e association} constraints are complex with a level right-hand side;
    - {e inference} constraints have an attribute right-hand side. *)

type 'lvl rhs =
  | Level of 'lvl  (** an explicit security level *)
  | Attr of string  (** the classification of another attribute *)

type 'lvl t = private { lhs : string list; rhs : 'lvl rhs }

type error =
  | Empty_lhs
  | Duplicate_lhs of string  (** an attribute repeated in the left-hand side *)

val pp_error : Format.formatter -> error -> unit

(** [make ~lhs ~rhs] validates that [lhs] is non-empty and duplicate-free.
    A constraint whose [rhs] attribute also appears in [lhs] is representable
    (the paper calls it trivially satisfied); {!Problem.compile} drops such
    constraints. *)
val make : lhs:string list -> rhs:'lvl rhs -> ('lvl t, error) result

val make_exn : lhs:string list -> rhs:'lvl rhs -> 'lvl t

(** [simple attr rhs] is [make_exn ~lhs:[attr] ~rhs]. *)
val simple : string -> 'lvl rhs -> 'lvl t

val is_simple : 'lvl t -> bool
val is_complex : 'lvl t -> bool

(** [is_trivial c] — the rhs is an attribute that also occurs in the lhs. *)
val is_trivial : 'lvl t -> bool

(** Attributes mentioned (lhs plus attribute rhs), without duplicates, in
    first-mention order. *)
val attrs : 'lvl t -> string list

(** [size c] is [|lhs| + 1] — the constraint's contribution to the total
    constraint size [S] used in the complexity analysis. *)
val size : 'lvl t -> int

val map_level : ('a -> 'b) -> 'a t -> 'b t

val pp :
  (Format.formatter -> 'lvl -> unit) -> Format.formatter -> 'lvl t -> unit
