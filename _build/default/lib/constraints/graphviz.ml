let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ~pp_level (p : _ Problem.t) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph constraints {\n  rankdir=TB;\n";
  Array.iteri
    (fun i name -> out "  a%d [label=\"%s\" shape=circle];\n" i (escape name))
    p.Problem.attr_names;
  (* Deduplicated level nodes, named by their rendering. *)
  let levels = Hashtbl.create 8 in
  let level_node l =
    let s = Format.asprintf "%a" pp_level l in
    match Hashtbl.find_opt levels s with
    | Some id -> id
    | None ->
        let id = Printf.sprintf "l%d" (Hashtbl.length levels) in
        Hashtbl.add levels s id;
        out "  %s [label=\"%s\" shape=box];\n" id (escape s);
        id
  in
  Array.iteri
    (fun ci (c : _ Problem.cst) ->
      let target =
        match c.rhs with
        | Problem.Rattr b -> Printf.sprintf "a%d" b
        | Problem.Rlevel l -> level_node l
      in
      match c.lhs with
      | [| a |] -> out "  a%d -> %s;\n" a target
      | lhs ->
          (* A point node stands in for the hypernode. *)
          out "  h%d [shape=point width=0.08];\n" ci;
          Array.iter
            (fun a -> out "  a%d -> h%d [style=dashed arrowhead=none];\n" a ci)
            lhs;
          out "  h%d -> %s;\n" ci target)
    p.Problem.csts;
  out "}\n";
  Buffer.contents buf
