(** Structural statistics of a compiled problem, in the vocabulary of the
    paper's complexity analysis (§5). *)

type t = {
  n_attrs : int;  (** N_A *)
  n_csts : int;  (** N_C *)
  total_size : int;  (** S = Σ (|lhs| + 1) *)
  n_simple : int;
  n_complex : int;
  max_lhs : int;
  acyclic : bool;
  n_sccs : int;
  largest_scc : int;
  n_cyclic_attrs : int;  (** attributes involved in some constraint cycle *)
}

val compute : 'lvl Problem.t -> t
val pp : Format.formatter -> t -> unit
