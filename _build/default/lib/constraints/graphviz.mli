(** Graphviz rendering of classification constraint graphs, in the style of
    Fig. 2(a): circle nodes for attributes, box nodes for security levels,
    and a point node standing in for each hypernode (complex left-hand
    side), with dashed member edges. *)

val render :
  pp_level:(Format.formatter -> 'lvl -> unit) -> 'lvl Problem.t -> string
