(** Priority assignment — the first part of Algorithm 3.1 ([Main],
    [dfs_visit], [dfs_back_visit]).

    Interpreting every constraint [(lhs, rhs)] as edges from each attribute
    of [lhs] to [rhs], two DFS passes (a variant of Kosaraju's SCC
    algorithm, as in the paper) assign each attribute a priority such that:

    + every attribute has exactly one priority;
    + two attributes share a priority iff they are mutually reachable
      (belong to the same constraint cycle);
    + each attribute's priority is no greater than that of any attribute
      reachable from it.

    [Bigloop] then considers priorities in decreasing order, which realizes
    the backward (reverse topological) traversal of the constraint graph
    with whole cycles handled together. *)

type t = private {
  priority : int array;  (** priority per attribute id, [1 .. max_priority] *)
  sets : int array array;
      (** [sets.(p-1)] — the attributes of priority [p], in the order the
          backward DFS discovered them *)
  max_priority : int;
}

(** Deterministic: follows attribute-id order for roots and constraint-index
    order for edges, matching the paper's presentation. *)
val compute : 'lvl Problem.t -> t

(** [in_cycle t p a] — attribute [a] shares its priority with another
    attribute, or sits on a self-reaching cycle; equivalently its strongly
    connected component is nontrivial. *)
val in_cycle : t -> 'lvl Problem.t -> int -> bool
