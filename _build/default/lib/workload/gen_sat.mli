(** Random 3-SAT instances for the Thm. 6.1 experiment. *)

(** [random_3sat rng ~n_vars ~n_clauses] — each clause has 3 distinct
    variables with independent random polarities.
    @raise Invalid_argument if [n_vars < 3]. *)
val random_3sat : Prng.t -> n_vars:int -> n_clauses:int -> Minup_poset.Sat.cnf
