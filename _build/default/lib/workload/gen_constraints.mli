(** Random constraint-set generators with controlled shape.

    The Thm. 5.2 reproduction needs constraint sets whose structural
    parameters ([N_A], [N_C], [S], lhs sizes, cyclicity) are dialed in
    precisely:

    - {!acyclic} — a random DAG of constraints (the linear-time case);
    - {!single_scc} — one big strongly connected component (the quadratic
      worst case the paper's analysis is about);
    - {!mixed} — several SCC "islands" wired acyclically (the realistic
      shape: "cyclic constraints ... will typically include only a small
      portion of the input constraint set").

    Generators are polymorphic in the level type; [constants] supplies the
    pool of explicit levels used for basic constraints.  Attribute names
    are [A0, A1, …]; pass [attrs] (also returned) to
    {!Minup_constraints.Problem.compile} to pin ids. *)

type 'lvl spec = {
  n_attrs : int;
  n_simple : int;  (** simple attribute-to-attribute constraints *)
  n_complex : int;
  max_lhs : int;  (** ≥ 2; lhs sizes drawn uniformly from [2 .. max_lhs] *)
  n_constants : int;  (** basic constraints [A ⊒ l] *)
  constants : 'lvl list;  (** non-empty pool of levels *)
}

val attr_names : int -> string list

(** A constraint set whose graph is a DAG (every attribute-rhs edge goes
    from lower to higher attribute index). *)
val acyclic :
  Prng.t -> 'lvl spec -> string list * 'lvl Minup_constraints.Cst.t list

(** All [n_attrs] attributes in one SCC: a Hamiltonian backbone cycle of
    simple constraints plus random chords and complex constraints within
    the component, plus constant floors. *)
val single_scc :
  Prng.t -> 'lvl spec -> string list * 'lvl Minup_constraints.Cst.t list

(** [mixed rng spec ~n_islands ~island_size] — [n_islands] SCCs of
    [island_size] attributes each, embedded in an otherwise acyclic set. *)
val mixed :
  Prng.t ->
  'lvl spec ->
  n_islands:int ->
  island_size:int ->
  string list * 'lvl Minup_constraints.Cst.t list
