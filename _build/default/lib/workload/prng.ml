type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: nonpositive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let split t = { state = next t }
