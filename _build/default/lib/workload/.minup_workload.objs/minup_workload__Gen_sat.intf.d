lib/workload/gen_sat.mli: Minup_poset Prng
