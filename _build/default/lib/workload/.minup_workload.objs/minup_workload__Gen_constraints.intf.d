lib/workload/gen_constraints.mli: Minup_constraints Prng
