lib/workload/gen_lattice.mli: Explicit Minup_lattice Prng
