lib/workload/gen_constraints.ml: Cst Fun List Minup_constraints Printf Prng
