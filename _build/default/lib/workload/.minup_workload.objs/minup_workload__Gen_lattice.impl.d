lib/workload/gen_lattice.ml: Array Explicit Int List Minup_lattice Printf Prng Set String
