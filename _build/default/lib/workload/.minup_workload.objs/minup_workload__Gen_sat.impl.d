lib/workload/gen_sat.ml: List Minup_poset Prng
