lib/workload/prng.mli:
