open Minup_constraints

type 'lvl spec = {
  n_attrs : int;
  n_simple : int;
  n_complex : int;
  max_lhs : int;
  n_constants : int;
  constants : 'lvl list;
}

let attr_names n = List.init n (Printf.sprintf "A%d")

let check spec =
  if spec.n_attrs < 2 then invalid_arg "Gen_constraints: need at least 2 attributes";
  if spec.max_lhs < 2 then invalid_arg "Gen_constraints: max_lhs must be >= 2";
  if spec.constants = [] then invalid_arg "Gen_constraints: empty constant pool"

let name i = Printf.sprintf "A%d" i

let constant_floors rng spec =
  List.init spec.n_constants (fun _ ->
      Cst.simple (name (Prng.int rng spec.n_attrs)) (Cst.Level (Prng.pick rng spec.constants)))

(* Distinct indices in [lo, hi), at most hi-lo of them. *)
let distinct rng k lo hi =
  Prng.sample rng k (List.init (hi - lo) (fun i -> lo + i))

let acyclic rng spec =
  check spec;
  let n = spec.n_attrs in
  let simple =
    List.init spec.n_simple (fun _ ->
        (* Edge from lower index (lhs) to strictly higher index (rhs). *)
        let src = Prng.int rng (n - 1) in
        let dst = src + 1 + Prng.int rng (n - src - 1) in
        Cst.simple (name src) (Cst.Attr (name dst)))
  in
  let complex =
    List.init spec.n_complex (fun _ ->
        let dst = 1 + Prng.int rng (n - 1) in
        let k = min dst (2 + Prng.int rng (spec.max_lhs - 1)) in
        let lhs = List.map name (distinct rng k 0 dst) in
        Cst.make_exn ~lhs ~rhs:(Cst.Attr (name dst)))
  in
  (attr_names n, constant_floors rng spec @ simple @ complex)

let scc_over rng spec ~lo ~hi =
  (* Backbone Hamiltonian cycle over indices [lo, hi). *)
  let backbone =
    List.init (hi - lo) (fun i ->
        let a = lo + i and b = lo + ((i + 1) mod (hi - lo)) in
        Cst.simple (name a) (Cst.Attr (name b)))
  in
  let chord _ =
    let a = lo + Prng.int rng (hi - lo) in
    let b = lo + Prng.int rng (hi - lo) in
    if a = b then None else Some (Cst.simple (name a) (Cst.Attr (name b)))
  in
  let simple = List.filter_map chord (List.init spec.n_simple Fun.id) in
  let complex =
    List.init spec.n_complex (fun _ ->
        let dst = lo + Prng.int rng (hi - lo) in
        let pool = List.filter (fun i -> i <> dst) (List.init (hi - lo) (fun i -> lo + i)) in
        let k = min (List.length pool) (2 + Prng.int rng (spec.max_lhs - 1)) in
        let lhs = List.map name (Prng.sample rng k pool) in
        Cst.make_exn ~lhs ~rhs:(Cst.Attr (name dst)))
  in
  backbone @ simple @ complex

let single_scc rng spec =
  check spec;
  ( attr_names spec.n_attrs,
    constant_floors rng spec @ scc_over rng spec ~lo:0 ~hi:spec.n_attrs )

let mixed rng spec ~n_islands ~island_size =
  check spec;
  if n_islands * island_size > spec.n_attrs then
    invalid_arg "Gen_constraints.mixed: islands exceed attribute count";
  let per_island =
    {
      spec with
      n_simple = spec.n_simple / max 1 n_islands;
      n_complex = spec.n_complex / max 1 n_islands;
      n_constants = 0;
    }
  in
  let islands =
    List.concat
      (List.init n_islands (fun i ->
           scc_over rng per_island ~lo:(i * island_size) ~hi:((i + 1) * island_size)))
  in
  (* Acyclic wiring: edges from any attribute into a strictly later island
     or into the attributes beyond the islands. *)
  let n = spec.n_attrs in
  let island_of i = if i < n_islands * island_size then i / island_size else n_islands in
  let wires =
    List.filter_map
      (fun _ ->
        let a = Prng.int rng n and b = Prng.int rng n in
        if island_of a < island_of b then
          Some (Cst.simple (name a) (Cst.Attr (name b)))
        else None)
      (List.init spec.n_simple Fun.id)
  in
  (attr_names n, constant_floors rng spec @ islands @ wires)
