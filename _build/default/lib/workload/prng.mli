(** Deterministic pseudo-random numbers (splitmix64).

    Workloads and property tests never touch the global [Random] state:
    every generator takes an explicit [Prng.t], so a (seed, parameters)
    pair identifies a workload exactly — benchmark series are replayable
    and test failures reproducible. *)

type t

val create : int -> t

(** [int t bound] — uniform in [\[0, bound)].  @raise Invalid_argument on
    non-positive bound. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [\[0, 1)]. *)
val float : t -> float

(** @raise Invalid_argument on an empty list. *)
val pick : t -> 'a list -> 'a

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [sample t k xs] — [k] distinct elements of [xs] (all of [xs] if
    [k ≥ length]). *)
val sample : t -> int -> 'a list -> 'a list

(** An independent stream derived from this one. *)
val split : t -> t
