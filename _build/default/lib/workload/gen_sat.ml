let random_3sat rng ~n_vars ~n_clauses =
  if n_vars < 3 then invalid_arg "Gen_sat.random_3sat: n_vars < 3";
  let clause () =
    let vars = Prng.sample rng 3 (List.init n_vars (fun i -> i + 1)) in
    List.map (fun v -> if Prng.bool rng then v else -v) vars
  in
  Minup_poset.Sat.{ n_vars; clauses = List.init n_clauses (fun _ -> clause ()) }
