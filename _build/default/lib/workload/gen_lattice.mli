(** Random and parametric lattice generators.

    Sources of guaranteed-correct lattices of varied shape:

    - {!chain_product}: products of chains, materialized explicitly —
      height and branching controlled directly;
    - {!diamond_stack}: a tower of diamonds (height [2n], branching 2);
    - {!random_closure}: the ∪/∩-closure of random generator subsets of a
      finite universe — a random {e sublattice of a powerset}, which is
      always a lattice and produces irregular shapes (every finite
      distributive lattice arises this way).

    All results are validated {!Minup_lattice.Explicit} values. *)

open Minup_lattice

(** [chain_product heights] — the product of chains with the given numbers
    of {e edges} (so [chain_product [1;1]] is the 4-element diamond).
    @raise Invalid_argument if the size exceeds [max_size] (default
    [20_000]) or [heights] is empty. *)
val chain_product : ?max_size:int -> int list -> Explicit.t

(** [diamond_stack n] — [n ≥ 1] diamonds glued top-to-bottom. *)
val diamond_stack : int -> Explicit.t

(** [random_closure rng ~universe ~n_generators ~max_size] — close random
    generator sets under union and intersection (⊥ = ∅ and ⊤ = universe
    added).  [None] if the closure exceeds [max_size]. *)
val random_closure :
  Prng.t -> universe:int -> n_generators:int -> max_size:int -> Explicit.t option

(** Keep drawing [random_closure] until one fits; gives up after 100
    attempts.  @raise Failure then. *)
val random_closure_exn :
  Prng.t -> universe:int -> n_generators:int -> max_size:int -> Explicit.t
