open Minup_lattice

let chain_product ?(max_size = 20_000) heights =
  if heights = [] then invalid_arg "Gen_lattice.chain_product: empty";
  if List.exists (fun h -> h < 0) heights then
    invalid_arg "Gen_lattice.chain_product: negative height";
  let size =
    List.fold_left
      (fun acc h ->
        let k = h + 1 in
        if acc > max_size / k then max_size + 1 else acc * k)
      1 heights
  in
  if size > max_size then invalid_arg "Gen_lattice.chain_product: too large";
  let dims = Array.of_list heights in
  let k = Array.length dims in
  (* Enumerate coordinate vectors in mixed-radix order. *)
  let name coords =
    String.concat "." (Array.to_list (Array.map string_of_int coords))
  in
  let names = ref [] and order = ref [] in
  let coords = Array.make k 0 in
  let continue = ref true in
  while !continue do
    names := name coords :: !names;
    for i = 0 to k - 1 do
      if coords.(i) < dims.(i) then begin
        let above = Array.copy coords in
        above.(i) <- above.(i) + 1;
        order := (name coords, name above) :: !order
      end
    done;
    (* Increment. *)
    let rec inc i =
      if i = k then continue := false
      else if coords.(i) < dims.(i) then coords.(i) <- coords.(i) + 1
      else begin
        coords.(i) <- 0;
        inc (i + 1)
      end
    in
    inc 0
  done;
  Explicit.create_exn ~names:(List.rev !names) ~order:!order

let diamond_stack n =
  if n < 1 then invalid_arg "Gen_lattice.diamond_stack: n < 1";
  let names = ref [] and order = ref [] in
  for i = 0 to n - 1 do
    let bot = Printf.sprintf "b%d" i
    and left = Printf.sprintf "l%d" i
    and right = Printf.sprintf "r%d" i
    and top = Printf.sprintf "b%d" (i + 1) in
    if i = 0 then names := [ bot ];
    names := top :: right :: left :: !names;
    order :=
      (bot, left) :: (bot, right) :: (left, top) :: (right, top) :: !order
  done;
  Explicit.create_exn ~names:(List.rev !names) ~order:!order

module IS = Set.Make (Int)

let random_closure rng ~universe ~n_generators ~max_size =
  if universe < 1 || universe > 30 then
    invalid_arg "Gen_lattice.random_closure: universe must be in 1..30";
  let full = (1 lsl universe) - 1 in
  let random_subset () =
    let s = ref 0 in
    for i = 0 to universe - 1 do
      if Prng.bool rng then s := !s lor (1 lsl i)
    done;
    !s
  in
  let gens = List.init n_generators (fun _ -> random_subset ()) in
  let family = ref (IS.of_list (0 :: full :: gens)) in
  (* Close under pairwise union and intersection. *)
  let exception Too_big in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      let elems = IS.elements !family in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun c ->
                  if not (IS.mem c !family) then begin
                    family := IS.add c !family;
                    changed := true;
                    if IS.cardinal !family > max_size then raise Too_big
                  end)
                [ a lor b; a land b ])
            elems)
        elems
    done;
    let elems = IS.elements !family in
    let name m = Printf.sprintf "s%x" m in
    let order =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if a <> b && a land b = a then Some (name a, name b) else None)
            elems)
        elems
    in
    Some (Explicit.create_exn ~names:(List.map name elems) ~order)
  with Too_big -> None

let random_closure_exn rng ~universe ~n_generators ~max_size =
  let rec go attempts =
    if attempts = 0 then failwith "Gen_lattice.random_closure_exn: no fit"
    else
      match random_closure rng ~universe ~n_generators ~max_size with
      | Some l -> l
      | None -> go (attempts - 1)
  in
  go 100
