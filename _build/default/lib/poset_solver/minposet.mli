(** The {e min-poset} problem (§6, Thm. 6.1).

    Like min-lattice-assignment, but the security levels form an arbitrary
    finite poset.  Determining a (minimal) satisfying assignment is
    NP-complete; this module provides the backtracking solver used on the
    reduction instances, plus exhaustive enumeration for small cases.

    Constraint forms follow §6 and the reduction in the appendix:
    [A ⊒ l], [A ⊑ l] (upper bound, used by the reduction's [C_i ≥ wc_i]),
    [A ⊒ A'], and [lub{A1,…,Ak} ⊒ A].  Because least upper bounds need not
    exist in a poset, the last form is interpreted as: the common upper
    bounds of [λ(A1) … λ(Ak)] are nonempty and all of them dominate
    [λ(A)] — which coincides with [lub ⊒ λ(A)] whenever the lub exists. *)

open Minup_lattice

type cst =
  | Geq_elt of string * Poset.elt  (** [A ⊒ l] *)
  | Leq_elt of string * Poset.elt  (** [A ⊑ l] *)
  | Geq_attr of string * string  (** [A ⊒ A'] *)
  | Lub_geq of string list * string  (** [lub{A1,…,Ak} ⊒ A] *)

type problem

type error = Unknown_attr of string | Empty_lub

val pp_error : Format.formatter -> error -> unit

(** [compile poset attrs csts] — every attribute mentioned must appear in
    [attrs]. *)
val compile : Poset.t -> string list -> cst list -> (problem, error) result

val compile_exn : Poset.t -> string list -> cst list -> problem
val n_attrs : problem -> int
val attr_name : problem -> int -> string
val attr_id_exn : problem -> string -> int

(** [satisfies problem assignment] with [assignment.(a)] the poset element
    of attribute id [a]. *)
val satisfies : problem -> Poset.elt array -> bool

(** Backtracking search for any satisfying assignment.  Exponential in the
    worst case (that is Thm. 6.1's point); [decisions] counts branch
    points. *)
val satisfiable : problem -> Poset.elt array option

val satisfiable_count : problem -> Poset.elt array option * int

(** Greedy pointwise descent from a satisfying assignment: repeatedly
    replace some attribute's element by a strictly lower one while the
    assignment still satisfies the constraints.  The result is locally
    minimal (no single-attribute lowering applies). *)
val minimize : problem -> Poset.elt array -> Poset.elt array

(** Exhaustive enumeration of all satisfying assignments
    ([Error `Too_large] beyond [cap], default [2_000_000]). *)
val all_solutions :
  ?cap:int -> problem -> (Poset.elt array list, [ `Too_large ]) result

(** The pointwise-minimal satisfying assignments. *)
val minimal_solutions :
  ?cap:int -> problem -> (Poset.elt array list, [ `Too_large ]) result
