type literal = int
type clause = literal list
type cnf = { n_vars : int; clauses : clause list }
type error = Zero_literal | Var_out_of_range of int

let pp_error ppf = function
  | Zero_literal -> Format.fprintf ppf "literal 0 is not allowed"
  | Var_out_of_range v -> Format.fprintf ppf "variable %d out of range" v

let check cnf =
  let bad = ref None in
  List.iter
    (List.iter (fun l ->
         if !bad = None then
           if l = 0 then bad := Some Zero_literal
           else if abs l > cnf.n_vars then bad := Some (Var_out_of_range (abs l))))
    cnf.clauses;
  match !bad with None -> Ok () | Some e -> Error e

let satisfies cnf assignment =
  List.for_all
    (List.exists (fun l ->
         if l > 0 then assignment.(l) else not assignment.(-l)))
    cnf.clauses

(* Assignment state: 0 unassigned, 1 true, -1 false. *)
let value state l =
  let v = state.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

let solve_count cnf =
  (match check cnf with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Sat.solve: %a" pp_error e));
  let decisions = ref 0 in
  let state = Array.make (cnf.n_vars + 1) 0 in
  (* Returns the simplified clause list, or None on conflict. *)
  let rec simplify acc = function
    | [] -> Some (List.rev acc)
    | clause :: rest -> (
        let rec reduce kept = function
          | [] -> if kept = [] then `Conflict else `Clause kept
          | l :: ls -> (
              match value state l with
              | 1 -> `True
              | -1 -> reduce kept ls
              | _ -> reduce (l :: kept) ls)
        in
        match reduce [] clause with
        | `True -> simplify acc rest
        | `Conflict -> None
        | `Clause kept -> simplify (kept :: acc) rest)
  in
  let rec propagate clauses =
    match simplify [] clauses with
    | None -> None
    | Some cs -> (
        match List.find_opt (fun c -> List.length c = 1) cs with
        | Some [ l ] ->
            state.(abs l) <- (if l > 0 then 1 else -1);
            propagate cs
        | Some _ -> assert false
        | None -> Some cs)
  in
  let pure_literals clauses =
    let pos = Hashtbl.create 16 and neg = Hashtbl.create 16 in
    List.iter
      (List.iter (fun l ->
           if l > 0 then Hashtbl.replace pos l ()
           else Hashtbl.replace neg (-l) ()))
      clauses;
    Hashtbl.fold
      (fun v () acc -> if Hashtbl.mem neg v then acc else v :: acc)
      pos []
    @ Hashtbl.fold
        (fun v () acc -> if Hashtbl.mem pos v then acc else -v :: acc)
        neg []
  in
  let rec dpll clauses =
    match propagate clauses with
    | None -> false
    | Some [] -> true
    | Some cs -> (
        match pure_literals cs with
        | l :: _ ->
            state.(abs l) <- (if l > 0 then 1 else -1);
            dpll cs
        | [] -> (
            (* Branch on the first literal of the first clause. *)
            match cs with
            | (l :: _) :: _ ->
                incr decisions;
                let saved = Array.copy state in
                state.(abs l) <- (if l > 0 then 1 else -1);
                if dpll cs then true
                else begin
                  Array.blit saved 0 state 0 (Array.length state);
                  state.(abs l) <- (if l > 0 then -1 else 1);
                  dpll cs
                end
            | _ -> assert false))
  in
  if dpll cnf.clauses then begin
    let assignment = Array.make (cnf.n_vars + 1) false in
    for v = 1 to cnf.n_vars do
      assignment.(v) <- state.(v) = 1
    done;
    (Some assignment, !decisions)
  end
  else (None, !decisions)

let solve cnf = fst (solve_count cnf)
