open Minup_lattice

type cst =
  | Geq_elt of string * Poset.elt
  | Leq_elt of string * Poset.elt
  | Geq_attr of string * string
  | Lub_geq of string list * string

type ccst =
  | CGeq_attr of int * int
  | CLub_geq of int array * int

type problem = {
  poset : Poset.t;
  attr_names : string array;
  attr_index : (string, int) Hashtbl.t;
  domains : Poset.elt list array;
      (* per attribute: elements compatible with its unary constraints,
         in ascending height order (low elements tried first) *)
  csts : ccst array;
  csts_of : int list array; (* constraint indices touching each attribute *)
}

type error = Unknown_attr of string | Empty_lub

let pp_error ppf = function
  | Unknown_attr a -> Format.fprintf ppf "unknown attribute %S" a
  | Empty_lub -> Format.fprintf ppf "lub constraint with empty left-hand side"

exception Err of error

let compile poset attrs csts =
  try
    let attr_names = Array.of_list attrs in
    let n = Array.length attr_names in
    let attr_index = Hashtbl.create n in
    Array.iteri (fun i a -> Hashtbl.add attr_index a i) attr_names;
    let id a =
      match Hashtbl.find_opt attr_index a with
      | Some i -> i
      | None -> raise (Err (Unknown_attr a))
    in
    (* Split unary constraints into per-attribute domain filters. *)
    let lower = Array.make n [] and upper = Array.make n [] in
    let compiled =
      List.filter_map
        (fun c ->
          match c with
          | Geq_elt (a, l) ->
              lower.(id a) <- l :: lower.(id a);
              None
          | Leq_elt (a, l) ->
              upper.(id a) <- l :: upper.(id a);
              None
          | Geq_attr (a, a') -> Some (CGeq_attr (id a, id a'))
          | Lub_geq ([], _) -> raise (Err Empty_lub)
          | Lub_geq (lhs, a) ->
              Some (CLub_geq (Array.of_list (List.map id lhs), id a)))
        csts
    in
    let heights =
      (* length of the longest chain below each element, for the
         low-first value ordering *)
      let h = Array.make (Poset.cardinal poset) 0 in
      List.iter
        (fun e ->
          h.(e) <-
            List.fold_left
              (fun acc c -> max acc (1 + h.(c)))
              0 (Poset.covers_below poset e))
        (Poset.all poset);
      h
    in
    let domains =
      Array.init n (fun a ->
          Poset.all poset
          |> List.filter (fun e ->
                 List.for_all (fun l -> Poset.leq poset l e) lower.(a)
                 && List.for_all (fun l -> Poset.leq poset e l) upper.(a))
          |> List.stable_sort (fun e1 e2 -> compare heights.(e1) heights.(e2)))
    in
    let csts = Array.of_list compiled in
    (* Arc consistency over the binary order constraints: for [a ⊒ b],
       an element is feasible for [a] only if it dominates some feasible
       element of [b], and dually.  Iterate to a fixpoint; this keeps the
       backtracking search on reduction instances tractable without
       affecting the solution set. *)
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (function
          | CGeq_attr (a, b) ->
              let da = domains.(a) and db = domains.(b) in
              let da' =
                List.filter
                  (fun ea -> List.exists (fun eb -> Poset.leq poset eb ea) db)
                  da
              in
              let db' =
                List.filter
                  (fun eb -> List.exists (fun ea -> Poset.leq poset eb ea) da)
                  db
              in
              if List.length da' <> List.length da then begin
                domains.(a) <- da';
                changed := true
              end;
              if List.length db' <> List.length db then begin
                domains.(b) <- db';
                changed := true
              end
          | CLub_geq _ -> ())
        csts
    done;
    let csts_of = Array.make n [] in
    Array.iteri
      (fun ci c ->
        let touch a = csts_of.(a) <- ci :: csts_of.(a) in
        match c with
        | CGeq_attr (a, b) ->
            touch a;
            touch b
        | CLub_geq (lhs, b) ->
            Array.iter touch lhs;
            touch b)
      csts;
    Ok { poset; attr_names; attr_index; domains; csts; csts_of }
  with Err e -> Error e

let compile_exn poset attrs csts =
  match compile poset attrs csts with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "Minposet.compile: %a" pp_error e)

let n_attrs p = Array.length p.attr_names
let attr_name p a = p.attr_names.(a)

let attr_id_exn p a =
  match Hashtbl.find_opt p.attr_index a with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Minposet.attr_id_exn: unknown %S" a)

(* Lub_geq semantics: common upper bounds exist and all dominate λ(A). *)
let lub_geq_holds poset lhs_elts target =
  match Poset.upper_bounds poset lhs_elts with
  | [] -> false
  | ubs -> List.for_all (fun u -> Poset.leq poset target u) ubs

let cst_holds p assignment = function
  | CGeq_attr (a, b) -> Poset.leq p.poset assignment.(b) assignment.(a)
  | CLub_geq (lhs, b) ->
      lub_geq_holds p.poset
        (Array.to_list (Array.map (fun a -> assignment.(a)) lhs))
        assignment.(b)

let satisfies p assignment =
  Array.for_all (cst_holds p assignment) p.csts
  && Array.for_all2
       (fun dom e -> List.mem e dom)
       p.domains
       (Array.map Fun.id assignment)

(* Check only constraints all of whose attributes are assigned. *)
let cst_checkable assigned = function
  | CGeq_attr (a, b) -> assigned.(a) && assigned.(b)
  | CLub_geq (lhs, b) -> assigned.(b) && Array.for_all (fun a -> assigned.(a)) lhs

let satisfiable_count p =
  let n = n_attrs p in
  let assignment = Array.make n (-1) in
  let assigned = Array.make n false in
  let decisions = ref 0 in
  (* Smallest domains first: fail early on the most constrained attributes. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (List.length p.domains.(a)) (List.length p.domains.(b)))
    order;
  let rec go i =
    if i = n then true
    else begin
      let a = order.(i) in
      let rec try_values = function
        | [] -> false
        | e :: rest ->
            incr decisions;
            assignment.(a) <- e;
            assigned.(a) <- true;
            let ok =
              List.for_all
                (fun ci ->
                  let c = p.csts.(ci) in
                  (not (cst_checkable assigned c)) || cst_holds p assignment c)
                p.csts_of.(a)
            in
            if ok && go (i + 1) then true
            else begin
              assigned.(a) <- false;
              try_values rest
            end
      in
      try_values p.domains.(a)
    end
  in
  if go 0 then (Some (Array.copy assignment), !decisions) else (None, !decisions)

let satisfiable p = fst (satisfiable_count p)

let minimize p assignment =
  let a = Array.copy assignment in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i e ->
        let lower_candidates =
          List.filter
            (fun e' -> e' <> e && Poset.leq p.poset e' e)
            p.domains.(i)
        in
        match
          List.find_opt
            (fun e' ->
              a.(i) <- e';
              let ok = Array.for_all (cst_holds p a) p.csts in
              a.(i) <- e;
              ok)
            lower_candidates
        with
        | Some e' ->
            a.(i) <- e';
            changed := true
        | None -> ())
      (Array.copy a)
  done;
  a

let all_solutions ?(cap = 2_000_000) p =
  let n = n_attrs p in
  let space =
    Array.fold_left
      (fun acc d ->
        match acc with
        | None -> None
        | Some s ->
            let k = List.length d in
            if k = 0 then Some 0 else if s > cap / k then None else Some (s * k))
      (Some 1) p.domains
  in
  match space with
  | None -> Error `Too_large
  | Some _ ->
      let out = ref [] in
      let assignment = Array.make n (-1) in
      let rec go a =
        if a = n then begin
          if Array.for_all (cst_holds p assignment) p.csts then
            out := Array.copy assignment :: !out
        end
        else
          List.iter
            (fun e ->
              assignment.(a) <- e;
              go (a + 1))
            p.domains.(a)
      in
      go 0;
      Ok (List.rev !out)

let minimal_solutions ?cap p =
  match all_solutions ?cap p with
  | Error _ as e -> e
  | Ok sols ->
      let dominates x y =
        Array.for_all2 (fun xi yi -> Poset.leq p.poset yi xi) x y
      in
      Ok
        (List.filter
           (fun s ->
             not (List.exists (fun s' -> dominates s s' && s' <> s) sols))
           sols)
