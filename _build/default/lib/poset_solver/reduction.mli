(** The Fig. 4 reduction: 3-SAT ≤p min-poset (proof of Thm. 6.1).

    For a CNF formula, the constructed poset has height one and contains,
    per clause [i], an element [Ci] plus one element [Ci:t] for each truth
    assignment [t] of the clause's variables that satisfies the clause
    (≤ 7 for a 3-clause), and per variable [j] three elements [Pj], [Pj+],
    [Pj-].  Order: [Pj± ≥ Pj], [Ci ≥ Ci:t], and [Pj+ ≥ Ci:t] (resp.
    [Pj- ≥ Ci:t]) when [t] makes [j] true (resp. false).

    Attributes [wc_i], [wp_j], [wu_j] carry the constraints
    [Ci ≥ wc_i], [wp_j ≥ wc_i] (for [j] in clause [i]), [wu_j ≥ wp_j] and
    [wu_j ≥ Pj].  The resulting min-poset instance is solvable iff the
    formula is satisfiable, and solutions decode to satisfying
    assignments. *)

open Minup_lattice

type t = private {
  poset : Poset.t;
  problem : Minposet.problem;
  cnf : Sat.cnf;
  clause_vars : int list array;  (** distinct variables per clause *)
}

(** @raise Invalid_argument on an empty clause (trivially unsatisfiable —
    no reduction needed) or an ill-formed formula. *)
val build : Sat.cnf -> t

(** Read a truth assignment off a satisfying min-poset assignment (via the
    [wu_j] attributes); index 0 unused. *)
val decode : t -> Poset.elt array -> bool array

(** Construct the min-poset solution corresponding to a satisfying truth
    assignment. *)
val encode : t -> bool array -> Poset.elt array
