lib/poset_solver/minposet.ml: Array Format Fun Hashtbl List Minup_lattice Poset Printf
