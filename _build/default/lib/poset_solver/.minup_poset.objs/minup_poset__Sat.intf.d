lib/poset_solver/sat.mli: Format
