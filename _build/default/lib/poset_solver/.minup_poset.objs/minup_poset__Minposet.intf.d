lib/poset_solver/minposet.mli: Format Minup_lattice Poset
