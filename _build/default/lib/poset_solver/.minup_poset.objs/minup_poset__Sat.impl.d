lib/poset_solver/sat.ml: Array Format Hashtbl List
