lib/poset_solver/reduction.mli: Minposet Minup_lattice Poset Sat
