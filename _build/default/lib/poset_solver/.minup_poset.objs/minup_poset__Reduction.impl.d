lib/poset_solver/reduction.ml: Array Format List Minposet Minup_lattice Poset Printf Sat String
