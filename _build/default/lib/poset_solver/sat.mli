(** Propositional satisfiability (DPLL).

    Substrate for the NP-completeness experiment (Thm. 6.1): the Fig. 4
    reduction maps 3-SAT instances to {e min-poset} problems, and this
    solver provides the ground truth for the equivalence check.

    Literals are nonzero integers: [v] is the positive literal of variable
    [v ≥ 1], [-v] its negation. *)

type literal = int
type clause = literal list

type cnf = { n_vars : int; clauses : clause list }

type error = Zero_literal | Var_out_of_range of int

val pp_error : Format.formatter -> error -> unit

(** Validate literal ranges. *)
val check : cnf -> (unit, error) result

(** [satisfies cnf assignment] with [assignment.(v)] the value of variable
    [v] (index 0 unused). *)
val satisfies : cnf -> bool array -> bool

(** DPLL with unit propagation and pure-literal elimination.  Returns a
    satisfying assignment or [None].  @raise Invalid_argument on an
    ill-formed formula. *)
val solve : cnf -> bool array option

(** Number of DPLL branching decisions made by the last [solve] call is not
    tracked globally; [solve_count] returns the result together with the
    decision count, for benchmarks. *)
val solve_count : cnf -> bool array option * int
