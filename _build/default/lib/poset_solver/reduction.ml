open Minup_lattice

type t = {
  poset : Poset.t;
  problem : Minposet.problem;
  cnf : Sat.cnf;
  clause_vars : int list array;
}

let distinct_vars clause =
  List.sort_uniq compare (List.map abs clause)

(* All assignments of [vars] (as (var, value) lists) satisfying [clause]. *)
let satisfying_assignments clause vars =
  let k = List.length vars in
  let rec all = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = all rest in
        List.concat_map (fun t -> [ (v, true) :: t; (v, false) :: t ]) tails
  in
  ignore k;
  List.filter
    (fun t ->
      List.exists
        (fun l ->
          let v = abs l in
          let value = List.assoc v t in
          if l > 0 then value else not value)
        clause)
    (all vars)

let clause_elt_name i t =
  Printf.sprintf "C%d:%s" i
    (String.concat "."
       (List.map (fun (v, b) -> Printf.sprintf "P%d%c" v (if b then '+' else '-')) t))

let build cnf =
  (match Sat.check cnf with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Reduction.build: %a" Sat.pp_error e));
  if List.exists (fun c -> c = []) cnf.clauses then
    invalid_arg "Reduction.build: empty clause";
  let clauses = Array.of_list cnf.clauses in
  let clause_vars = Array.map distinct_vars clauses in
  let names = ref [] and order = ref [] in
  let add_name n = names := n :: !names in
  for j = 1 to cnf.n_vars do
    add_name (Printf.sprintf "P%d" j);
    add_name (Printf.sprintf "P%d+" j);
    add_name (Printf.sprintf "P%d-" j);
    order := (Printf.sprintf "P%d" j, Printf.sprintf "P%d+" j) :: !order;
    order := (Printf.sprintf "P%d" j, Printf.sprintf "P%d-" j) :: !order
  done;
  Array.iteri
    (fun i clause ->
      let ci = Printf.sprintf "C%d" i in
      add_name ci;
      List.iter
        (fun t ->
          let elt = clause_elt_name i t in
          add_name elt;
          order := (elt, ci) :: !order;
          List.iter
            (fun (v, b) ->
              let p = Printf.sprintf "P%d%c" v (if b then '+' else '-') in
              order := (elt, p) :: !order)
            t)
        (satisfying_assignments clause clause_vars.(i)))
    clauses;
  let poset = Poset.create_exn ~names:(List.rev !names) ~order:!order in
  let attrs =
    List.init (Array.length clauses) (Printf.sprintf "wc%d")
    @ List.init cnf.n_vars (fun j -> Printf.sprintf "wp%d" (j + 1))
    @ List.init cnf.n_vars (fun j -> Printf.sprintf "wu%d" (j + 1))
  in
  let elt = Poset.of_name_exn poset in
  let csts =
    List.concat
      (List.init (Array.length clauses) (fun i ->
           Minposet.Leq_elt (Printf.sprintf "wc%d" i, elt (Printf.sprintf "C%d" i))
           :: List.map
                (fun v ->
                  Minposet.Geq_attr
                    (Printf.sprintf "wp%d" v, Printf.sprintf "wc%d" i))
                clause_vars.(i)))
    @ List.concat
        (List.init cnf.n_vars (fun j ->
             let j = j + 1 in
             [
               Minposet.Geq_attr
                 (Printf.sprintf "wu%d" j, Printf.sprintf "wp%d" j);
               Minposet.Geq_elt
                 (Printf.sprintf "wu%d" j, elt (Printf.sprintf "P%d" j));
             ]))
  in
  let problem = Minposet.compile_exn poset attrs csts in
  { poset; problem; cnf; clause_vars }

let decode t assignment =
  let out = Array.make (t.cnf.n_vars + 1) true in
  for j = 1 to t.cnf.n_vars do
    let wu = Minposet.attr_id_exn t.problem (Printf.sprintf "wu%d" j) in
    let minus = Poset.of_name_exn t.poset (Printf.sprintf "P%d-" j) in
    if assignment.(wu) = minus then out.(j) <- false
  done;
  out

let encode t truth =
  let n = Minposet.n_attrs t.problem in
  let out = Array.make n (-1) in
  let set name e = out.(Minposet.attr_id_exn t.problem name) <- e in
  for j = 1 to t.cnf.n_vars do
    let p = Printf.sprintf "P%d%c" j (if truth.(j) then '+' else '-') in
    let e = Poset.of_name_exn t.poset p in
    set (Printf.sprintf "wp%d" j) e;
    set (Printf.sprintf "wu%d" j) e
  done;
  Array.iteri
    (fun i vars ->
      let tassign = List.map (fun v -> (v, truth.(v))) vars in
      set
        (Printf.sprintf "wc%d" i)
        (Poset.of_name_exn t.poset (clause_elt_name i tassign)))
    (Array.of_seq (Array.to_seq t.clause_vars));
  out
