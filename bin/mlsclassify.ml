(* mlsclassify — command-line front end for the minimal-upgrading
   classifier.

     mlsclassify solve  -l lattice.lat -c policy.cst [--bound a=LVL] [--events]
     mlsclassify batch  -l lattice.lat --jobs 4 p1.cst p2.cst ...
     mlsclassify serve  [--max-sessions N] [--deadline-ms MS] [--max-steps N]
     mlsclassify stats  -c policy.cst
     mlsclassify dot    -l lattice.lat
     mlsclassify demo

   solve and batch accept the observability flags --trace FILE (Chrome
   trace-event JSON, loadable in Perfetto), --metrics (summary on stderr)
   and --metrics-json FILE.  Lattice files use the Lattice_file format;
   constraint files the Parse format (see the library documentation or
   README). *)

open Minup_lattice
module Solver = Minup_core.Solver.Make (Explicit)
module Engine = Minup_core.Engine.Make (Explicit)
module Parse = Minup_constraints.Parse
module Instr = Minup_core.Instr
module Wire = Minup_core.Wire
module Trace = Minup_obs.Trace
module Metrics = Minup_obs.Metrics
module Obs_clock = Minup_obs.Clock
module Json = Minup_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

let load_lattice path =
  match Lattice_file.parse (read_file path) with
  | Ok l -> Ok l
  | Error e -> Error (Format.asprintf "%s: %a" path Lattice_file.pp_error e)

let load_policy lattice path =
  match
    Parse.parse_resolve
      ~level_of_string:(Explicit.level_of_string lattice)
      (read_file path)
  with
  | Ok r -> Ok r
  | Error e -> Error (Format.asprintf "%s: %a" path Parse.pp_error e)

let print_assignment lattice assignment =
  List.iter
    (fun (attr, l) ->
      Printf.printf "%-24s %s\n" attr (Explicit.level_to_string lattice l))
    assignment

(* --- observability plumbing ----------------------------------------- *)

type obs = {
  trace_file : string option;
  metrics : bool;
  metrics_json : string option;
}

(* [with_obs o f] runs [f] (which returns its result and the run's
   aggregate counters) with tracing/metrics enabled as requested, then
   writes the configured sinks.  The counters are absorbed into the
   registry so every --metrics/--metrics-json report carries the instr/*
   counters next to the phase histograms.

   The sinks are flushed on the exception path too: a raising solve or a
   SIGINT ([Sys.Break], see [catch_break] in main) first unwinds the open
   trace spans (so the written trace keeps its B/E nesting) and then
   writes whatever was recorded up to the interruption — a trace of a run
   that died used to vanish entirely, which is precisely when it is most
   wanted.  An interrupt exits 130 after flushing. *)
let with_obs o f =
  (* A bad sink path is a user error, not an internal one. *)
  let write_or_die write path =
    match write path with
    | () -> ()
    | exception Sys_error msg ->
        prerr_endline ("error: " ^ msg);
        exit 1
  in
  if o.trace_file <> None then Trace.start ();
  if o.metrics || o.metrics_json <> None then begin
    Metrics.enable ();
    Metrics.reset ()
  end;
  let t0 = Obs_clock.now_ns () in
  let flush stats =
    (match o.trace_file with
    | Some path ->
        Trace.stop ();
        write_or_die Trace.write path
    | None -> ());
    if Metrics.enabled () then begin
      Metrics.set
        (Metrics.gauge "cli/wall_ns")
        (Int64.to_float (Obs_clock.elapsed_ns ~since:t0));
      (match stats with Some s -> Instr.to_metrics s | None -> ());
      if o.metrics then Format.eprintf "%a@?" Metrics.pp ();
      (match o.metrics_json with
      | None -> ()
      | Some path ->
          let json = Json.to_string ~pretty:true (Metrics.to_json ()) ^ "\n" in
          if path = "-" then print_string json
          else
            write_or_die
              (fun path ->
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc json))
              path);
      Metrics.disable ()
    end
  in
  match f () with
  | result, stats ->
      flush (Some stats);
      result
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if o.trace_file <> None then Trace.unwind_to 0;
      flush None;
      (match e with
      | Sys.Break ->
          prerr_endline "interrupted: observability sinks flushed";
          exit 130
      | _ -> Printexc.raise_with_backtrace e bt)

(* --- solve ---------------------------------------------------------- *)

let parse_bound lattice spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "bound %S is not of the form attr=LEVEL" spec)
  | Some i -> (
      let attr = String.sub spec 0 i in
      let level = String.sub spec (i + 1) (String.length spec - i - 1) in
      match Explicit.level_of_string lattice level with
      | Some l -> Ok (attr, l)
      | None -> Error (Printf.sprintf "unknown level %S in bound" level))

let solve_cmd lattice_path policy_path bounds events check_minimal explain
    output obs =
  let lattice = or_die (load_lattice lattice_path) in
  let policy = or_die (load_policy lattice policy_path) in
  let problem =
    match Solver.compile ~lattice ~attrs:policy.Parse.attrs policy.Parse.csts with
    | Ok p -> p
    | Error e ->
        prerr_endline
          (Format.asprintf "error: %a" Minup_constraints.Problem.pp_error e);
        exit 1
  in
  let bounds =
    policy.Parse.upper_bounds
    @ List.map (fun spec -> or_die (parse_bound lattice spec)) bounds
  in
  let on_event =
    if not events then fun _ -> ()
    else
      let lvl l = Explicit.level_to_string lattice l in
      fun (e : Solver.event) ->
        match e with
        | Solver.Consider { attr; priority } ->
            Printf.eprintf "consider %s (priority %d)\n" attr priority
        | Solver.Back_assigned { attr; level } ->
            Printf.eprintf "  assign %s := %s\n" attr (lvl level)
        | Solver.Try_lower { attr; target; lowered = None } ->
            Printf.eprintf "  try(%s, %s) fails\n" attr (lvl target)
        | Solver.Try_lower { attr; target; lowered = Some l } ->
            Printf.eprintf "  try(%s, %s) lowers %s\n" attr (lvl target)
              (String.concat ","
                 (List.map (fun (a, v) -> a ^ "->" ^ lvl v) l))
        | Solver.Finalized { attr; level } ->
            Printf.eprintf "  done %s = %s\n" attr (lvl level)
  in
  let solution =
    with_obs obs (fun () ->
        let s =
          let config = Solver.Config.make ~on_event () in
          if bounds = [] then Solver.solve ~config problem
          else
            match Solver.solve_with_bounds ~config problem bounds with
            | Ok s -> s
            | Error i ->
                prerr_endline
                  (Format.asprintf "inconsistent: %a"
                     (Solver.pp_inconsistency lattice)
                     i);
                exit 2
        in
        (s, s.Solver.stats))
  in
  print_assignment lattice solution.Solver.assignment;
  if not (Solver.satisfies problem solution.Solver.levels) then begin
    prerr_endline "internal error: solution does not satisfy the constraints";
    exit 3
  end;
  if check_minimal then begin
    let module Explain = Minup_core.Explain.Make (Explicit) in
    if Explain.is_locally_minimal problem solution.Solver.levels then
      prerr_endline "verified: pointwise minimal"
    else begin
      prerr_endline "NOT minimal (internal error)";
      exit 3
    end
  end;
  if explain then begin
    let module Explain = Minup_core.Explain.Make (Explicit) in
    print_newline ();
    print_string (Explain.report problem solution.Solver.levels)
  end;
  match output with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Minup_core.Assignment_io.render
               ~level_to_string:(Explicit.level_to_string lattice)
               solution.Solver.assignment))

(* --- batch ---------------------------------------------------------- *)

(* Solve many policy files against one lattice, fanned out over domains by
   the batch engine.  Output order is input order regardless of [--jobs].

   Failure semantics: by default the batch is fail-fast — the first
   faulting task (deterministically the lowest input index) aborts the
   run with exit 4.  Under --keep-going every task runs to its own
   verdict: solutions print as usual, faults print as FAILED lines (and
   land in --failures-json), and the exit code is 4 iff any task
   faulted. *)
let batch_cmd lattice_path policy_paths jobs show_stats deadline_ms max_steps
    retries backoff_ms keep_going failures_json obs =
  let lattice = or_die (load_lattice lattice_path) in
  let problems =
    Array.of_list
      (List.map
         (fun path ->
           let policy = or_die (load_policy lattice path) in
           match
             Solver.compile ~lattice ~attrs:policy.Parse.attrs policy.Parse.csts
           with
           | Ok p -> p
           | Error e ->
               prerr_endline
                 (Format.asprintf "%s: %a" path
                    Minup_constraints.Problem.pp_error e);
               exit 1)
         policy_paths)
  in
  let policy =
    {
      Minup_core.Engine.default_policy with
      deadline_ms;
      max_steps;
      retries;
      backoff_ms;
      fail_fast = not keep_going;
    }
  in
  let report =
    match
      with_obs obs (fun () ->
          let r = Engine.solve_batch ~policy ?jobs problems in
          (r, r.Engine.stats))
    with
    | r -> r
    | exception ((Sys.Break | Out_of_memory) as e) -> raise e
    | exception e ->
        (* Fail-fast abort: the engine re-raised the lowest-index task
           fault (completed work on other tasks is discarded by design
           here — use --keep-going to collect it). *)
        prerr_endline ("error: batch failed: " ^ Printexc.to_string e);
        exit 4
  in
  Array.iteri
    (fun i outcome ->
      Printf.printf "== %s\n" (List.nth policy_paths i);
      match outcome with
      | Ok (sol : Solver.solution) ->
          print_assignment lattice sol.Solver.assignment
      | Error f -> Format.printf "FAILED: %a@." Minup_core.Fault.pp f)
    report.Engine.solutions;
  (match failures_json with
  | None -> ()
  | Some path ->
      let doc =
        Json.Arr
          (Array.to_list report.Engine.solutions
          |> List.mapi (fun i outcome -> (i, outcome))
          |> List.filter_map (fun (i, outcome) ->
                   match outcome with
                   | Ok _ -> None
                   | Error f ->
                       (* One Wire envelope per failed task — the same
                          versioned shape serve responses use. *)
                       Some
                         (Wire.to_json
                            (Wire.v1 ~problem:(List.nth policy_paths i)
                               (Wire.Fault
                                  {
                                    fault = f;
                                    attempts = report.Engine.attempts.(i);
                                    task = Some i;
                                  })))))
      in
      let json = Json.to_string ~pretty:true doc ^ "\n" in
      if path = "-" then print_string json
      else begin
        match
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc json)
        with
        | () -> ()
        | exception Sys_error msg ->
            prerr_endline ("error: " ^ msg);
            exit 1
      end);
  if show_stats then
    Format.eprintf "problems=%d jobs=%d failed=%d retries=%d %a@."
      (Array.length problems)
      report.Engine.jobs report.Engine.failed report.Engine.retries
      Minup_core.Instr.pp report.Engine.stats;
  if report.Engine.failed > 0 then exit 4

(* --- check ---------------------------------------------------------- *)

(* Auditor workflow: verify that a deployed assignment file still
   satisfies the (possibly evolved) policy and wastes no visibility. *)
let check_cmd lattice_path policy_path assignment_path =
  let lattice = or_die (load_lattice lattice_path) in
  let policy = or_die (load_policy lattice policy_path) in
  let problem =
    match Solver.compile ~lattice ~attrs:policy.Parse.attrs policy.Parse.csts with
    | Ok p -> p
    | Error e ->
        prerr_endline
          (Format.asprintf "error: %a" Minup_constraints.Problem.pp_error e);
        exit 1
  in
  let assignment =
    match
      Minup_core.Assignment_io.parse
        ~level_of_string:(Explicit.level_of_string lattice)
        (read_file assignment_path)
    with
    | Ok a -> a
    | Error e ->
        prerr_endline
          (Format.asprintf "%s: %a" assignment_path
             Minup_core.Assignment_io.pp_error e);
        exit 1
  in
  let levels =
    match Minup_core.Assignment_io.bind problem.Solver.prob assignment with
    | Ok l -> l
    | Error (`Missing a) ->
        Printf.eprintf "error: attribute %S has no assignment\n" a;
        exit 1
    | Error (`Unknown a) ->
        Printf.eprintf "error: assignment for unknown attribute %S\n" a;
        exit 1
  in
  if not (Solver.satisfies problem levels) then begin
    print_endline "VIOLATED: the assignment does not satisfy the constraints:";
    Array.iter
      (fun (c : _ Minup_constraints.Problem.cst) ->
        let combined =
          Array.fold_left
            (fun acc a -> Explicit.lub lattice acc levels.(a))
            (Explicit.bottom lattice) c.lhs
        in
        let target =
          match c.rhs with
          | Minup_constraints.Problem.Rlevel l -> l
          | Minup_constraints.Problem.Rattr a -> levels.(a)
        in
        if not (Explicit.leq lattice target combined) then
          Format.printf "  %a@."
            (Minup_constraints.Cst.pp (Explicit.pp_level lattice))
            (Minup_constraints.Problem.cst_to_source problem.Solver.prob c))
      problem.Solver.prob.Minup_constraints.Problem.csts;
    exit 2
  end;
  let module Explain = Minup_core.Explain.Make (Explicit) in
  if Explain.is_locally_minimal problem levels then
    print_endline "OK: satisfies the constraints and is pointwise minimal"
  else begin
    print_endline
      "OVERCLASSIFIED: satisfies the constraints but some attributes can be \
       lowered:";
    Array.iteri
      (fun a name ->
        List.iter
          (fun { Explain.to_level; reason } ->
            if reason = Explain.At_bottom then
              Printf.printf "  %s: %s -> %s possible\n" name
                (Explicit.level_to_string lattice levels.(a))
                (Explicit.level_to_string lattice to_level))
          (Explain.binding_constraints problem levels name))
      problem.Solver.prob.Minup_constraints.Problem.attr_names;
    exit 3
  end

(* --- stats ---------------------------------------------------------- *)

let stats_cmd lattice_path policy_path =
  let lattice = or_die (load_lattice lattice_path) in
  let policy = or_die (load_policy lattice policy_path) in
  let problem =
    Minup_constraints.Problem.compile_exn ~attrs:policy.Parse.attrs
      policy.Parse.csts
  in
  Format.printf "%a@." Minup_constraints.Stats.pp
    (Minup_constraints.Stats.compute problem)

(* --- dot ------------------------------------------------------------ *)

let dot_cmd lattice_path policy_path =
  let lattice = or_die (load_lattice lattice_path) in
  match policy_path with
  | None -> print_string (Dot.of_explicit lattice)
  | Some path ->
      (* Render the constraint graph (Fig. 2(a) style) instead. *)
      let policy = or_die (load_policy lattice path) in
      let problem =
        Minup_constraints.Problem.compile_exn ~attrs:policy.Parse.attrs
          policy.Parse.csts
      in
      print_string
        (Minup_constraints.Graphviz.render
           ~pp_level:(Explicit.pp_level lattice)
           problem)

(* --- selfcheck ------------------------------------------------------- *)

(* Differential self-check: random cases through solver, oracles,
   baselines and round-trips (lib/diffcheck).  Exit 1 on any
   disagreement; failing cases are shrunk and, with --repro-dir, written
   as replayable .lat/.cst pairs. *)
let selfcheck_cmd seed cases jobs repro_dir mutation fault =
  let jobs =
    match jobs with Some j -> j | None -> Minup_core.Engine.default_jobs ()
  in
  let summary =
    Minup_diffcheck.Selfcheck.run ?mutation ?fault ?repro_dir ~seed ~cases
      ~jobs ()
  in
  Format.printf "%a@?" Minup_diffcheck.Selfcheck.pp_summary summary;
  if summary.Minup_diffcheck.Selfcheck.total_failures > 0 then begin
    print_endline "FAIL";
    exit 1
  end
  else print_endline "OK"

(* --- demo ----------------------------------------------------------- *)

let demo_cmd () =
  let lattice = Minup_core.Paper.fig1b in
  let problem =
    Solver.compile_exn ~lattice ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let solution = Solver.solve problem in
  print_endline "Figure 2 of Dawson et al., PODS'99:";
  print_assignment lattice solution.Solver.assignment

(* --- cmdliner wiring ------------------------------------------------ *)

open Cmdliner

let lattice_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "l"; "lattice" ] ~docv:"FILE" ~doc:"Lattice file.")

let policy_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "c"; "constraints" ] ~docv:"FILE" ~doc:"Constraint (policy) file.")

let bounds_arg =
  Arg.(
    value & opt_all string []
    & info [ "bound" ] ~docv:"ATTR=LEVEL"
        ~doc:"Additional upper-bound constraint (repeatable).")

let events_arg =
  Arg.(
    value & flag
    & info [ "events" ]
        ~doc:
          "Print the Fig. 2(b)-style event log (consider/assign/try events) \
           to stderr.  Distinct from $(b,--trace), which writes a Chrome \
           trace-event file.")

(* Observability flags shared by solve and batch. *)
let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the run to $(docv): solver \
             phase spans (priorities, back-propagation, per-SCC forward \
             lowering) and, under batch, per-worker spans.  Load it in \
             Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print a metrics summary (operation counters, phase latency \
             histograms with p50/p90/p99) to stderr.")
  in
  let metrics_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry as JSON to $(docv) ('-' for \
             stdout).")
  in
  Term.(
    const (fun trace_file metrics metrics_json ->
        { trace_file; metrics; metrics_json })
    $ trace_arg $ metrics_arg $ metrics_json_arg)

let check_arg =
  Arg.(
    value & flag
    & info [ "check-minimal" ]
        ~doc:"Verify pointwise minimality of the result (polynomial check).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "For every attribute, report the constraints that prevent each \
           one-step lowering.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the assignment to FILE ('attr = LEVEL' lines).")

let solve_t =
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute a minimal classification.")
    Term.(
      const solve_cmd $ lattice_arg $ policy_arg $ bounds_arg $ events_arg
      $ check_arg $ explain_arg $ output_arg $ obs_term)

let batch_t =
  let policies_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"POLICY" ~doc:"Constraint (policy) files to solve.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the batch (default: the runtime's \
             recommended domain count).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print aggregated operation counters to stderr.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-task wall-clock budget: a solve still running after $(docv) \
             milliseconds is cancelled cooperatively and reported as a \
             deadline fault.")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Per-task scheduling-step budget: a solve exceeding $(docv) \
             bigloop/try iterations is cancelled and reported as a budget \
             fault.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a faulted task up to $(docv) times (capped exponential \
             backoff with deterministic jitter) before recording its fault.")
  in
  let backoff_arg =
    Arg.(
      value & opt int 1
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base backoff before the first retry (doubles per retry).")
  in
  let keep_going_arg =
    Arg.(
      value & flag
      & info [ "keep-going" ]
          ~doc:
            "Run every task to its own verdict instead of aborting at the \
             first fault; failed tasks print FAILED lines and the exit code \
             is 4 if any task faulted.")
  in
  let failures_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "failures-json" ] ~docv:"FILE"
          ~doc:
            "Write the failed tasks (index, policy file, attempts, fault) as \
             a JSON array to $(docv) ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve many policy files against one lattice in parallel; results \
          are printed in input order.  Exits 0 when every task solved, 1 on \
          usage/IO errors, 4 when a task faulted (fail-fast abort, or any \
          failure under --keep-going).")
    Term.(
      const batch_cmd $ lattice_arg $ policies_arg $ jobs_arg $ stats_arg
      $ deadline_arg $ max_steps_arg $ retries_arg $ backoff_arg
      $ keep_going_arg $ failures_json_arg $ obs_term)

let serve_t =
  let max_sessions_arg =
    Arg.(
      value & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Cap on concurrently held sessions; opening one beyond the cap \
             evicts the least recently used.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-resolve wall-clock budget; a request's \
             $(i,deadline_ms) field overrides it.")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Default per-resolve scheduling-step budget; a request's \
             $(i,max_steps) field overrides it.")
  in
  (* The loop reads NDJSON requests from stdin and answers one versioned
     Wire envelope per line on stdout (see Minup_session.Serve for the
     protocol); budgets given here are connection-wide defaults. *)
  let serve_cmd max_sessions deadline_ms max_steps obs =
    let conn =
      Minup_session.Serve.create ~max_sessions ?deadline_ms ?max_steps ()
    in
    with_obs obs (fun () ->
        Minup_session.Serve.run conn stdin stdout;
        ((), Instr.create ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Hold solving sessions over stdio: one JSON request per line in, \
          one JSON response envelope per line out.  Sessions re-solve \
          incrementally as constraints and bounds change.")
    Term.(
      const serve_cmd $ max_sessions_arg $ deadline_arg $ max_steps_arg
      $ obs_term)

let check_t =
  let assignment_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "a"; "assignment" ] ~docv:"FILE"
          ~doc:"Assignment file to audit ('attr = LEVEL' lines).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Audit an existing assignment: constraint satisfaction and \
          pointwise minimality.")
    Term.(const check_cmd $ lattice_arg $ policy_arg $ assignment_arg)

let stats_t =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of a constraint set.")
    Term.(const stats_cmd $ lattice_arg $ policy_arg)

let dot_t =
  let policy_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "c"; "constraints" ] ~docv:"FILE"
          ~doc:"Render this constraint file's graph instead of the lattice.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Export a lattice (or, with -c, a constraint graph) as Graphviz DOT.")
    Term.(const dot_cmd $ lattice_arg $ policy_opt)

let selfcheck_t =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Base seed; case $(i,i) derives from (seed, i).")
  in
  let cases_arg =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"K" ~doc:"Number of random cases to run.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: the runtime's recommended domain \
             count).  The summary is identical for every value.")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "Write each reported failure, after shrinking, as a replayable \
             caseN.lat/caseN.cst pair under $(docv).")
  in
  let inject_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("overclassify", Minup_diffcheck.Battery.Overclassify);
                  ("underclassify", Minup_diffcheck.Battery.Underclassify);
                ]))
          None
      & info [ "inject-bug" ] ~docv:"KIND"
          ~doc:
            "Corrupt every solution on purpose (overclassify or \
             underclassify) to prove the harness and its shrinker catch \
             real bugs.")
  in
  let inject_fault_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("raise", Minup_faultsim.Raise);
                  ("stall", Minup_faultsim.Stall 60_000);
                  ("blowout", Minup_faultsim.Blowout);
                ]))
          None
      & info [ "inject-fault" ] ~docv:"KIND"
          ~doc:
            "Plant a runtime fault (raise, stall or blowout) into every \
             case's supervised batch to prove the harness isolates and \
             shrinks engine-level failures, not just wrong levels.")
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:
         "Differential self-check: random lattices and constraint sets \
          through the solver, exhaustive oracles, baseline algorithms, the \
          batch engine and the text/JSON round-trips; failures are shrunk \
          to minimal reproducers.")
    Term.(
      const selfcheck_cmd $ seed_arg $ cases_arg $ jobs_arg $ repro_arg
      $ inject_arg $ inject_fault_arg)

let demo_t =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's Figure 2 example.")
    Term.(const demo_cmd $ const ())

let main =
  Cmd.group
    (Cmd.info "mlsclassify" ~version:"1.0.0"
       ~doc:
         "Minimal data upgrading to prevent inference and association attacks \
          (Dawson, De Capitani di Vimercati, Lincoln, Samarati — PODS 1999).")
    [ solve_t; batch_t; serve_t; check_t; stats_t; dot_t; selfcheck_t; demo_t ]

let () =
  (* SIGINT raises [Sys.Break] instead of killing the process outright, so
     [with_obs] can unwind open trace spans and flush the --trace /
     --metrics sinks before exiting 130 — an interrupted run keeps its
     partial observability data. *)
  Sys.catch_break true;
  exit (Cmd.eval main)
