(* Compartmented classification (Fig. 1(a)): a military logistics schema
   over the {S,TS} × {Army,Nuclear} lattice, with the constraints written
   in the text constraint language and parsed.

   Run with: dune exec examples/inference_military.exe *)

open Minup_lattice
module Solver = Minup_core.Solver.Make (Compartment)
module Parse = Minup_constraints.Parse

let policy =
  {|
# Military logistics classification policy.
attrs unit, route, cargo, schedule, depot

# Basic requirements: the cargo manifest is Secret//Nuclear, depot
# locations are Secret//Army.
cargo >= S:{Nuclear}
depot >= S:{Army}

# Association: a route together with a schedule reveals the operation —
# Top Secret with both compartments.
{route, schedule} >= TS:{Army,Nuclear}

# Inference: unit and depot together determine the route.
lub{unit, depot} >= route

# Referential-style requirement: the schedule must dominate the unit.
schedule >= unit
|}

let () =
  let lattice = Compartment.fig1a in
  match
    Parse.parse_resolve ~level_of_string:(Compartment.level_of_string lattice)
      policy
  with
  | Error e -> Format.printf "policy error: %a@." Parse.pp_error e
  | Ok resolved ->
      let problem =
        Solver.compile_exn ~lattice ~attrs:resolved.Parse.attrs
          resolved.Parse.csts
      in
      (* The compartmented lattice admits the direct Minlevel computation
         of footnote 4. *)
      let solution = Solver.solve ~config:(Solver.Config.make ~residual:Compartment.residual ()) problem in
      print_endline "minimal classification (access classes):";
      List.iter
        (fun (attr, l) ->
          Printf.printf "  %-9s %s\n" attr (Compartment.level_to_string lattice l))
        solution.Solver.assignment;
      Printf.printf "\nall constraints satisfied: %b\n"
        (Solver.satisfies problem solution.Solver.levels);
      (* Who can see what? *)
      let subjects =
        [
          ("army analyst  S:{Army}", Compartment.make_exn lattice ~cls:"S" ~cats:[ "Army" ]);
          ("nuclear officer TS:{Nuclear}", Compartment.make_exn lattice ~cls:"TS" ~cats:[ "Nuclear" ]);
          ("joint command TS:{Army,Nuclear}", Compartment.make_exn lattice ~cls:"TS" ~cats:[ "Army"; "Nuclear" ]);
        ]
      in
      print_endline "\nvisibility by clearance:";
      List.iter
        (fun (who, clearance) ->
          let visible =
            List.filter_map
              (fun (attr, l) ->
                if Compartment.leq lattice l clearance then Some attr else None)
              solution.Solver.assignment
          in
          Printf.printf "  %-32s sees: %s\n" who (String.concat ", " visible))
        subjects
