(* Figure 2 of the paper, end to end: the 16-constraint example, its
   priority sets, the execution trace, and the final minimal
   classification — reproducing Fig. 2(b).

   Run with: dune exec examples/paper_figure2.exe *)

open Minup_lattice
module Paper = Minup_core.Paper
module Solver = Minup_core.Solver.Make (Explicit)
module Problem = Minup_constraints.Problem

let () =
  let lattice = Paper.fig1b in
  let problem =
    Solver.compile_exn ~lattice ~attrs:Paper.fig2_attrs Paper.fig2_constraints
  in

  print_endline "constraints (Fig. 2(a)):";
  Format.printf "  @[<v>%a@]@."
    (Problem.pp (Explicit.pp_level lattice))
    problem.Solver.prob;

  print_endline "\npriority sets (computed by the two DFS passes):";
  Array.iteri
    (fun i set ->
      Printf.printf "  priority[%d] = {%s}\n" (i + 1)
        (String.concat ", "
           (Array.to_list (Array.map (Problem.attr_name problem.Solver.prob) set))))
    problem.Solver.prio.Minup_constraints.Priorities.sets;

  print_endline "\nexecution trace:";
  let pp_level l = Explicit.level_to_string lattice l in
  let solution =
    Solver.solve
      ~config:
        (Solver.Config.make
           ~on_event:(fun e ->
        match e with
        | Solver.Consider { attr; priority } ->
            Printf.printf "  consider %s (priority %d)\n" attr priority
        | Solver.Back_assigned { attr; level } ->
            Printf.printf "    back-propagation: λ(%s) := %s\n" attr (pp_level level)
        | Solver.Try_lower { attr; target; lowered = None } ->
            Printf.printf "    try(%s, %s)  FAILS\n" attr (pp_level target)
        | Solver.Try_lower { attr; target; lowered = Some l } ->
            Printf.printf "    try(%s, %s)  lowers %s\n" attr (pp_level target)
              (String.concat ", "
                 (List.map (fun (a, v) -> Printf.sprintf "%s→%s" a (pp_level v)) l))
        | Solver.Finalized { attr; level } ->
            Printf.printf "    done: λ(%s) = %s\n" attr (pp_level level))
           ())
      problem
  in

  print_endline "\nfinal levels (paper's bottom row of Fig. 2(b)):";
  List.iter
    (fun (attr, expected) ->
      let got = pp_level (Option.get (Solver.find problem solution attr)) in
      Printf.printf "  λ(%s) = %-3s  (paper: %-3s) %s\n" attr got expected
        (if got = expected then "✓" else "✗ MISMATCH"))
    Paper.fig2_expected_solution;

  Printf.printf "\nlattice operations used: %d\n"
    (Minup_core.Instr.lattice_ops solution.Solver.stats)
