The demo reproduces the paper's Figure 2 final classification:

  $ mlsclassify demo
  Figure 2 of Dawson et al., PODS'99:
  P                        L1
  B                        L5
  C                        L4
  E                        L1
  F                        L4
  G                        L1
  M                        L3
  I                        L5
  O                        L5
  N                        L5
  D                        L4

Solving a policy file over a lattice file (the name <= L4 upper bound
comes from the constraint file itself):

  $ mlsclassify solve -l fig1b.lat -c employee.cst
  name                     L1
  salary                   L6
  rank                     L1
  department               L6

Batch mode solves many policies in parallel; results keep input order
whatever the worker count, and --jobs is clamped to the batch size:

  $ mlsclassify batch -l fig1b.lat --jobs 2 employee.cst employee.cst
  == employee.cst
  name                     L1
  salary                   L6
  rank                     L1
  department               L6
  == employee.cst
  name                     L1
  salary                   L6
  rank                     L1
  department               L6
  $ mlsclassify batch -l fig1b.lat -j 3 --stats employee.cst 2>&1 >/dev/null
  problems=1 jobs=1 failed=0 retries=0 lub=1 glb=0 leq=6 minlevel=2 try=0 try_iters=0 checks=0

Batch supervision. Exit codes: 1 = usage/IO error, 2 = infeasible,
3 = verification failure, 4 = batch failure, 130 = interrupted. A
per-task step budget (or wall-clock deadline) turns a runaway task into
a typed fault; under --keep-going every task is attempted, failures are
reported in place, and the whole batch exits 4:

  $ mlsclassify batch -l fig1b.lat --max-steps 1 --keep-going employee.cst employee.cst
  == employee.cst
  FAILED: step budget exhausted: 2 steps of a 1-step budget
  == employee.cst
  FAILED: step budget exhausted: 2 steps of a 1-step budget
  [4]

Failed tasks are retried (with seeded, capped backoff) before being
reported; --failures-json emits a machine-readable failure report
('-' = stdout), one object per failed task:

  $ mlsclassify batch -l fig1b.lat --max-steps 1 --retries 2 --backoff-ms 0 --keep-going --failures-json - employee.cst 2>/dev/null
  == employee.cst
  FAILED: step budget exhausted: 2 steps of a 1-step budget
  [
    {
      "v": 1,
      "status": "fault",
      "problem": "employee.cst",
      "task": 0,
      "attempts": 3,
      "fault": {
        "kind": "budget",
        "max_steps": 1,
        "steps": 2
      }
    }
  ]
  [4]

The --stats line accounts failures and retries:

  $ mlsclassify batch -l fig1b.lat --max-steps 1 --retries 1 --backoff-ms 0 --keep-going --stats employee.cst 2>&1 >/dev/null
  problems=1 jobs=1 failed=1 retries=1 lub=0 glb=0 leq=0 minlevel=0 try=0 try_iters=0 checks=0
  [4]

Without --keep-going the batch fails fast: the first failure (by input
order, deterministically) aborts the batch:

  $ mlsclassify batch -l fig1b.lat --max-steps 1 employee.cst employee.cst
  error: batch failed: Solver.Cancelled(step budget 1 exhausted; 1/4 attrs finalized, 2 steps)
  [4]

The serve loop keeps compiled problems in memory and re-solves deltas
incrementally: one JSON request per stdin line, one versioned envelope
per stdout line (the answer is bit-identical to a from-scratch solve —
incrementality is never visible in results).  Budgets answer fault
envelopes, conflicting bounds infeasible ones, and a bad request an
error envelope without killing the loop:

  $ printf '%s\n' \
  >   '{"op":"open","problem":"emp","lattice":"levels Public, Secret\nPublic < Secret\n","constraints":"secret >= Secret\n{name, salary} >= secret\n"}' \
  >   '{"op":"resolve","problem":"emp"}' \
  >   '{"op":"set_lower_bound","problem":"emp","attr":"name","level":"Secret"}' \
  >   '{"op":"resolve","problem":"emp","max_steps":0}' \
  >   '{"op":"resolve","problem":"emp","bounds":{"secret":"Public"}}' \
  >   '{"op":"resolve","problem":"emp"}' \
  >   'bogus' \
  >   | mlsclassify serve
  {"v":1,"status":"ok","problem":"emp"}
  {"v":1,"status":"ok","problem":"emp","solution":{"secret":"Secret","name":"Public","salary":"Secret"}}
  {"v":1,"status":"ok","problem":"emp"}
  {"v":1,"status":"fault","problem":"emp","attempts":1,"fault":{"kind":"budget","max_steps":0,"steps":1}}
  {"v":1,"status":"infeasible","problem":"emp","detail":"constraint λ(secret) ⊒ Secret cannot be satisfied: the left-hand side is capped at Public"}
  {"v":1,"status":"ok","problem":"emp","solution":{"secret":"Secret","name":"Secret","salary":"Public"}}
  {"v":1,"status":"error","detail":"request is not JSON: unexpected 'b' at offset 0"}

Observability: --trace writes a Chrome trace-event file, --metrics prints
a registry snapshot on stderr (counters are deterministic; timing gauges
and histograms are not, so only counters are checked here):

  $ mlsclassify solve -l fig1b.lat -c employee.cst --trace t.json --metrics 2>metrics.txt
  name                     L1
  salary                   L6
  rank                     L1
  department               L6
  $ grep -o '"name":"solve",' t.json | wc -l
  2
  $ grep '^counter ' metrics.txt
  counter instr/constraint_checks 0
  counter instr/glb 0
  counter instr/leq 8
  counter instr/lub 1
  counter instr/minlevel_calls 4
  counter instr/try_calls 0
  counter instr/try_iterations 0
  counter solver/back_assigned 4
  counter solver/forward_lowered 0
  counter solver/solves 1

In batch mode every worker domain appears as a traced span (2 workers x
B/E = 4 events) and --metrics-json aggregates the whole batch:

  $ mlsclassify batch -l fig1b.lat --jobs 2 --trace bt.json --metrics-json bm.json employee.cst employee.cst > /dev/null
  $ grep -o '"name":"worker",' bt.json | wc -l
  4
  $ grep '"instr/lub"' bm.json
      "instr/lub": 2,

Interrupting a batch must still flush the observability sinks (the
trace used to be lost on SIGINT): a zero deadline makes every attempt
fail instantly while the retry backoff keeps the process alive long
enough to kill; it exits 130 with open spans unwound and the trace
written:

  $ mlsclassify batch -l fig1b.lat --jobs 1 --deadline-ms 0 --retries 100000 --trace sigint.json employee.cst >/dev/null 2>sigint.err &
  $ MLS_PID=$!
  $ sleep 1
  $ kill -INT $MLS_PID
  $ wait $MLS_PID
  [130]
  $ grep interrupted sigint.err
  interrupted: observability sinks flushed
  $ grep -o '"name":"worker"' sigint.json | wc -l
  2

Minimality can be verified exhaustively on small instances:

  $ mlsclassify solve -l fig1b.lat -c employee.cst --check-minimal
  verified: pointwise minimal
  name                     L1
  salary                   L6
  rank                     L1
  department               L6

Structural statistics:

  $ mlsclassify stats -l fig1b.lat -c employee.cst
  attributes: 4
  constraints: 3 (simple 1, complex 2, max lhs 2)
  total size S: 8
  acyclic: true
  SCCs: 4 (largest 1, cyclic attributes 0)

An inconsistent extra bound is rejected with a witness:

  $ mlsclassify solve -l fig1b.lat -c employee.cst --bound salary=L2
  inconsistent: constraint λ(salary) ⊒ L3 cannot be satisfied: the left-hand side is capped at L2
  [2]

DOT export of the lattice:

  $ mlsclassify dot -l fig1b.lat | head -4
  digraph lattice {
    rankdir=BT;
    n0 [label="L1"];
    n1 [label="L2"];

DOT export of the constraint graph:

  $ mlsclassify dot -l fig1b.lat -c employee.cst | grep -c circle
  4

Explaining the result — every binding constraint per possible lowering:

  $ mlsclassify solve -l fig1b.lat -c employee.cst --explain | tail -6
    cannot lower to L5: lub{λ(name), λ(salary)} ⊒ L6
  rank = L1
    at bottom: no constraint holds it up
  department = L6
    cannot lower to L4: via propagation, lub{λ(name), λ(salary)} ⊒ L6
    cannot lower to L5: via propagation, lub{λ(name), λ(salary)} ⊒ L6

The solve/check round trip — write an assignment file, audit it:

  $ mlsclassify solve -l fig1b.lat -c employee.cst -o out.lvl
  name                     L1
  salary                   L6
  rank                     L1
  department               L6
  $ mlsclassify check -l fig1b.lat -c employee.cst -a out.lvl
  OK: satisfies the constraints and is pointwise minimal

An overclassified assignment is flagged with the possible lowerings:

  $ sed 's/^rank = L1/rank = L4/' out.lvl > fat.lvl
  $ mlsclassify check -l fig1b.lat -c employee.cst -a fat.lvl
  OVERCLASSIFIED: satisfies the constraints but some attributes can be lowered:
    rank: L4 -> L2 possible
    rank: L4 -> L3 possible
    department: L6 -> L5 possible
  [3]

A violating assignment is rejected with the broken constraints:

  $ sed 's/^salary = L6/salary = L1/' out.lvl > bad.lvl
  $ mlsclassify check -l fig1b.lat -c employee.cst -a bad.lvl
  VIOLATED: the assignment does not satisfy the constraints:
    λ(salary) ⊒ L3
    lub{λ(name), λ(salary)} ⊒ L6
  [2]

A bare `attrs` declaration line (regression: the keyword used to match any
prefix, so an attribute named "attrset" was silently swallowed as a
declaration list):

  $ printf 'attrs\nattrset >= L3\n' > attrs.cst
  $ mlsclassify solve -l fig1b.lat -c attrs.cst
  attrset                  L3

Resolve-time errors point at the offending line (regression: they used to
report line 0):

  $ printf 'name >= L3\nsalary >= L4\nrank <= NoSuchLevel\n' > badline.cst
  $ mlsclassify solve -l fig1b.lat -c badline.cst
  error: badline.cst: line 3: upper bound for "rank": "NoSuchLevel" is not a level of the lattice
  [1]

The differential self-check harness: random instances across all three
lattice backends, each solved and cross-checked against the Explain
certificates, the exhaustive oracle, the backtracking and Qian baselines,
the batch engine, and the parser/JSON round trips. Output is a pure
function of (seed, cases) — never of the worker count:

  $ mlsclassify selfcheck --seed 42 --cases 12 --jobs 2
  selfcheck: seed=42 cases=12
    backends: compartment=4 explicit=4 powerset=4
    shapes: acyclic=5 mixed=2 single_scc=5
    bounded: 6
    checks: compile=12 satisfies=12 minimal=12 oracle=10 backtrack=12 qian=12 batch=12 supervised=12 parse=12 json=12 bounded_ok=4 bounded_infeasible=2 session=12 wire=12
    failures: 0
  OK

Injecting a solver bug proves the harness catches it and shrinks each
failure to a near-empty reproducer written as replayable .lat/.cst files:

  $ mlsclassify selfcheck --seed 42 --cases 3 --jobs 1 --inject-bug overclassify --repro-dir repro
  selfcheck: seed=42 cases=3
    backends: compartment=1 explicit=1 powerset=1
    shapes: acyclic=2 single_scc=1
    bounded: 1
    checks: compile=3 satisfies=3 minimal=2 oracle=2 backtrack=2 qian=2 batch=3 supervised=3 parse=3 json=3 bounded_ok=1 bounded_infeasible=0 session=3 wire=3
    failures: 2
    FAIL case=1 backend=compartment shape=single_scc property=satisfies: solution violates a constraint (5 attrs, 11 csts)
      repro (shrunk): 2 levels, 1 attrs, 0 constraints, 0 bounds
      wrote repro/case1.lat repro/case1.cst repro/case1.json
    FAIL case=2 backend=powerset shape=acyclic property=minimal: Explain.is_locally_minimal rejects the solution
      repro (shrunk): 2 levels, 1 attrs, 0 constraints, 0 bounds
      wrote repro/case2.lat repro/case2.cst repro/case2.json
  FAIL
  [1]

The reproducer is an ordinary instance — it replays through the normal
solve pipeline (and passes, because the bug lives in the injected
mutation, not in the solver):

  $ grep -v '^#' repro/case2.cst
  attrs A6
  $ mlsclassify solve -l repro/case2.lat -c repro/case2.cst --check-minimal
  verified: pointwise minimal
  A6                       v0

The finding itself is mirrored as a versioned wire envelope next to the
replay files:

  $ cat repro/case2.json
  {
    "v": 1,
    "status": "error",
    "problem": "case2",
    "detail": "property=minimal: Explain.is_locally_minimal rejects the solution"
  }

Injecting a runtime fault (the supervision analogue of --inject-bug)
proves the harness isolates and shrinks engine-level misbehavior too:
an unplanted raise/stall/blowout planted through the fault simulator
must surface as a supervised-batch failure on every case:

  $ mlsclassify selfcheck --seed 42 --cases 2 --jobs 2 --inject-fault raise
  selfcheck: seed=42 cases=2
    backends: compartment=1 explicit=1
    shapes: acyclic=1 single_scc=1
    bounded: 1
    checks: compile=2 satisfies=2 minimal=2 oracle=2 backtrack=2 qian=2 batch=2 supervised=2 parse=2 json=2 bounded_ok=1 bounded_infeasible=0 session=2 wire=2
    failures: 4
    FAIL case=0 backend=explicit shape=acyclic property=supervised: jobs=1: unplanted fault at task 3: injected fault: raise at event 9 of task 3
      repro (shrunk): 1 levels, 1 attrs, 0 constraints, 0 bounds
    FAIL case=1 backend=compartment shape=single_scc property=supervised: jobs=1: unplanted fault at task 0: injected fault: raise at event 6 of task 0
      repro (shrunk): 1 levels, 1 attrs, 0 constraints, 0 bounds
    (2 further failures not shown)
  FAIL
  [1]
