open Minup_lattice

let case = Helpers.case
let fig1b = Helpers.fig1b
let lvl = Helpers.lvl

let fig1b_structure () =
  Alcotest.(check int) "cardinal" 6 (Explicit.cardinal fig1b);
  Alcotest.(check int) "height" 3 (Explicit.height fig1b);
  let lt = Helpers.level_t fig1b in
  Alcotest.check lt "bottom" (lvl "L1") (Explicit.bottom fig1b);
  Alcotest.check lt "top" (lvl "L6") (Explicit.top fig1b);
  Alcotest.check lt "lub L2 L3" (lvl "L4") (Explicit.lub fig1b (lvl "L2") (lvl "L3"));
  Alcotest.check lt "lub L2 L5" (lvl "L6") (Explicit.lub fig1b (lvl "L2") (lvl "L5"));
  Alcotest.check lt "glb L4 L5" (lvl "L3") (Explicit.glb fig1b (lvl "L4") (lvl "L5"));
  Alcotest.check lt "glb L2 L3" (lvl "L1") (Explicit.glb fig1b (lvl "L2") (lvl "L3"));
  Alcotest.(check bool) "L1 ⊑ L5" true (Explicit.leq fig1b (lvl "L1") (lvl "L5"));
  Alcotest.(check bool) "L2 ⊑ L5" false (Explicit.leq fig1b (lvl "L2") (lvl "L5"));
  Alcotest.(check (list string)) "covers below L6" [ "L4"; "L5" ]
    (List.map (Explicit.name fig1b) (Explicit.covers_below fig1b (lvl "L6")));
  Alcotest.(check (list string)) "covers below L4" [ "L2"; "L3" ]
    (List.map (Explicit.name fig1b) (Explicit.covers_below fig1b (lvl "L4")));
  Alcotest.(check (list string)) "covers below L1" []
    (List.map (Explicit.name fig1b) (Explicit.covers_below fig1b (lvl "L1")))

let laws () =
  let module Laws = Check.Laws (Explicit) in
  (match Laws.check fig1b with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  match Laws.check (Explicit.chain [ "a"; "b"; "c"; "d" ]) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let rejects_non_lattice () =
  (* Two maximal elements: no lub for the two middles. *)
  let r =
    Explicit.create
      ~names:[ "bot"; "x"; "y"; "t1"; "t2" ]
      ~order:[ ("bot", "x"); ("bot", "y"); ("x", "t1"); ("y", "t1"); ("x", "t2"); ("y", "t2") ]
  in
  (match r with
  | Error (Explicit.No_least_upper_bound _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Explicit.pp_error e
  | Ok _ -> Alcotest.fail "accepted a non-lattice");
  (* No common upper bound at all. *)
  match
    Explicit.create ~names:[ "a"; "b"; "c" ] ~order:[ ("a", "b"); ("a", "c") ]
  with
  | Error (Explicit.No_upper_bound _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Explicit.pp_error e
  | Ok _ -> Alcotest.fail "accepted a non-lattice"

let rejects_bad_input () =
  (match Explicit.create ~names:[] ~order:[] with
  | Error Explicit.Empty -> ()
  | _ -> Alcotest.fail "accepted empty");
  (match Explicit.create ~names:[ "a"; "a" ] ~order:[] with
  | Error (Explicit.Duplicate_name "a") -> ()
  | _ -> Alcotest.fail "accepted duplicate");
  (match Explicit.create ~names:[ "a" ] ~order:[ ("a", "zz") ] with
  | Error (Explicit.Unknown_name "zz") -> ()
  | _ -> Alcotest.fail "accepted unknown name");
  match
    Explicit.create ~names:[ "a"; "b" ] ~order:[ ("a", "b"); ("b", "a") ]
  with
  | Error Explicit.Cyclic_order -> ()
  | _ -> Alcotest.fail "accepted cycle"

let reflexive_pairs_ok () =
  let l = Explicit.create_exn ~names:[ "a"; "b" ] ~order:[ ("a", "a"); ("a", "b") ] in
  Alcotest.(check int) "cardinal" 2 (Explicit.cardinal l)

let names_roundtrip () =
  List.iter
    (fun l ->
      let s = Explicit.level_to_string fig1b l in
      Alcotest.(check (option (Helpers.level_t fig1b)))
        ("roundtrip " ^ s) (Some l)
        (Explicit.level_of_string fig1b s))
    (Explicit.all fig1b);
  Alcotest.(check (option (Helpers.level_t fig1b))) "unknown" None
    (Explicit.of_name fig1b "nope")

let cover_pairs () =
  let pairs = Explicit.cover_pairs fig1b in
  Alcotest.(check int) "7 covers" 7 (List.length pairs);
  let named =
    List.map (fun (a, b) -> (Explicit.name fig1b a, Explicit.name fig1b b)) pairs
  in
  Alcotest.(check bool) "L3-L5 present" true (List.mem ("L3", "L5") named);
  Alcotest.(check bool) "no transitive L1-L4" false (List.mem ("L1", "L4") named)

let singleton () =
  let l = Explicit.create_exn ~names:[ "only" ] ~order:[] in
  let lt = Helpers.level_t l in
  Alcotest.check lt "top=bottom" (Explicit.top l) (Explicit.bottom l);
  Alcotest.(check int) "height" 0 (Explicit.height l)

(* Property: on random closure lattices, lub/glb agree with a brute-force
   computation from the order alone. *)
let lub_brute_prop =
  QCheck.Test.make ~count:60 ~name:"explicit lub/glb = brute force from order"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:5
          ~n_generators:4 ~max_size:24
      in
      let all = Explicit.all lat in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let ubs =
                List.filter (fun c -> Explicit.leq lat a c && Explicit.leq lat b c) all
              in
              let least =
                List.find (fun c -> List.for_all (Explicit.leq lat c) ubs) ubs
              in
              Explicit.lub lat a b = least)
            all)
        all)

(* Above [table_threshold] (600) lub/glb run table-less through the
   direct-mapped memo; a 700-level chain exercises that path, querying each
   pair twice so the second lookup is served from the memo. *)
let tableless_memo () =
  let n = 700 in
  let names = List.init n (Printf.sprintf "c%d") in
  let lat = Explicit.chain names in
  let lt = Helpers.level_t lat in
  let pairs =
    [ (0, 0); (0, 699); (699, 0); (123, 456); (456, 123); (456, 457); (698, 699) ]
  in
  for _pass = 1 to 2 do
    List.iter
      (fun (a, b) ->
        Alcotest.check lt
          (Printf.sprintf "lub %d %d" a b)
          (max a b) (Explicit.lub lat a b);
        Alcotest.check lt
          (Printf.sprintf "glb %d %d" a b)
          (min a b) (Explicit.glb lat a b))
      pairs
  done;
  (* Distinct queries colliding on the same memo slot (keys ≡ mod 4096:
     0·700+596 = 596 and 6·700+492 = 4692 = 596 + 4096) must still be
     answered correctly — collisions evict, never corrupt. *)
  let check (a, b) =
    Alcotest.check lt
      (Printf.sprintf "collision lub %d %d" a b)
      (max a b) (Explicit.lub lat a b)
  in
  check (0, 596); check (6, 492); check (0, 596); check (6, 492)

let suite =
  [
    case "Fig. 1(b) structure" fig1b_structure;
    case "table-less lub/glb memo (700-level chain)" tableless_memo;
    case "lattice laws" laws;
    case "rejects non-lattices" rejects_non_lattice;
    case "rejects malformed input" rejects_bad_input;
    case "reflexive pairs tolerated" reflexive_pairs_ok;
    case "name round-trips" names_roundtrip;
    case "cover pairs" cover_pairs;
    case "singleton lattice" singleton;
    Helpers.qcheck lub_brute_prop;
  ]
