(* The batch engine must be a drop-in for a sequential solve loop: same
   solutions, same per-problem counters, same order — whatever the worker
   count.  The workloads below mix shapes (acyclic / one big SCC / SCC
   islands) and lattices so the parity check covers both solver paths
   (back-propagation and forward lowering).

   The second half exercises the supervision layer: per-task fault
   isolation, deterministic fail-fast, deadlines and step budgets
   (cooperative cancellation), retry accounting, and jobs-invariance of a
   batch with seeded injected faults. *)

open Minup_lattice
module E0 = Minup_core.Engine
module Engine = Minup_core.Engine.Make (Explicit)
module Fault = Minup_core.Fault
module Faultsim = Minup_faultsim
module S = Helpers.S
module Gen = Minup_workload.Gen_constraints
module Gen_lattice = Minup_workload.Gen_lattice
module Instr = Minup_core.Instr

let case = Helpers.case

let lattices =
  lazy
    [|
      Gen_lattice.diamond_stack 3;
      Gen_lattice.chain_product [ 3; 2 ];
      Minup_core.Paper.fig1b;
    |]

let random_problem rng i =
  let lats = Lazy.force lattices in
  let lat = lats.(i mod Array.length lats) in
  let constants = Explicit.all lat in
  let spec =
    {
      Gen.n_attrs = 18 + (i mod 11);
      n_simple = 26;
      n_complex = 9;
      max_lhs = 4;
      n_constants = 7;
      constants;
    }
  in
  let attrs, csts =
    match i mod 3 with
    | 0 -> Gen.acyclic rng spec
    | 1 -> Gen.single_scc rng spec
    | _ -> Gen.mixed rng spec ~n_islands:3 ~island_size:4
  in
  S.compile_exn ~lattice:lat ~attrs csts

let fields (s : Instr.t) =
  [
    s.Instr.lub;
    s.Instr.glb;
    s.Instr.leq;
    s.Instr.minlevel_calls;
    s.Instr.try_calls;
    s.Instr.try_iterations;
    s.Instr.constraint_checks;
  ]

let stats_eq name a b = Alcotest.(check (list int)) name (fields a) (fields b)

(* 60 randomized workloads, solved sequentially and at jobs = 4: identical
   levels, identical per-problem counters, aggregate = component-wise sum. *)
let parity_jobs4 () =
  let rng = Minup_workload.Prng.create 4242 in
  let problems = Array.init 60 (fun i -> random_problem rng i) in
  let seq = Array.map S.solve problems in
  let report = Engine.solve_batch ~jobs:4 problems in
  Alcotest.(check int) "solution count" 60 (Array.length report.Engine.solutions);
  Alcotest.(check int) "jobs used" 4 report.Engine.jobs;
  Alcotest.(check int) "no failures" 0 report.Engine.failed;
  let sols = Engine.ok_exn report in
  Array.iteri
    (fun i (p : S.solution) ->
      let q = sols.(i) in
      Alcotest.(check (array int))
        (Printf.sprintf "levels of problem %d" i)
        p.S.levels q.S.levels;
      stats_eq (Printf.sprintf "stats of problem %d" i) p.S.stats q.S.stats)
    seq;
  stats_eq "aggregate stats"
    (Instr.sum (Array.map (fun (s : S.solution) -> s.S.stats) seq))
    report.Engine.stats;
  Alcotest.(check bool) "aggregate counted work" true
    (Instr.lattice_ops report.Engine.stats > 0)

(* Degenerate shapes: empty batch, singleton batch with excess workers
   (jobs clamps to the batch size), inline jobs=1 path, bad jobs, bad
   policy. *)
let edge_cases () =
  let empty = Engine.solve_batch ~jobs:4 [||] in
  Alcotest.(check int) "empty batch" 0 (Array.length empty.Engine.solutions);
  let rng = Minup_workload.Prng.create 7 in
  let p = random_problem rng 0 in
  let one = Engine.solve_batch ~jobs:8 [| p |] in
  Alcotest.(check int) "jobs clamped" 1 one.Engine.jobs;
  let seq = S.solve p in
  Alcotest.(check (array int)) "clamped still solves" seq.S.levels
    (Engine.ok_exn one).(0).S.levels;
  let inline = Engine.solve_batch ~jobs:1 [| p; p |] in
  Alcotest.(check int) "inline path" 1 inline.Engine.jobs;
  Alcotest.(check (array int)) "inline solves" seq.S.levels
    (Engine.ok_exn inline).(1).S.levels;
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Engine.solve_batch: jobs < 1") (fun () ->
      ignore (Engine.solve_batch ~jobs:0 [| p |]));
  Alcotest.check_raises "retries < 0 rejected"
    (Invalid_argument "Engine.solve_batch: retries < 0") (fun () ->
      ignore
        (Engine.solve_batch
           ~policy:{ E0.default_policy with E0.retries = -1 }
           [| p |]))

exception Boom

let ff = { E0.default_policy with E0.fail_fast = true }

module Trace = Minup_obs.Trace

(* The span-nesting contract dev/validate_trace.exe enforces: every E pops
   a same-name B on its tid, and every tid's stack is empty at the end. *)
let check_balanced_spans events =
  let stacks = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.event) ->
      match e.ph with
      | 'B' ->
          Hashtbl.replace stacks e.tid
            (e.name :: Option.value (Hashtbl.find_opt stacks e.tid) ~default:[])
      | 'E' -> (
          match Hashtbl.find_opt stacks e.tid with
          | Some (top :: rest) when top = e.name ->
              Hashtbl.replace stacks e.tid rest
          | _ -> Alcotest.failf "unmatched E %S on tid %d" e.name e.tid)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid -> function
      | [] -> ()
      | names ->
          Alcotest.failf "tid %d ends with unclosed span(s): %s" tid
            (String.concat ", " names))
    stacks

(* Regression: a raising fail-fast solve on the jobs=1 path must close the
   open "worker" span on the way out, or the exported trace fails the B/E
   nesting validation. *)
let traced_exn_balanced () =
  let rng = Minup_workload.Prng.create 31 in
  let problems = Array.init 3 (fun i -> random_problem rng i) in
  let residual _ ~target:_ ~others:_ = raise Boom in
  Trace.start ();
  Fun.protect ~finally:Trace.stop (fun () ->
      Alcotest.check_raises "inline-path exception resurfaces" Boom (fun () ->
          ignore (Engine.solve_batch ~residual ~policy:ff ~jobs:1 problems)));
  check_balanced_spans (Trace.events ());
  Alcotest.(check bool) "a worker span was traced" true
    (List.exists
       (fun (e : Trace.event) -> e.ph = 'B' && e.name = "worker")
       (Trace.events ()))

(* Under fail-fast (the old engine contract) a solve raising inside a
   worker domain must resurface in the caller, not vanish or deadlock. *)
let exn_propagates () =
  let rng = Minup_workload.Prng.create 99 in
  let problems = Array.init 6 (fun i -> random_problem rng i) in
  let residual _ ~target:_ ~others:_ = raise Boom in
  Alcotest.check_raises "worker exception resurfaces" Boom (fun () ->
      ignore (Engine.solve_batch ~residual ~policy:ff ~jobs:3 problems))

(* Keep-going (the default policy): the same universally-raising residual
   yields a full report — every task its own [Error], nothing raised, and
   no completed work discarded. *)
let keep_going_isolates () =
  let rng = Minup_workload.Prng.create 99 in
  let problems = Array.init 6 (fun i -> random_problem rng i) in
  let residual _ ~target:_ ~others:_ = raise Boom in
  let report = Engine.solve_batch ~residual ~jobs:3 problems in
  Alcotest.(check int) "all failed" 6 report.Engine.failed;
  Array.iter
    (function
      | Ok _ -> Alcotest.fail "expected a fault"
      | Error f ->
          Alcotest.(check string) "classified as solver error" "solver_error"
            (Fault.label f))
    report.Engine.solutions

(* An injected fault surfaces only at its planted index; every other task
   keeps its solution bit-identical to a sequential solve. *)
let fault_isolated () =
  let rng = Minup_workload.Prng.create 11 in
  let problems = Array.init 8 (fun i -> random_problem rng i) in
  let seq = Array.map S.solve problems in
  let plan =
    [
      { Faultsim.task = 2; at_event = 0; kind = Faultsim.Raise };
      { Faultsim.task = 5; at_event = 3; kind = Faultsim.Raise };
    ]
  in
  let report =
    Engine.solve_batch ~instrument:(Faultsim.instrument plan) ~jobs:3 problems
  in
  Alcotest.(check int) "two failures" 2 report.Engine.failed;
  Array.iteri
    (fun i -> function
      | Ok (s : S.solution) ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d not planted" i)
            false (i = 2 || i = 5);
          Alcotest.(check (array int))
            (Printf.sprintf "task %d bit-identical" i)
            seq.(i).S.levels s.S.levels;
          stats_eq (Printf.sprintf "task %d stats" i) seq.(i).S.stats s.S.stats
      | Error f ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d planted" i)
            true (i = 2 || i = 5);
          Alcotest.(check string) "injected" "injected" (Fault.label f))
    report.Engine.solutions

(* Fail-fast determinism: with faults planted at tasks 3, 6 and 9, the
   re-raised exception names task 3 — the lowest input index — whatever
   the worker count or interleaving. *)
let fail_fast_lowest_index () =
  let rng = Minup_workload.Prng.create 23 in
  let problems = Array.init 12 (fun i -> random_problem rng i) in
  let plan =
    List.map
      (fun task -> { Faultsim.task; at_event = 0; kind = Faultsim.Raise })
      [ 9; 3; 6 ]
  in
  List.iter
    (fun jobs ->
      match
        Engine.solve_batch ~policy:ff
          ~instrument:(Faultsim.instrument plan)
          ~jobs problems
      with
      | _ -> Alcotest.failf "jobs=%d: expected a raise" jobs
      | exception Fault.Injection d ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d: lowest index wins" jobs)
            "raise at event 0 of task 3" d)
    [ 1; 4 ]

(* Deadline and step-budget faults, driven deterministically: a stall
   warps the budget's virtual clock (no real sleeping), a blowout burns
   the step budget.  Both must be classified as their own fault kinds at
   their own indices. *)
let budget_faults () =
  let rng = Minup_workload.Prng.create 37 in
  let problems = Array.init 6 (fun i -> random_problem rng i) in
  let plan =
    [
      { Faultsim.task = 1; at_event = 0; kind = Faultsim.Stall 60_000 };
      { Faultsim.task = 4; at_event = 0; kind = Faultsim.Blowout };
    ]
  in
  let policy =
    {
      E0.default_policy with
      E0.deadline_ms = Some 10_000;
      max_steps = Some 10_000_000;
    }
  in
  let report =
    Engine.solve_batch ~policy
      ~instrument:(Faultsim.instrument plan)
      ~jobs:2 problems
  in
  Array.iteri
    (fun i -> function
      | Ok _ ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d clean" i)
            false (i = 1 || i = 4)
      | Error f ->
          let expect = if i = 1 then "deadline" else "budget" in
          Alcotest.(check string)
            (Printf.sprintf "task %d kind" i)
            expect (Fault.label f))
    report.Engine.solutions;
  (* Payloads carry the configured budgets. *)
  (match report.Engine.solutions.(1) with
  | Error (Fault.Deadline_exceeded { deadline_ms; elapsed_ms }) ->
      Alcotest.(check int) "deadline payload" 10_000 deadline_ms;
      Alcotest.(check bool) "elapsed past the deadline" true
        (elapsed_ms > 10_000.)
  | _ -> Alcotest.fail "task 1 should be a deadline fault");
  match report.Engine.solutions.(4) with
  | Error (Fault.Budget_exhausted { max_steps; steps }) ->
      Alcotest.(check int) "budget payload" 10_000_000 max_steps;
      Alcotest.(check bool) "steps past the budget" true (steps > max_steps)
  | _ -> Alcotest.fail "task 4 should be a budget fault"

(* Retry accounting: a deterministic fault fails every attempt, so a
   2-retry policy makes exactly 3 attempts at the planted index and 1
   everywhere else. *)
let retries_accounted () =
  let rng = Minup_workload.Prng.create 53 in
  let problems = Array.init 5 (fun i -> random_problem rng i) in
  let plan = [ { Faultsim.task = 2; at_event = 0; kind = Faultsim.Raise } ] in
  let policy = { E0.default_policy with E0.retries = 2; backoff_ms = 0 } in
  let report =
    Engine.solve_batch ~policy
      ~instrument:(Faultsim.instrument plan)
      ~jobs:2 problems
  in
  Alcotest.(check int) "one failure" 1 report.Engine.failed;
  Alcotest.(check int) "total retries" 2 report.Engine.retries;
  Array.iteri
    (fun i attempts ->
      Alcotest.(check int)
        (Printf.sprintf "attempts at task %d" i)
        (if i = 2 then 3 else 1)
        attempts)
    report.Engine.attempts

(* The acceptance batch: raise + stall + blowout planted by a seeded plan,
   identical outcome labels and bit-identical successes at jobs=1 and
   jobs=4. *)
let jobs_invariant_faults () =
  let rng = Minup_workload.Prng.create 61 in
  let problems = Array.init 10 (fun i -> random_problem rng i) in
  let plan = Faultsim.plan ~seed:42 ~tasks:10 ~faults:3 in
  Alcotest.(check int) "plan plants 3 sites" 3 (List.length plan);
  let kinds = List.map (fun s -> s.Faultsim.kind) plan in
  Alcotest.(check bool) "all three kinds planted" true
    (List.mem Faultsim.Raise kinds
    && List.mem Faultsim.Blowout kinds
    && List.exists (function Faultsim.Stall _ -> true | _ -> false) kinds);
  let targets = Faultsim.targets plan in
  let policy =
    {
      E0.default_policy with
      E0.deadline_ms = Some 10_000;
      max_steps = Some 10_000_000;
      retries = 1;
      backoff_ms = 0;
    }
  in
  let run jobs =
    Engine.solve_batch ~policy ~instrument:(Faultsim.instrument plan) ~jobs
      problems
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check int) "failed = planted (jobs=1)" 3 r1.Engine.failed;
  Array.iteri
    (fun i o1 ->
      match (o1, r4.Engine.solutions.(i)) with
      | Ok (a : S.solution), Ok b ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d unplanted" i)
            false (List.mem i targets);
          Alcotest.(check (array int))
            (Printf.sprintf "task %d levels jobs-invariant" i)
            a.S.levels b.S.levels;
          stats_eq (Printf.sprintf "task %d stats jobs-invariant" i) a.S.stats
            b.S.stats
      | Error f, Error g ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d planted" i)
            true (List.mem i targets);
          Alcotest.(check string)
            (Printf.sprintf "task %d fault kind jobs-invariant" i)
            (Fault.label f) (Fault.label g)
      | _ -> Alcotest.failf "task %d: outcome differs between jobs=1 and 4" i)
    r1.Engine.solutions

(* Cooperative cancellation at the solver level: a step budget trips with
   partial progress attached; a warped clock trips the deadline without
   any real waiting. *)
let solver_budget_cancels () =
  let rng = Minup_workload.Prng.create 5 in
  let p = random_problem rng 1 in
  (match S.solve
     ~config:
       (S.Config.make ~budget:(Minup_core.Solver.budget ~max_steps:3 ()) ())
     p with
  | _ -> Alcotest.fail "expected a step-budget cancellation"
  | exception S.Cancelled { reason = S.Steps { max_steps }; progress } ->
      Alcotest.(check int) "max_steps payload" 3 max_steps;
      Alcotest.(check bool) "charged past the budget" true (progress.S.steps > 3);
      Alcotest.(check bool) "partial progress is partial" true
        (progress.S.n_finalized < progress.S.n_attrs)
  | exception S.Cancelled _ -> Alcotest.fail "wrong cancel reason");
  (* Each clock read advances 10 virtual ms: the solve can never finish a
     5 ms deadline, and no wall-clock time is involved. *)
  let t = ref 0L in
  let now () =
    t := Int64.add !t 10_000_000L;
    !t
  in
  match S.solve
    ~config:
      (S.Config.make
         ~budget:(Minup_core.Solver.budget ~deadline_ms:5 ~now ())
         ())
    p with
  | _ -> Alcotest.fail "expected a deadline cancellation"
  | exception S.Cancelled { reason = S.Deadline { deadline_ms; elapsed_ms }; _ }
    ->
      Alcotest.(check int) "deadline payload" 5 deadline_ms;
      Alcotest.(check bool) "virtual time elapsed" true (elapsed_ms >= 10.)
  | exception S.Cancelled _ -> Alcotest.fail "wrong cancel reason"

(* A budget generous enough to never trip must not change the result or
   the Instr counters (budget steps are counted separately). *)
let budget_transparent () =
  let rng = Minup_workload.Prng.create 71 in
  let problems = Array.init 4 (fun i -> random_problem rng i) in
  Array.iter
    (fun p ->
      let plain = S.solve p in
      let budgeted =
        S.solve
          ~config:
            (S.Config.make
               ~budget:
                 (Minup_core.Solver.budget ~deadline_ms:3_600_000
                    ~max_steps:max_int ())
               ())
          p
      in
      Alcotest.(check (array int))
        "levels unchanged under a loose budget" plain.S.levels
        budgeted.S.levels;
      stats_eq "counters unchanged under a loose budget" plain.S.stats
        budgeted.S.stats)
    problems

let fault_json_roundtrip () =
  List.iter
    (fun f ->
      match Fault.of_json (Fault.to_json f) with
      | Ok f' ->
          Alcotest.(check bool)
            (Format.asprintf "round-trip of %a" Fault.pp f)
            true (f = f')
      | Error e -> Alcotest.failf "round-trip rejected: %s" e)
    [
      Fault.Solver_error { exn = "Boom" };
      Fault.Deadline_exceeded { deadline_ms = 10; elapsed_ms = 12.345 };
      Fault.Deadline_exceeded { deadline_ms = 0; elapsed_ms = 0.125 };
      Fault.Budget_exhausted { max_steps = 5; steps = 6 };
      Fault.Injected { description = "stall 60000ms at event 1 of task 0" };
    ];
  match Fault.of_json (Minup_obs.Json.Str "nope") with
  | Ok _ -> Alcotest.fail "non-object accepted"
  | Error _ -> ()

(* Options must reach every worker: an upgrade preference changes which
   minimal solution is returned, and batch runs must match sequential ones
   option-for-option. *)
let options_forwarded =
  QCheck.Test.make ~count:30
    ~name:"batch = sequential under an upgrade preference" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let problems =
        Array.init 8 (fun i -> random_problem rng (i + (seed mod 5)))
      in
      let pref name = -String.length name in
      let seq =
        Array.map
          (fun p ->
            S.solve ~config:(S.Config.make ~upgrade_preference:pref ()) p)
          problems
      in
      let report =
        Engine.solve_batch ~upgrade_preference:pref ~jobs:4 problems
      in
      Array.for_all2
        (fun (a : S.solution) (b : S.solution) ->
          a.S.levels = b.S.levels && fields a.S.stats = fields b.S.stats)
        seq (Engine.ok_exn report))

let suite =
  [
    case "jobs=4 parity on 60 random workloads" parity_jobs4;
    case "edge cases: empty, clamp, inline, bad jobs, bad policy" edge_cases;
    case "fail-fast worker exception propagates" exn_propagates;
    case "traced jobs=1 exception keeps spans balanced" traced_exn_balanced;
    case "keep-going isolates every fault" keep_going_isolates;
    case "injected fault isolated at its index" fault_isolated;
    case "fail-fast re-raises the lowest input index" fail_fast_lowest_index;
    case "stall and blowout become deadline/budget faults" budget_faults;
    case "retries are attempted and accounted" retries_accounted;
    case "seeded fault plan is jobs-invariant" jobs_invariant_faults;
    case "solver budget cancels with partial progress" solver_budget_cancels;
    case "loose budget leaves solve bit-identical" budget_transparent;
    case "fault JSON round-trips" fault_json_roundtrip;
    Helpers.qcheck options_forwarded;
  ]
