(* The batch engine must be a drop-in for a sequential solve loop: same
   solutions, same per-problem counters, same order — whatever the worker
   count.  The workloads below mix shapes (acyclic / one big SCC / SCC
   islands) and lattices so the parity check covers both solver paths
   (back-propagation and forward lowering). *)

open Minup_lattice
module Engine = Minup_core.Engine.Make (Explicit)
module S = Helpers.S
module Gen = Minup_workload.Gen_constraints
module Gen_lattice = Minup_workload.Gen_lattice
module Instr = Minup_core.Instr

let case = Helpers.case

let lattices =
  lazy
    [|
      Gen_lattice.diamond_stack 3;
      Gen_lattice.chain_product [ 3; 2 ];
      Minup_core.Paper.fig1b;
    |]

let random_problem rng i =
  let lats = Lazy.force lattices in
  let lat = lats.(i mod Array.length lats) in
  let constants = Explicit.all lat in
  let spec =
    {
      Gen.n_attrs = 18 + (i mod 11);
      n_simple = 26;
      n_complex = 9;
      max_lhs = 4;
      n_constants = 7;
      constants;
    }
  in
  let attrs, csts =
    match i mod 3 with
    | 0 -> Gen.acyclic rng spec
    | 1 -> Gen.single_scc rng spec
    | _ -> Gen.mixed rng spec ~n_islands:3 ~island_size:4
  in
  S.compile_exn ~lattice:lat ~attrs csts

let fields (s : Instr.t) =
  [
    s.Instr.lub;
    s.Instr.glb;
    s.Instr.leq;
    s.Instr.minlevel_calls;
    s.Instr.try_calls;
    s.Instr.try_iterations;
    s.Instr.constraint_checks;
  ]

let stats_eq name a b = Alcotest.(check (list int)) name (fields a) (fields b)

(* 60 randomized workloads, solved sequentially and at jobs = 4: identical
   levels, identical per-problem counters, aggregate = component-wise sum. *)
let parity_jobs4 () =
  let rng = Minup_workload.Prng.create 4242 in
  let problems = Array.init 60 (fun i -> random_problem rng i) in
  let seq = Array.map S.solve problems in
  let report = Engine.solve_batch ~jobs:4 problems in
  Alcotest.(check int) "solution count" 60 (Array.length report.Engine.solutions);
  Alcotest.(check int) "jobs used" 4 report.Engine.jobs;
  Array.iteri
    (fun i (p : S.solution) ->
      let q = report.Engine.solutions.(i) in
      Alcotest.(check (array int))
        (Printf.sprintf "levels of problem %d" i)
        p.S.levels q.S.levels;
      stats_eq (Printf.sprintf "stats of problem %d" i) p.S.stats q.S.stats)
    seq;
  stats_eq "aggregate stats"
    (Instr.sum (Array.map (fun (s : S.solution) -> s.S.stats) seq))
    report.Engine.stats;
  Alcotest.(check bool) "aggregate counted work" true
    (Instr.lattice_ops report.Engine.stats > 0)

(* Degenerate shapes: empty batch, singleton batch with excess workers
   (jobs clamps to the batch size), inline jobs=1 path, bad jobs. *)
let edge_cases () =
  let empty = Engine.solve_batch ~jobs:4 [||] in
  Alcotest.(check int) "empty batch" 0 (Array.length empty.Engine.solutions);
  let rng = Minup_workload.Prng.create 7 in
  let p = random_problem rng 0 in
  let one = Engine.solve_batch ~jobs:8 [| p |] in
  Alcotest.(check int) "jobs clamped" 1 one.Engine.jobs;
  let seq = S.solve p in
  Alcotest.(check (array int)) "clamped still solves" seq.S.levels
    one.Engine.solutions.(0).S.levels;
  let inline = Engine.solve_batch ~jobs:1 [| p; p |] in
  Alcotest.(check int) "inline path" 1 inline.Engine.jobs;
  Alcotest.(check (array int)) "inline solves" seq.S.levels
    inline.Engine.solutions.(1).S.levels;
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Engine.solve_batch: jobs < 1") (fun () ->
      ignore (Engine.solve_batch ~jobs:0 [| p |]))

exception Boom

module Trace = Minup_obs.Trace

(* The span-nesting contract dev/validate_trace.exe enforces: every E pops
   a same-name B on its tid, and every tid's stack is empty at the end. *)
let check_balanced_spans events =
  let stacks = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.event) ->
      match e.ph with
      | 'B' ->
          Hashtbl.replace stacks e.tid
            (e.name :: Option.value (Hashtbl.find_opt stacks e.tid) ~default:[])
      | 'E' -> (
          match Hashtbl.find_opt stacks e.tid with
          | Some (top :: rest) when top = e.name ->
              Hashtbl.replace stacks e.tid rest
          | _ -> Alcotest.failf "unmatched E %S on tid %d" e.name e.tid)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid -> function
      | [] -> ()
      | names ->
          Alcotest.failf "tid %d ends with unclosed span(s): %s" tid
            (String.concat ", " names))
    stacks

(* Regression: a raising solve on the jobs=1 inline path must close the
   open "worker" span on the way out, or the exported trace fails the B/E
   nesting validation. *)
let traced_exn_balanced () =
  let rng = Minup_workload.Prng.create 31 in
  let problems = Array.init 3 (fun i -> random_problem rng i) in
  let residual _ ~target:_ ~others:_ = raise Boom in
  Trace.start ();
  Fun.protect ~finally:Trace.stop (fun () ->
      Alcotest.check_raises "inline-path exception resurfaces" Boom (fun () ->
          ignore (Engine.solve_batch ~residual ~jobs:1 problems)));
  check_balanced_spans (Trace.events ());
  Alcotest.(check bool) "a worker span was traced" true
    (List.exists
       (fun (e : Trace.event) -> e.ph = 'B' && e.name = "worker")
       (Trace.events ()))

(* A solve raising inside a worker domain must resurface in the caller
   (after the workers drain), not vanish or deadlock. *)
let exn_propagates () =
  let rng = Minup_workload.Prng.create 99 in
  let problems = Array.init 6 (fun i -> random_problem rng i) in
  let residual _ ~target:_ ~others:_ = raise Boom in
  Alcotest.check_raises "worker exception resurfaces" Boom (fun () ->
      ignore (Engine.solve_batch ~residual ~jobs:3 problems))

(* Options must reach every worker: an upgrade preference changes which
   minimal solution is returned, and batch runs must match sequential ones
   option-for-option. *)
let options_forwarded =
  QCheck.Test.make ~count:30
    ~name:"batch = sequential under an upgrade preference" Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let problems =
        Array.init 8 (fun i -> random_problem rng (i + (seed mod 5)))
      in
      let pref name = -String.length name in
      let seq =
        Array.map (fun p -> S.solve ~upgrade_preference:pref p) problems
      in
      let report =
        Engine.solve_batch ~upgrade_preference:pref ~jobs:4 problems
      in
      Array.for_all2
        (fun (a : S.solution) (b : S.solution) ->
          a.S.levels = b.S.levels && fields a.S.stats = fields b.S.stats)
        seq report.Engine.solutions)

let suite =
  [
    case "jobs=4 parity on 60 random workloads" parity_jobs4;
    case "edge cases: empty, clamp, inline, bad jobs" edge_cases;
    case "worker exception propagates" exn_propagates;
    case "traced jobs=1 exception keeps spans balanced" traced_exn_balanced;
    Helpers.qcheck options_forwarded;
  ]
