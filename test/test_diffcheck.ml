(* The self-check harness must (a) pass on the real implementation,
   (b) produce summaries that depend only on (seed, cases) — never on the
   worker count — and (c) actually catch an injected solver bug and shrink
   it to a trivial reproducer that replays from its .lat/.cst files. *)

module Selfcheck = Minup_diffcheck.Selfcheck
module Battery = Minup_diffcheck.Battery
module Instance = Minup_diffcheck.Instance

let case = Helpers.case

let render s = Format.asprintf "%a" Selfcheck.pp_summary s

let clean_run () =
  let s = Selfcheck.run ~seed:42 ~cases:60 ~jobs:2 () in
  Alcotest.(check int) "no failures" 0 s.Selfcheck.total_failures;
  (* Backend rotation covers all three implementations. *)
  Alcotest.(check (list (pair string int)))
    "backends"
    [ ("compartment", 20); ("explicit", 20); ("powerset", 20) ]
    s.Selfcheck.backends;
  (* Every case compiles and is checked for satisfaction and, when the
     mutated path is off, minimality; bounded cases split across the two
     bounded branches. *)
  let check name = List.assoc name s.Selfcheck.checks in
  Alcotest.(check int) "compile runs" 60 (check "compile");
  Alcotest.(check int) "satisfies runs" 60 (check "satisfies");
  Alcotest.(check int) "minimal runs" 60 (check "minimal");
  Alcotest.(check int) "batch runs" 60 (check "batch");
  Alcotest.(check int) "parse runs" 60 (check "parse");
  Alcotest.(check int) "json runs" 60 (check "json");
  Alcotest.(check int) "bounded cases" 30 s.Selfcheck.bounded;
  Alcotest.(check int) "bounded branches partition"
    30
    (check "bounded_ok" + check "bounded_infeasible");
  Alcotest.(check bool) "oracle engages" true (check "oracle" > 0);
  Alcotest.(check bool) "backtrack engages" true (check "backtrack" > 0)

let deterministic () =
  let a = Selfcheck.run ~seed:7 ~cases:24 ~jobs:1 () in
  let b = Selfcheck.run ~seed:7 ~cases:24 ~jobs:5 () in
  Alcotest.(check string) "summary independent of jobs" (render a) (render b);
  let c = Selfcheck.run ~seed:8 ~cases:24 ~jobs:1 () in
  Alcotest.(check bool) "seed actually varies the cases" true
    (render a <> render c
    || a.Selfcheck.shapes <> c.Selfcheck.shapes
    || a.Selfcheck.checks <> c.Selfcheck.checks)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The mutation check: an injected over-classification bug must be caught,
   shrunk to a near-empty reproducer (the ISSUE bound is <= 5 constraints;
   these shrink to 0), and the written files must replay to a failure. *)
let mutation_shrinks name mutation () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      ("minup_diffcheck_repro_" ^ name)
  in
  let s =
    Selfcheck.run ~mutation ~repro_dir:dir ~seed:42 ~cases:9 ~jobs:2 ()
  in
  Alcotest.(check bool) "bug caught" true (s.Selfcheck.total_failures > 0);
  Alcotest.(check bool) "failures reported" true (s.Selfcheck.failures <> []);
  List.iter
    (fun (r : Selfcheck.failure_report) ->
      Alcotest.(check bool) "failure reproduces on the mirror" true r.mirrored;
      Alcotest.(check bool)
        (Printf.sprintf "case %d repro has <= 5 constraints" r.case)
        true
        (List.length r.repro.Instance.csts <= 5);
      Alcotest.(check bool)
        (Printf.sprintf "case %d repro lattice is tiny" r.case)
        true
        (List.length r.repro.Instance.names <= 4);
      match r.files with
      | None -> Alcotest.fail "no repro files written"
      | Some (lat_path, cst_path, json_path) -> (
          (match
             Minup_obs.Json.parse (read_file json_path)
             |> Result.map_error (fun e -> `Parse e)
             |> fun j ->
             Result.bind j (fun j ->
                 Minup_core.Wire.of_json j
                 |> Result.map_error (fun e -> `Wire e))
           with
          | Ok env ->
              Alcotest.(check string)
                "repro json is an error envelope" "error"
                (Minup_core.Wire.status env)
          | Error (`Parse e) ->
              Alcotest.failf "repro json does not parse: %s" e
          | Error (`Wire e) ->
              Alcotest.failf "repro json is not a wire envelope: %s" e);
          let lat = read_file lat_path and cst = read_file cst_path in
          match Selfcheck.replay ~mutation ~lat ~cst () with
          | Error e -> Alcotest.failf "repro does not parse back: %s" e
          | Ok fails ->
              Alcotest.(check bool) "replayed repro still fails" true
                (fails <> [])))
    s.Selfcheck.failures;
  (* The same files replay clean without the injected bug: the failure is
     the mutation's, not the harness's. *)
  (match s.Selfcheck.failures with
  | { files = Some (lat_path, cst_path, _); _ } :: _ -> (
      match
        Selfcheck.replay ~lat:(read_file lat_path) ~cst:(read_file cst_path) ()
      with
      | Ok [] -> ()
      | Ok (f : Battery.failure list) ->
          Alcotest.failf "clean replay fails: %s" (List.hd f).Battery.property
      | Error e -> Alcotest.failf "clean replay does not parse: %s" e)
  | _ -> ());
  (* Best-effort cleanup; the files live under the temp dir regardless. *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Sys.rmdir dir with Sys_error _ -> ()

let suite =
  [
    case "clean run: 60 cases, all backends, no failures" clean_run;
    case "summary is a function of (seed, cases) only" deterministic;
    case "injected overclassify bug is caught and shrunk"
      (mutation_shrinks "over" Battery.Overclassify);
    case "injected underclassify bug is caught and shrunk"
      (mutation_shrinks "under" Battery.Underclassify);
  ]
