(* Reproduction of the paper's worked examples: Fig. 2(b) and §3.1. *)

open Minup_lattice
open Helpers
module Paper = Minup_core.Paper

let case = Helpers.case

let compile_fig2 () =
  S.compile_exn ~lattice:Paper.fig1b ~attrs:Paper.fig2_attrs Paper.fig2_constraints

let fig2_final_levels () =
  let p = compile_fig2 () in
  let sol = S.solve p in
  List.iter
    (fun (attr, expected) ->
      let got =
        Explicit.level_to_string Paper.fig1b (Option.get (S.find p sol attr))
      in
      Alcotest.(check string) attr expected got)
    Paper.fig2_expected_solution

let fig2_satisfies_and_minimal () =
  let p = compile_fig2 () in
  let sol = S.solve p in
  Alcotest.(check bool) "satisfies" true (S.satisfies p sol.S.levels);
  match V.is_minimal_solution ~cap:10_000_000 p sol.S.levels with
  | Ok b -> Alcotest.(check bool) "minimal" true b
  | Error `Too_large -> Alcotest.fail "oracle too large"

let fig2_trace () =
  let p = compile_fig2 () in
  let events = ref [] in
  let _ = S.solve ~config:(S.Config.make ~on_event:(fun e -> events := e :: !events) ()) p in
  let events = List.rev !events in
  (* Consideration order follows decreasing priority, ascending id within
     a set: P first, then B..M, then I,O,N, then D last. *)
  let considered =
    List.filter_map (function S.Consider { attr; _ } -> Some attr | _ -> None) events
  in
  Alcotest.(check (list string)) "consideration order"
    [ "P"; "B"; "C"; "E"; "F"; "G"; "M"; "I"; "O"; "N"; "D" ]
    considered;
  (* The trace records the failed try(F, L2) the paper shows. *)
  let failed_tries =
    List.filter_map
      (function
        | S.Try_lower { attr; target; lowered = None } ->
            Some (attr, Explicit.level_to_string Paper.fig1b target)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "try(F,L2) failed" true (List.mem ("F", "L2") failed_tries);
  (* And the successful lowering steps of E. *)
  let e_tries =
    List.filter_map
      (function
        | S.Try_lower { attr = "E"; target; lowered = Some _ } ->
            Some (Explicit.level_to_string Paper.fig1b target)
        | _ -> None)
      events
  in
  Alcotest.(check (list string)) "E lowering path" [ "L2"; "L1" ] e_tries

let fig2_try_b_sweeps_cycle () =
  (* try(B, L5) must lower B, M and G together, as in the trace's second
     row. *)
  let p = compile_fig2 () in
  let b_lowering = ref [] in
  let _ =
    S.solve
      ~config:
        (S.Config.make
           ~on_event:(function
             | S.Try_lower { attr = "B"; lowered = Some l; _ } ->
                 b_lowering := l
             | _ -> ())
           ())
      p
  in
  let names = List.sort compare (List.map fst !b_lowering) in
  Alcotest.(check (list string)) "B's try sweeps B,G,M" [ "B"; "G"; "M" ] names;
  List.iter
    (fun (_, l) ->
      Alcotest.(check string) "all at L5" "L5"
        (Explicit.level_to_string Paper.fig1b l))
    !b_lowering

let sec31_two_minimal_solutions () =
  let p = S.compile_exn ~lattice:Paper.fig1b Paper.sec31_constraints in
  (* The oracle finds exactly the two minimal solutions of §3.1. *)
  match V.minimal_solutions p with
  | Error `Too_large -> Alcotest.fail "oracle too large"
  | Ok sols ->
      let render sol =
        List.sort compare
          (List.mapi
             (fun i l ->
               ( Minup_constraints.Problem.attr_name p.S.prob i,
                 Explicit.level_to_string Paper.fig1b l ))
             (Array.to_list sol))
      in
      let got = List.sort compare (List.map render sols) in
      let expected =
        List.sort compare
          (List.map (List.sort compare) Paper.sec31_minimal_solutions)
      in
      Alcotest.(check (list (list (pair string string)))) "minimal set" expected got;
      (* And the solver returns one of them. *)
      let sol = S.solve p in
      Alcotest.(check bool) "solver output among minimal" true
        (List.mem (render sol.S.levels) got)

let deterministic () =
  let p = compile_fig2 () in
  let s1 = S.solve p and s2 = S.solve p in
  Alcotest.(check bool) "same assignment" true
    (Array.for_all2 (Explicit.equal Paper.fig1b) s1.S.levels s2.S.levels)

let stats_populated () =
  let p = compile_fig2 () in
  let sol = S.solve p in
  let st = sol.S.stats in
  Alcotest.(check bool) "lubs counted" true (st.Minup_core.Instr.lub > 0);
  Alcotest.(check bool) "tries counted" true (st.Minup_core.Instr.try_calls > 0);
  Alcotest.(check bool) "checks counted" true
    (st.Minup_core.Instr.constraint_checks > 0)

let suite =
  [
    case "Fig. 2(b) final levels" fig2_final_levels;
    case "Fig. 2 satisfies + minimal" fig2_satisfies_and_minimal;
    case "Fig. 2(b) trace events" fig2_trace;
    case "Fig. 2(b) try(B,L5) sweep" fig2_try_b_sweeps_cycle;
    case "§3.1 minimal solutions" sec31_two_minimal_solutions;
    case "determinism" deterministic;
    case "instrumentation" stats_populated;
  ]
