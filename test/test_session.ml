(* Sessions: the delta API's resolves must be bit-identical to solving the
   snapshot from scratch, whichever path (cached, patched, incremental,
   full fallback) serves them — plus the serve loop's envelopes and the
   Wire round-trip. *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Session = Minup_session.Session.Make (Explicit)
module SS = Session.Solver
module Serve = Minup_session.Serve
module Wire = Minup_core.Wire
module Fault = Minup_core.Fault
module Json = Minup_obs.Json
module Gen = Minup_workload.Gen_constraints
module Gen_lattice = Minup_workload.Gen_lattice
module Prng = Minup_workload.Prng

let case = Helpers.case
let fig1b = Minup_core.Paper.fig1b
let lvl = Helpers.lvl

(* Scratch oracle: compile + solve the session's snapshot with the
   session's own solver instance. *)
let scratch lat sess =
  let attrs, csts = Session.snapshot sess in
  let p = SS.compile_exn ~lattice:lat ~attrs csts in
  SS.solve p

let check_matches ~ctx lat sess =
  let sol = Session.resolve sess in
  let ref_sol = scratch lat sess in
  if
    not
      (Array.length sol.SS.levels = Array.length ref_sol.SS.levels
      && Array.for_all2 (Explicit.equal lat) sol.SS.levels ref_sol.SS.levels)
  then Alcotest.failf "%s: incremental resolve diverges from scratch solve" ctx

let base_csts () =
  [
    Helpers.level_cst "salary" "L3";
    Helpers.attr_cst "name" "salary";
    Helpers.assoc_cst [ "rank"; "dept" ] "L2";
  ]

let delta_sequence_matches_scratch () =
  let sess = Session.create ~lattice:fig1b (base_csts ()) in
  check_matches ~ctx:"initial" fig1b sess;
  let id = Session.add_constraint sess (Helpers.level_cst "dept" "L1") in
  check_matches ~ctx:"add" fig1b sess;
  Session.set_lower_bound sess "rank" (Some (lvl "L2"));
  check_matches ~ctx:"bound" fig1b sess;
  Session.set_lower_bound sess "rank" (Some (lvl "L4"));
  check_matches ~ctx:"retighten" fig1b sess;
  Alcotest.(check bool) "remove known" true (Session.remove_constraint sess id);
  check_matches ~ctx:"remove" fig1b sess;
  Alcotest.(check bool) "remove unknown" false (Session.remove_constraint sess id);
  Session.add_attribute sess "unbound";
  check_matches ~ctx:"new attr" fig1b sess;
  Session.set_lower_bound sess "rank" None;
  check_matches ~ctx:"clear bound" fig1b sess

let stats_classify_paths () =
  let sess = Session.create ~lattice:fig1b (base_csts ()) in
  Session.set_lower_bound sess "salary" (Some (lvl "L1"));
  ignore (Session.resolve sess);
  ignore (Session.resolve sess);
  (* Re-tightening an existing bound is the patch fast path. *)
  Session.set_lower_bound sess "salary" (Some (lvl "L4"));
  check_matches ~ctx:"patch" fig1b sess;
  (* A structural delta recompiles but re-solves only the dirty cone. *)
  ignore (Session.add_constraint sess (Helpers.level_cst "dept" "L2"));
  check_matches ~ctx:"structural" fig1b sess;
  let st = Session.stats sess in
  Alcotest.(check int) "resolves" 4 st.Session.resolves;
  Alcotest.(check int) "cached" 1 st.Session.cached;
  Alcotest.(check int) "full" 1 st.Session.full;
  Alcotest.(check int) "patched" 1 st.Session.patched;
  Alcotest.(check int) "incremental" 2 st.Session.incremental;
  Alcotest.(check bool) "frozen some work" true (st.Session.frozen > 0)

let cycle_falls_back_to_full () =
  let sess =
    Session.create ~lattice:fig1b
      [
        Helpers.attr_cst "a" "b";
        Helpers.attr_cst "b" "a";
        Helpers.level_cst "b" "L2";
      ]
  in
  check_matches ~ctx:"initial" fig1b sess;
  (* The delta's dirty closure reaches the {a, b} cycle: the session must
     fall back to a full solve rather than freeze half a cycle. *)
  Session.set_lower_bound sess "a" (Some (lvl "L4"));
  check_matches ~ctx:"cycle delta" fig1b sess;
  let st = Session.stats sess in
  Alcotest.(check int) "full twice" 2 st.Session.full;
  Alcotest.(check int) "never incremental" 0 st.Session.incremental

let untouched_subgraph_is_frozen () =
  (* Two disconnected chains; editing one must freeze the other. *)
  let sess =
    Session.create ~lattice:fig1b
      [
        Helpers.level_cst "x1" "L2";
        Helpers.attr_cst "x0" "x1";
        Helpers.level_cst "y1" "L3";
        Helpers.attr_cst "y0" "y1";
      ]
  in
  ignore (Session.resolve sess);
  ignore (Session.add_constraint sess (Helpers.level_cst "x1" "L4"));
  check_matches ~ctx:"one chain edited" fig1b sess;
  let st = Session.stats sess in
  Alcotest.(check int) "incremental" 1 st.Session.incremental;
  (* y0 and y1 (at least) stayed frozen. *)
  Alcotest.(check bool) "frozen >= 2" true (st.Session.frozen >= 2)

let random_spec lat =
  {
    Gen.n_attrs = 14;
    n_simple = 18;
    n_complex = 7;
    max_lhs = 3;
    n_constants = 6;
    constants = Explicit.all lat;
  }

(* A random editing session: every resolve, after every delta, must match
   the scratch solve of the snapshot. *)
let random_session seed =
  let rng = Prng.create seed in
  let lat =
    Gen_lattice.random_closure_exn rng ~universe:5 ~n_generators:4 ~max_size:40
  in
  let spec = random_spec lat in
  let attrs, csts =
    match seed mod 3 with
    | 0 -> Gen.acyclic rng spec
    | 1 -> Gen.single_scc rng spec
    | _ -> Gen.mixed rng spec ~n_islands:2 ~island_size:4
  in
  let sess = Session.create ~lattice:lat ~attrs csts in
  let ids = ref (List.mapi (fun i _ -> i) csts) in
  let levels = Explicit.all lat in
  let fresh = ref 0 in
  check_matches ~ctx:"initial" lat sess;
  for step = 1 to 10 do
    (match Prng.int rng 6 with
    | 0 ->
        let lhs = Prng.sample rng (1 + Prng.int rng 3) attrs in
        let rhs =
          if Prng.bool rng then Cst.Level (Prng.pick rng levels)
          else Cst.Attr (Prng.pick rng attrs)
        in
        (match Cst.make ~lhs ~rhs with
        | Ok c -> ids := Session.add_constraint sess c :: !ids
        | Error _ -> ())
    | 1 when !ids <> [] ->
        let id = Prng.pick rng !ids in
        ignore (Session.remove_constraint sess id);
        ids := List.filter (fun i -> i <> id) !ids
    | 2 | 3 ->
        Session.set_lower_bound sess (Prng.pick rng attrs)
          (Some (Prng.pick rng levels))
    | 4 ->
        Session.set_lower_bound sess (Prng.pick rng attrs) None
    | _ ->
        incr fresh;
        Session.add_attribute sess (Printf.sprintf "z%d" !fresh));
    check_matches ~ctx:(Printf.sprintf "seed %d step %d" seed step) lat sess
  done

let random_sessions () =
  for seed = 0 to 24 do
    random_session seed
  done

(* {2 Wire envelopes} *)

let wire_roundtrip w =
  let rendered = Json.to_string (Wire.to_json w) in
  match Json.parse rendered with
  | Error e -> Alcotest.failf "wire render does not parse: %s" e
  | Ok doc -> (
      match Wire.of_json doc with
      | Error e -> Alcotest.failf "wire round-trip failed: %s (%s)" e rendered
      | Ok w' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip %s" rendered)
            true (Wire.equal w w'))

let wire_roundtrips () =
  List.iter wire_roundtrip
    [
      Wire.v1 (Wire.Ack { id = None });
      Wire.v1 ~problem:"p" (Wire.Ack { id = Some 3 });
      Wire.v1 ~problem:"p"
        (Wire.Solution
           { assignment = [ ("a", "L1"); ("b", "TS:{x}") ]; stats = None });
      Wire.v1
        (Wire.Solution
           { assignment = []; stats = Some (Minup_core.Instr.create ()) });
      Wire.v1 ~problem:"q"
        (Wire.Fault
           {
             fault = Fault.Budget_exhausted { max_steps = 5; steps = 6 };
             attempts = 2;
             task = Some 1;
           });
      Wire.v1
        (Wire.Fault
           {
             fault = Fault.Solver_error { exn = "Failure(\"x\")" };
             attempts = 1;
             task = None;
           });
      Wire.v1 ~problem:"p" (Wire.Infeasible { detail = "no way" });
      Wire.v1 (Wire.Error { detail = "bad request" });
    ]

let wire_rejects () =
  let reject doc msg =
    match Wire.of_json doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" msg
  in
  reject (Json.Obj [ ("status", Json.Str "ok") ]) "missing version";
  reject
    (Json.Obj [ ("v", Json.Num 2.); ("status", Json.Str "ok") ])
    "version 2";
  reject
    (Json.Obj [ ("v", Json.Num 1.); ("status", Json.Str "nope") ])
    "unknown status";
  reject (Json.Arr []) "non-object"

(* {2 Serve} *)

let lattice_text = "levels Public, Secret, TopSecret\nPublic < Secret\nSecret < TopSecret\n"

let serve_req conn fields =
  let line = Json.to_string (Json.Obj fields) in
  Serve.handle_line conn line

let open_req ?(constraints = "secret >= Secret\n{name, salary} >= secret\n")
    conn name =
  serve_req conn
    [
      ("op", Json.Str "open");
      ("problem", Json.Str name);
      ("lattice", Json.Str lattice_text);
      ("constraints", Json.Str constraints);
    ]

let check_status what expected (w : Wire.t) =
  Alcotest.(check string) what expected (Wire.status w)

let serve_basic_flow () =
  let conn = Serve.create () in
  check_status "open" "ok" (open_req conn "p");
  (match
     serve_req conn [ ("op", Json.Str "resolve"); ("problem", Json.Str "p") ]
   with
  | { Wire.body = Wire.Solution { assignment; stats = None }; _ } ->
      Alcotest.(check (list (pair string string)))
        "assignment"
        [ ("secret", "Secret"); ("name", "Public"); ("salary", "Secret") ]
        assignment
  | w -> Alcotest.failf "unexpected resolve response: %s" (Wire.status w));
  (* add_constraint returns the fresh id and changes the next resolve. *)
  (match
     serve_req conn
       [
         ("op", Json.Str "add_constraint");
         ("problem", Json.Str "p");
         ("constraint", Json.Str "salary >= TopSecret");
       ]
   with
  | { Wire.body = Wire.Ack { id = Some _ }; _ } -> ()
  | _ -> Alcotest.fail "add_constraint should ack with an id");
  (match
     serve_req conn
       [
         ("op", Json.Str "resolve");
         ("problem", Json.Str "p");
         ("stats", Json.Bool true);
       ]
   with
  | { Wire.body = Wire.Solution { assignment; stats = Some _ }; _ } ->
      Alcotest.(check (list (pair string string)))
        "assignment after delta"
        [ ("secret", "Secret"); ("name", "Public"); ("salary", "TopSecret") ]
        assignment
  | _ -> Alcotest.fail "resolve with stats should carry counters");
  check_status "close" "ok"
    (serve_req conn [ ("op", Json.Str "close"); ("problem", Json.Str "p") ]);
  check_status "closed session is gone" "error"
    (serve_req conn [ ("op", Json.Str "resolve"); ("problem", Json.Str "p") ])

let serve_faults_and_infeasible () =
  let conn = Serve.create () in
  check_status "open" "ok" (open_req conn "p");
  (* Upper bounds conflicting with the policy: infeasible, not error. *)
  (match
     serve_req conn
       [
         ("op", Json.Str "resolve");
         ("problem", Json.Str "p");
         ("bounds", Json.Obj [ ("secret", Json.Str "Public") ]);
       ]
   with
  | { Wire.body = Wire.Infeasible _; _ } -> ()
  | w -> Alcotest.failf "expected infeasible, got %s" (Wire.status w));
  (* A step budget of 0 cancels the solve: a fault envelope, kind budget.
     The delta forces actual solving — a cached answer costs no budget —
     and must still be queued afterwards, not lost to the cancellation. *)
  check_status "queue delta" "ok"
    (serve_req conn
       [
         ("op", Json.Str "set_lower_bound");
         ("problem", Json.Str "p");
         ("attr", Json.Str "name");
         ("level", Json.Str "Secret");
       ]);
  (match
     serve_req conn
       [
         ("op", Json.Str "resolve");
         ("problem", Json.Str "p");
         ("max_steps", Json.Num 0.);
       ]
   with
  | { Wire.body = Wire.Fault { fault; attempts = 1; task = None }; _ } ->
      Alcotest.(check string) "kind" "budget" (Fault.label fault)
  | w -> Alcotest.failf "expected fault, got %s" (Wire.status w));
  (* And the session still answers afterwards. *)
  check_status "recovers" "ok"
    (serve_req conn [ ("op", Json.Str "resolve"); ("problem", Json.Str "p") ])

let serve_errors () =
  let conn = Serve.create () in
  check_status "not json" "error" (Serve.handle_line conn "{nope");
  check_status "missing op" "error"
    (serve_req conn [ ("problem", Json.Str "p") ]);
  check_status "missing problem" "error"
    (serve_req conn [ ("op", Json.Str "resolve") ]);
  check_status "unknown session" "error"
    (serve_req conn [ ("op", Json.Str "resolve"); ("problem", Json.Str "p") ]);
  check_status "open" "ok" (open_req conn "p");
  check_status "unknown op" "error"
    (serve_req conn [ ("op", Json.Str "scramble"); ("problem", Json.Str "p") ]);
  check_status "bad level" "error"
    (serve_req conn
       [
         ("op", Json.Str "set_lower_bound");
         ("problem", Json.Str "p");
         ("attr", Json.Str "secret");
         ("level", Json.Str "Mystery");
       ]);
  check_status "unknown constraint id" "error"
    (serve_req conn
       [
         ("op", Json.Str "remove_constraint");
         ("problem", Json.Str "p");
         ("id", Json.Num 99.);
       ]);
  check_status "upper bound in policy" "error"
    (serve_req conn
       [
         ("op", Json.Str "open");
         ("problem", Json.Str "q");
         ("lattice", Json.Str lattice_text);
         ("constraints", Json.Str "secret <= Secret\n");
       ])

let serve_lru_eviction () =
  let conn = Serve.create ~max_sessions:2 () in
  check_status "open a" "ok" (open_req conn "a");
  check_status "open b" "ok" (open_req conn "b");
  (* Touch [a] so [b] is the LRU victim. *)
  check_status "touch a" "ok"
    (serve_req conn [ ("op", Json.Str "resolve"); ("problem", Json.Str "a") ]);
  check_status "open c evicts" "ok" (open_req conn "c");
  Alcotest.(check (list string)) "kept MRU two" [ "c"; "a" ]
    (Serve.session_names conn);
  check_status "b is gone" "error"
    (serve_req conn [ ("op", Json.Str "resolve"); ("problem", Json.Str "b") ])

let suite =
  [
    case "delta sequence matches scratch" delta_sequence_matches_scratch;
    case "stats classify resolve paths" stats_classify_paths;
    case "cycle falls back to full solve" cycle_falls_back_to_full;
    case "untouched subgraph is frozen" untouched_subgraph_is_frozen;
    case "random sessions match scratch" random_sessions;
    case "wire round-trips" wire_roundtrips;
    case "wire rejects bad envelopes" wire_rejects;
    case "serve basic flow" serve_basic_flow;
    case "serve faults and infeasible" serve_faults_and_infeasible;
    case "serve errors" serve_errors;
    case "serve LRU eviction" serve_lru_eviction;
  ]
