(* Observability layer: Json render/parse, Metrics bucketing and
   percentiles, Trace span collection/export, and the Instr bridge.

   Trace and Metrics are process-global; every test that enables them
   disables and clears them before returning so the suites stay
   order-independent. *)

open Minup_lattice
module Json = Minup_obs.Json
module Metrics = Minup_obs.Metrics
module Trace = Minup_obs.Trace
module Instr = Minup_core.Instr
module Paper = Minup_core.Paper
module SE = Minup_core.Solver.Make (Explicit)
module Engine = Minup_core.Engine.Make (Explicit)

let check = Alcotest.check
let checki = check Alcotest.int
let checks = check Alcotest.string
let checkb = check Alcotest.bool

(* --- Json ----------------------------------------------------------- *)

let roundtrip j =
  match Json.parse (Json.to_string j) with
  | Ok j' -> j'
  | Error m -> Alcotest.failf "reparse failed: %s" m

let test_json_render () =
  checks "integral without point" "42" (Json.to_string (Json.Num 42.));
  checks "negative integral" "-7" (Json.to_string (Json.Num (-7.)));
  checks "fraction" "0.5" (Json.to_string (Json.Num 0.5));
  checks "non-finite is null" "null" (Json.to_string (Json.Num Float.nan));
  checks "escapes"
    {|"a\"b\\c\nd"|}
    (Json.to_string (Json.Str "a\"b\\c\nd"));
  checks "compact object" {|{"a":1,"b":[true,null]}|}
    (Json.to_string (Json.Obj [ ("a", Num 1.); ("b", Arr [ Bool true; Null ]) ]));
  checks "pretty object" "{\n  \"a\": 1\n}"
    (Json.to_string ~pretty:true (Json.Obj [ ("a", Num 1.) ]))

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Str "héllo \"quoted\" \t tab");
        ("n", Num 3.25);
        ("i", Num 1234567.);
        ("l", Arr [ Null; Bool false; Obj []; Arr [] ]);
      ]
  in
  checkb "roundtrip equal" true (roundtrip j = j);
  (match Json.parse {|{"u": "é😀"}|} with
  | Ok j -> (
      match Json.member "u" j with
      | Some (Json.Str s) -> checks "utf8 escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
      | _ -> Alcotest.fail "missing \"u\"")
  | Error m -> Alcotest.failf "unicode parse failed: %s" m)

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "nul";
  bad "1 2";
  bad "{\"a\":1} trailing"

(* Regression: surrogate halves are not code points — a lone high half, a
   lone low half, or a high half followed by a non-low escape must be
   rejected, never smuggled through as invalid UTF-8. *)
let test_json_surrogates () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted %S" s
    | Error _ -> ()
  in
  bad {|"\ud800"|};
  bad {|"\udc00"|};
  bad {|"\ud800A"|};
  bad {|"\ud800\u0041"|};
  (match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) -> checks "astral pair decodes" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.failf "valid surrogate pair rejected: %s" m);
  (* Every string the renderer emits must reparse to valid UTF-8-bearing
     JSON, so a parse of our own render never hits the rejected forms. *)
  match Json.parse (Json.to_string (Json.Str "plain \xc3\xa9")) with
  | Ok (Json.Str s) -> checks "renderer roundtrip" "plain \xc3\xa9" s
  | _ -> Alcotest.fail "renderer output rejected"

(* Regression: the scanner enforces the JSON number grammar itself;
   [float_of_string_opt] accepts far more ("1.", "-.5", "01", "0x10"). *)
let test_json_number_grammar () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted %S" s
    | Error _ -> ()
  in
  let ok s v =
    match Json.parse s with
    | Ok (Json.Num f) ->
        checkb (Printf.sprintf "%S parses to %g" s v) true (f = v)
    | _ -> Alcotest.failf "parse rejected valid number %S" s
  in
  bad "01";
  bad "-01";
  bad "1.";
  bad "-.5";
  bad ".5";
  bad "1.e5";
  bad "1e";
  bad "1e+";
  bad "-";
  bad "0x10";
  ok "0" 0.;
  ok "-0" (-0.);
  ok "0.5" 0.5;
  ok "-12.25e-2" (-0.1225);
  ok "1E+3" 1000.

(* --- Metrics -------------------------------------------------------- *)

let with_metrics f =
  Metrics.enable ();
  Metrics.clear ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.clear ())
    f

let test_bucket_index () =
  List.iter
    (fun (v, b) ->
      checki (Printf.sprintf "bucket_index %d" v) b (Metrics.bucket_index v))
    [
      (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1023, 10);
      (1024, 11); (max_int, 62);
    ]

let test_histogram_percentiles () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test/h" in
  for v = 1 to 1000 do
    Metrics.observe h v
  done;
  checki "count" 1000 (Metrics.histogram_count h);
  let in_range name lo hi v =
    if v < lo || v > hi then
      Alcotest.failf "%s = %g not in [%g, %g]" name v lo hi
  in
  in_range "p50" 256. 512. (Metrics.percentile h 0.5);
  in_range "p90" 512. 1000. (Metrics.percentile h 0.9);
  in_range "p99" 512. 1000. (Metrics.percentile h 0.99);
  (* Percentiles are clamped to the observed extremes. *)
  in_range "p001" 1. 2. (Metrics.percentile h 0.001);
  checkb "p100 at max" true (Metrics.percentile h 1.0 = 1000.);
  let one = Metrics.histogram "test/one" in
  Metrics.observe one 777;
  checkb "single sample p50" true (Metrics.percentile one 0.5 = 777.);
  checkb "empty percentile" true
    (Metrics.percentile (Metrics.histogram "test/empty") 0.5 = 0.)

let test_metrics_registry () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test/c" in
  Metrics.incr c;
  Metrics.add c 9;
  checki "counter" 10 (Metrics.counter_value c);
  checkb "same handle" true (Metrics.counter "test/c" == c);
  let g = Metrics.gauge "test/g" in
  Metrics.set g 2.5;
  checkb "gauge" true (Metrics.gauge_value g = 2.5);
  (match Metrics.counter "test/g" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted");
  (* Snapshot shape: three sorted sections with our metrics in them. *)
  let j = Metrics.to_json () in
  (match Json.member "counters" j with
  | Some (Json.Obj fields) ->
      checkb "counter in snapshot" true
        (List.assoc_opt "test/c" fields = Some (Json.Num 10.))
  | _ -> Alcotest.fail "no counters section");
  Metrics.reset ();
  checki "reset zeroes" 0 (Metrics.counter_value c);
  checkb "reset keeps registration" true (Metrics.counter "test/c" == c)

let test_metrics_concurrent () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test/conc" in
  let h = Metrics.histogram "test/conc_h" in
  let worker () =
    for i = 1 to 10_000 do
      Metrics.incr c;
      Metrics.observe h (i land 1023)
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  checki "4x10k increments" 40_000 (Metrics.counter_value c);
  checki "4x10k samples" 40_000 (Metrics.histogram_count h)

(* --- Trace ---------------------------------------------------------- *)

let with_trace f =
  Trace.start ();
  Fun.protect ~finally:Trace.stop f

let test_trace_disabled () =
  Trace.start ();
  Trace.stop ();
  Trace.begin_span "ghost";
  Trace.end_span "ghost";
  Trace.instant "ghost";
  checki "no events when disabled" 0 (Trace.event_count ());
  checkb "with_span is transparent" true (Trace.with_span "ghost" (fun () -> true));
  checki "still none" 0 (Trace.event_count ())

let test_trace_nesting () =
  with_trace (fun () ->
      Trace.with_span ~cat:"t" "outer" (fun () ->
          Trace.instant ~args:[ ("k", Trace.Int 3) ] "mark";
          Trace.with_span ~cat:"t" "inner" Fun.id);
      Trace.span_at ~start_ns:5L ~end_ns:9L "retro");
  let phs =
    List.map (fun (e : Trace.event) -> (e.ph, e.name)) (Trace.events ())
  in
  (* span_at's explicit 5ns..9ns timestamps sort before the wall-clock
     events of the live spans. *)
  checkb "event sequence" true
    (phs
    = [
        ('B', "retro"); ('E', "retro"); ('B', "outer"); ('i', "mark");
        ('B', "inner"); ('E', "inner"); ('E', "outer");
      ]);
  (* start() drops previously collected events. *)
  with_trace (fun () -> Trace.instant "fresh");
  checki "start clears" 1 (Trace.event_count ())

(* Walk exported traceEvents checking every B has a matching same-name E on
   the same tid, properly nested — the contract chrome://tracing needs. *)
let check_chrome_json j =
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.Arr es) -> es
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let stacks = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let str k =
        match Json.member k e with Some (Json.Str s) -> s | _ -> "?"
      in
      let tid =
        match Json.member "tid" e with
        | Some (Json.Num v) -> int_of_float v
        | _ -> Alcotest.fail "event without tid"
      in
      match str "ph" with
      | "B" ->
          Hashtbl.replace stacks tid
            (str "name"
            :: Option.value (Hashtbl.find_opt stacks tid) ~default:[])
      | "E" -> (
          match Hashtbl.find_opt stacks tid with
          | Some (top :: rest) when top = str "name" ->
              Hashtbl.replace stacks tid rest
          | _ -> Alcotest.failf "unmatched E %S on tid %d" (str "name") tid)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid -> function
      | [] -> ()
      | names ->
          Alcotest.failf "tid %d has unclosed spans: %s" tid
            (String.concat "," names))
    stacks;
  events

let test_trace_export () =
  with_trace (fun () ->
      Trace.with_span ~args:[ ("n", Trace.Int 1) ] "a" (fun () ->
          Trace.with_span "b" Fun.id;
          Trace.with_span "b" Fun.id));
  let j = roundtrip (Trace.to_json ()) in
  let events = check_chrome_json j in
  (* 6 span events + process_name + one thread_name for the only tid. *)
  checki "event count" 8 (List.length events);
  let spans =
    List.filter (fun e -> Json.member "ph" e = Some (Json.Str "B")) events
  in
  checki "B events" 3 (List.length spans)

(* --- instrumentation: observing must not change solver counters ------ *)

let fig2_problem () =
  SE.compile_exn ~lattice:Paper.fig1b ~attrs:Paper.fig2_attrs
    Paper.fig2_constraints

let test_observed_solve_identity () =
  let baseline = (SE.solve (fig2_problem ())).SE.stats in
  let traced =
    with_trace (fun () -> (SE.solve (fig2_problem ())).SE.stats)
  in
  let metered =
    with_metrics (fun () -> (SE.solve (fig2_problem ())).SE.stats)
  in
  checkb "traced solve counters identical" true
    (Instr.to_alist traced = Instr.to_alist baseline);
  checkb "metered solve counters identical" true
    (Instr.to_alist metered = Instr.to_alist baseline);
  checkb "tracing produced solver spans" true
    (List.exists
       (fun (e : Trace.event) -> e.ph = 'B' && e.name = "solve")
       (Trace.events ()))

let test_engine_trace () =
  let problems = Array.init 4 (fun _ -> fig2_problem ()) in
  let reference = Engine.ok_exn (Engine.solve_batch ~jobs:1 problems) in
  let report =
    with_trace (fun () -> Engine.solve_batch ~jobs:2 problems)
  in
  Array.iteri
    (fun i (s : SE.solution) ->
      checkb (Printf.sprintf "solution %d matches sequential" i) true
        (s.SE.levels = reference.(i).SE.levels))
    (Engine.ok_exn report);
  let events = check_chrome_json (roundtrip (Trace.to_json ())) in
  let count name ph =
    List.length
      (List.filter
         (fun e ->
           Json.member "name" e = Some (Json.Str name)
           && Json.member "ph" e = Some (Json.Str ph))
         events)
  in
  checki "worker spans" 2 (count "worker" "B");
  checki "solve_task spans" 4 (count "solve_task" "B");
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Trace.event) ->
           if e.name = "worker" && e.ph = 'B' then Some e.tid else None)
         (Trace.events ()))
  in
  checki "workers on distinct domains" 2 (List.length tids)

(* --- Instr bridge ---------------------------------------------------- *)

let sample_instr () =
  let t = Instr.create () in
  t.Instr.lub <- 1;
  t.Instr.glb <- 2;
  t.Instr.leq <- 3;
  t.Instr.minlevel_calls <- 4;
  t.Instr.try_calls <- 5;
  t.Instr.try_iterations <- 6;
  t.Instr.constraint_checks <- 7;
  t

let test_instr_pp_order () =
  (* Regression: pp prints the documented declaration order, in particular
     try_iters before checks. *)
  checks "pp order" "lub=1 glb=2 leq=3 minlevel=4 try=5 try_iters=6 checks=7"
    (Format.asprintf "%a" Instr.pp (sample_instr ()))

let test_instr_json_roundtrip () =
  let t = sample_instr () in
  (match Instr.of_json (roundtrip (Instr.to_json t)) with
  | Ok t' -> checkb "roundtrip" true (Instr.to_alist t' = Instr.to_alist t)
  | Error m -> Alcotest.failf "of_json failed: %s" m);
  (* Field order in the document must not matter. *)
  (match
     Instr.of_json
       (Json.Obj
          (List.rev_map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             (Instr.to_alist t)))
   with
  | Ok t' -> checkb "reversed order" true (Instr.to_alist t' = Instr.to_alist t)
  | Error m -> Alcotest.failf "reversed order rejected: %s" m);
  let rejects j = match Instr.of_json j with Ok _ -> false | Error _ -> true in
  checkb "rejects non-object" true (rejects (Json.Num 3.));
  checkb "rejects missing field" true (rejects (Json.Obj [ ("lub", Json.Num 1.) ]));
  checkb "rejects non-integer" true
    (rejects
       (Json.Obj
          (List.map
             (fun (k, _) -> (k, Json.Num 0.5))
             (Instr.to_alist (Instr.create ())))))

let test_instr_to_metrics () =
  with_metrics @@ fun () ->
  Instr.to_metrics (sample_instr ());
  Instr.to_metrics (sample_instr ());
  checki "instr/lub summed" 2 (Metrics.counter_value (Metrics.counter "instr/lub"));
  checki "instr/constraint_checks summed" 14
    (Metrics.counter_value (Metrics.counter "instr/constraint_checks"))

let suite =
  [
    Alcotest.test_case "json render" `Quick test_json_render;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json surrogate escapes" `Quick test_json_surrogates;
    Alcotest.test_case "json number grammar" `Quick test_json_number_grammar;
    Alcotest.test_case "histogram bucket_index" `Quick test_bucket_index;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics concurrent" `Quick test_metrics_concurrent;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
    Alcotest.test_case "trace nesting" `Quick test_trace_nesting;
    Alcotest.test_case "trace export" `Quick test_trace_export;
    Alcotest.test_case "observed solve identity" `Quick
      test_observed_solve_identity;
    Alcotest.test_case "engine batch trace" `Quick test_engine_trace;
    Alcotest.test_case "instr pp order" `Quick test_instr_pp_order;
    Alcotest.test_case "instr json roundtrip" `Quick test_instr_json_roundtrip;
    Alcotest.test_case "instr to_metrics" `Quick test_instr_to_metrics;
  ]
