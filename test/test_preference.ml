(* The upgrade-preference knob: §3.1 notes that which minimal solution is
   produced depends on the order of constraint evaluation; the solver
   exposes that order.  Whatever the preference, results stay minimal. *)

open Helpers

let case = Helpers.case

let both_sec31_solutions_reachable () =
  let p = S.compile_exn ~lattice:fig1b Minup_core.Paper.sec31_constraints in
  let solve_pref preferred =
    let sol =
      S.solve ~config:(S.Config.make ~upgrade_preference:(fun a -> if a = preferred then 1 else 0) ()) p
    in
    List.map
      (fun (a, l) -> (a, Minup_lattice.Explicit.level_to_string fig1b l))
      sol.S.assignment
    |> List.sort compare
  in
  (* Prefer upgrading B: B absorbs the association constraint. *)
  Alcotest.(check (list (pair string string)))
    "prefer B" [ ("A", "L1"); ("B", "L4") ] (solve_pref "B");
  (* Prefer upgrading A: A absorbs it instead. *)
  Alcotest.(check (list (pair string string)))
    "prefer A" [ ("A", "L3"); ("B", "L2") ] (solve_pref "A")

let preference_preserves_minimality =
  QCheck.Test.make ~count:40 ~name:"any preference still yields a minimal solution"
    QCheck.(pair Helpers.seed_arb Helpers.seed_arb)
    (fun (seed, pref_seed) ->
      let rng = Minup_workload.Prng.create seed in
      let lat =
        Minup_workload.Gen_lattice.random_closure_exn rng ~universe:4
          ~n_generators:3 ~max_size:12
      in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 5;
            n_simple = 4;
            n_complex = 2;
            max_lhs = 3;
            n_constants = 2;
            constants = Minup_lattice.Explicit.all lat;
          }
      in
      let attrs, csts =
        if Minup_workload.Prng.bool rng then
          Minup_workload.Gen_constraints.acyclic rng spec
        else Minup_workload.Gen_constraints.single_scc rng spec
      in
      let p = S.compile_exn ~lattice:lat ~attrs csts in
      let pref a = Hashtbl.hash (pref_seed, a) mod 7 in
      let sol = S.solve ~config:(S.Config.make ~upgrade_preference:pref ()) p in
      S.satisfies p sol.S.levels
      &&
      match V.is_minimal_solution ~cap:250_000 p sol.S.levels with
      | Ok b -> b
      | Error `Too_large -> true)

let fig2_stable_under_default () =
  (* Zero preference must not change the documented Fig. 2 behavior. *)
  let p =
    S.compile_exn ~lattice:fig1b ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let plain = S.solve p in
  let pref = S.solve ~config:(S.Config.make ~upgrade_preference:(fun _ -> 0) ()) p in
  Alcotest.(check bool) "identical" true
    (Array.for_all2 (Minup_lattice.Explicit.equal fig1b) plain.S.levels pref.S.levels)

let suite =
  [
    case "both §3.1 solutions reachable" both_sec31_solutions_reachable;
    Helpers.qcheck preference_preserves_minimality;
    case "neutral preference = default" fig2_stable_under_default;
  ]
