open Minup_lattice
module Cst = Minup_constraints.Cst
module Parse = Minup_constraints.Parse

let case = Helpers.case

let sample =
  {|
# employee classification policy
attrs name, salary

salary >= Confidential
{name, salary} >= Secret        # association
lub{rank, department} >= salary # inference, lub keyword optional
name <= Secret
|}

let ladder = Total.create [ "Unclassified"; "Confidential"; "Secret"; "TopSecret" ]

let parse_ok () =
  match Parse.parse sample with
  | Error e -> Alcotest.failf "parse error: %a" Parse.pp_error e
  | Ok ast ->
      Alcotest.(check (list string)) "decls" [ "name"; "salary" ] ast.Parse.decls;
      Alcotest.(check int) "3 lowers" 3 (List.length ast.Parse.lowers);
      Alcotest.(check (list (triple int string string)))
        "uppers"
        [ (8, "name", "Secret") ]
        ast.Parse.uppers;
      let lhss = List.map (fun (_, lhs, _) -> lhs) ast.Parse.lowers in
      Alcotest.(check (list (list string)))
        "lhss"
        [ [ "salary" ]; [ "name"; "salary" ]; [ "rank"; "department" ] ]
        lhss;
      (* Source lines survive parsing (the sample starts with a blank line). *)
      Alcotest.(check (list int))
        "lower lines" [ 5; 6; 7 ]
        (List.map (fun (l, _, _) -> l) ast.Parse.lowers)

let resolve_ok () =
  match Parse.parse_resolve ~level_of_string:(Total.level_of_string ladder) sample with
  | Error e -> Alcotest.failf "resolve error: %a" Parse.pp_error e
  | Ok r ->
      Alcotest.(check (list string)) "attrs"
        [ "name"; "salary"; "rank"; "department" ]
        r.Parse.attrs;
      (* salary >= Confidential resolves to a level; the inference rhs
         resolves to the declared attribute salary even though no level
         named salary exists. *)
      (match (List.nth r.Parse.csts 0).Cst.rhs with
      | Cst.Level l -> Alcotest.(check int) "level" 1 l
      | Cst.Attr _ -> Alcotest.fail "expected level rhs");
      (match (List.nth r.Parse.csts 2).Cst.rhs with
      | Cst.Attr "salary" -> ()
      | _ -> Alcotest.fail "expected attr rhs");
      Alcotest.(check int) "upper bound" 2 (snd (List.hd r.Parse.upper_bounds))

let attr_shadows_level () =
  (* A declared attribute named like a level wins. *)
  let text = "attrs Secret\nSecret >= TopSecret\nother >= Secret\n" in
  match Parse.parse_resolve ~level_of_string:(Total.level_of_string ladder) text with
  | Error e -> Alcotest.failf "error: %a" Parse.pp_error e
  | Ok r -> (
      match (List.nth r.Parse.csts 1).Cst.rhs with
      | Cst.Attr "Secret" -> ()
      | _ -> Alcotest.fail "declared attribute should shadow the level")

let compartment_rhs () =
  let text = "cargo >= TS:{Army,Nuclear}\n" in
  let lat = Compartment.fig1a in
  match
    Parse.parse_resolve ~level_of_string:(Compartment.level_of_string lat) text
  with
  | Error e -> Alcotest.failf "error: %a" Parse.pp_error e
  | Ok r -> (
      match (List.hd r.Parse.csts).Cst.rhs with
      | Cst.Level l ->
          Alcotest.(check string) "level" "TS:{Army,Nuclear}"
            (Compartment.level_to_string lat l)
      | Cst.Attr _ -> Alcotest.fail "expected level")

let errors () =
  (match Parse.parse "salary >=\n" with
  | Error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "accepted empty rhs");
  (match Parse.parse "x\n{a,b} >= c\ngarbage line here\n" with
  | Error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "accepted garbage");
  (match Parse.parse "{a, b} <= Secret\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted multi-attr upper bound");
  (match Parse.parse "{a,, b} >= c\n" with
  (* empty entries are skipped; this parses *)
  | Ok ast ->
      let _, lhs, _ = List.hd ast.Parse.lowers in
      Alcotest.(check int) "lhs size" 2 (List.length lhs)
  | Error _ -> Alcotest.fail "comma tolerance");
  match
    Parse.parse_resolve ~level_of_string:(Total.level_of_string ladder)
      "a <= NotALevel\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown upper bound level"

(* Regression: "attrs" is a keyword only when it stands alone or is
   followed by whitespace.  A bare "attrs" line is an empty declaration;
   an identifier that merely starts with "attrs" is an ordinary
   constraint line, not a mis-lexed declaration list. *)
let attrs_keyword () =
  (match Parse.parse "attrs\n" with
  | Ok ast -> Alcotest.(check (list string)) "bare attrs" [] ast.Parse.decls
  | Error e -> Alcotest.failf "bare attrs rejected: %a" Parse.pp_error e);
  (match Parse.parse "attrs\ta, b\n" with
  | Ok ast ->
      Alcotest.(check (list string)) "tab after attrs" [ "a"; "b" ] ast.Parse.decls
  | Error e -> Alcotest.failf "tab-separated attrs rejected: %a" Parse.pp_error e);
  (match Parse.parse "attrset >= x\n" with
  | Ok ast -> (
      Alcotest.(check (list string)) "no decls" [] ast.Parse.decls;
      match ast.Parse.lowers with
      | [ (1, [ "attrset" ], "x") ] -> ()
      | _ -> Alcotest.fail "attrset >= x should be one constraint")
  | Error e ->
      Alcotest.failf "attrset >= x mis-lexed as declaration: %a" Parse.pp_error e)

(* Regression: resolve-stage errors carry the source line of the offending
   constraint, not a fabricated line 0. *)
let resolve_line_numbers () =
  (match
     Parse.parse_resolve ~level_of_string:(Total.level_of_string ladder)
       "a >= Secret\nb >= Secret\nc <= NotALevel\n"
   with
  | Error { line = 3; _ } -> ()
  | Error { line; _ } ->
      Alcotest.failf "upper-bound error reported at line %d, want 3" line
  | Ok _ -> Alcotest.fail "accepted unknown upper-bound level");
  match
    Parse.parse_resolve ~level_of_string:(Total.level_of_string ladder)
      "a >= Secret\n{x, x} >= Secret\n"
  with
  | Error { line = 2; _ } -> ()
  | Error { line; _ } ->
      Alcotest.failf "duplicate-lhs error reported at line %d, want 2" line
  | Ok _ -> Alcotest.fail "accepted duplicate lhs"

let comments_and_blanks () =
  match Parse.parse "\n  \n# only comments\n" with
  | Ok ast ->
      Alcotest.(check int) "no constraints" 0 (List.length ast.Parse.lowers)
  | Error e -> Alcotest.failf "error: %a" Parse.pp_error e


(* render ∘ parse_resolve round-trips policies, including compartmented
   level syntax on the right-hand side. *)
let render_roundtrip =
  QCheck.Test.make ~count:60 ~name:"render/parse_resolve round-trip"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat = Compartment.fig1a in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 6;
            n_simple = 4;
            n_complex = 3;
            max_lhs = 3;
            n_constants = 3;
            constants = List.of_seq (Compartment.levels lat);
          }
      in
      let attrs, csts = Minup_workload.Gen_constraints.acyclic rng spec in
      let r = Parse.{ attrs; csts; upper_bounds = [ (List.hd attrs, Compartment.top lat) ] } in
      let text = Parse.render ~level_to_string:(Compartment.level_to_string lat) r in
      match
        Parse.parse_resolve ~level_of_string:(Compartment.level_of_string lat) text
      with
      | Error _ -> false
      | Ok r' ->
          r'.Parse.attrs = r.Parse.attrs
          && List.length r'.Parse.csts = List.length r.Parse.csts
          && List.for_all2
               (fun (a : _ Cst.t) (b : _ Cst.t) ->
                 a.Cst.lhs = b.Cst.lhs
                 &&
                 match (a.Cst.rhs, b.Cst.rhs) with
                 | Cst.Attr x, Cst.Attr y -> x = y
                 | Cst.Level x, Cst.Level y -> Compartment.equal lat x y
                 | _ -> false)
               r.Parse.csts r'.Parse.csts
          && List.length r'.Parse.upper_bounds = 1)

let suite =
  [
    case "parse" parse_ok;
    case "resolve" resolve_ok;
    case "attribute shadows level" attr_shadows_level;
    case "compartmented level rhs" compartment_rhs;
    case "errors" errors;
    case "attrs keyword boundary" attrs_keyword;
    case "resolve errors carry line numbers" resolve_line_numbers;
    case "comments and blanks" comments_and_blanks;
    Helpers.qcheck render_roundtrip;
  ]
