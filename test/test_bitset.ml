open Minup_lattice

let case = Helpers.case

let basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.set s 0;
  Bitset.set s 63;
  Bitset.set s 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" false (Bitset.mem s 64);
  Bitset.clear s 63;
  Alcotest.(check bool) "cleared" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Bitset.to_list s)

let bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "set oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set s 10);
  Alcotest.check_raises "neg" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem s (-1)))

let set_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 3; 65 ] and b = Bitset.of_list 70 [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 65 ]
    (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "diff" [ 1; 65 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  Alcotest.(check bool) "disjoint no" false (Bitset.disjoint a b);
  Alcotest.(check bool) "disjoint yes" true
    (Bitset.disjoint (Bitset.of_list 70 [ 0 ]) (Bitset.of_list 70 [ 69 ]))

let min_max () =
  let s = Bitset.of_list 200 [ 64; 127; 128; 199 ] in
  Alcotest.(check (option int)) "min" (Some 64) (Bitset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 199) (Bitset.max_elt s);
  let e = Bitset.create 200 in
  Alcotest.(check (option int)) "min empty" None (Bitset.min_elt e);
  Alcotest.(check (option int)) "max empty" None (Bitset.max_elt e)

let in_place () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 65; 66 ] in
  let c = Bitset.copy a in
  Bitset.inter_into c b;
  Alcotest.(check (list int)) "inter_into" [ 2; 65 ] (Bitset.to_list c);
  let d = Bitset.copy a in
  Bitset.union_into d b;
  Alcotest.(check (list int)) "union_into" [ 1; 2; 65; 66 ] (Bitset.to_list d);
  (* originals untouched *)
  Alcotest.(check (list int)) "copy isolated" [ 1; 2; 65 ] (Bitset.to_list a)

let capacity_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.inter (Bitset.create 10) (Bitset.create 11)))

(* Model-based property: a random sequence of operations agrees with a
   sorted-list model. *)
let model_prop =
  QCheck.Test.make ~count:200 ~name:"bitset agrees with list model"
    QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (xs, ys) ->
      let cap = 64 in
      let a = Bitset.of_list cap xs and b = Bitset.of_list cap ys in
      let mx = List.sort_uniq compare xs and my = List.sort_uniq compare ys in
      let inter = List.filter (fun x -> List.mem x my) mx in
      let union = List.sort_uniq compare (mx @ my) in
      Bitset.to_list (Bitset.inter a b) = inter
      && Bitset.to_list (Bitset.union a b) = union
      && Bitset.cardinal a = List.length mx
      && Bitset.subset a b = List.for_all (fun x -> List.mem x my) mx
      && Bitset.equal a b = (mx = my)
      && Bitset.min_elt a = (match mx with [] -> None | x :: _ -> Some x))

(* Reference popcount: the pre-SWAR bit-at-a-time loop. *)
let popcount_naive x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let popcount_swar () =
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "popcount %#x" x)
        (popcount_naive x) (Bitset.popcount x))
    [
      0; 1; 2; 3; max_int; min_int; -1; 0x5A5A5A5A; 1 lsl 62;
      (1 lsl 62) lor 1; max_int - 1; 0x0F0F0F0F0F0F0F0; lnot 0x33333333;
    ]

let popcount_prop =
  QCheck.Test.make ~count:1000 ~name:"SWAR popcount agrees with naive loop"
    QCheck.int
    (fun x -> Bitset.popcount x = popcount_naive x)

(* The word-skipping iter/fold/min_elt/max_elt fast paths must still visit
   exactly the members, in order, over sparse sets spanning many words. *)
let sparse_scan () =
  let members = [ 0; 62; 63; 64; 125; 126; 189; 440; 441; 699 ] in
  let s = Bitset.of_list 700 members in
  Alcotest.(check (list int)) "to_list" members (Bitset.to_list s);
  let visited = ref [] in
  Bitset.iter (fun i -> visited := i :: !visited) s;
  Alcotest.(check (list int)) "iter order" members (List.rev !visited);
  Alcotest.(check int) "fold sum"
    (List.fold_left ( + ) 0 members)
    (Bitset.fold ( + ) s 0);
  Alcotest.(check (option int)) "min" (Some 0) (Bitset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 699) (Bitset.max_elt s);
  Alcotest.(check int) "cardinal" (List.length members) (Bitset.cardinal s)

let fold_min_max_prop =
  QCheck.Test.make ~count:500
    ~name:"fold/min_elt/max_elt agree with list model across words"
    QCheck.(small_list (int_bound 320))
    (fun xs ->
      let m = List.sort_uniq compare xs in
      let s = Bitset.of_list 321 xs in
      Bitset.fold (fun i acc -> i :: acc) s [] = List.rev m
      && Bitset.min_elt s = (match m with [] -> None | x :: _ -> Some x)
      && Bitset.max_elt s
         = (match List.rev m with [] -> None | x :: _ -> Some x))

let suite =
  [
    case "basic set/clear/mem" basic;
    case "SWAR popcount vs naive" popcount_swar;
    Helpers.qcheck popcount_prop;
    case "sparse word-skipping scans" sparse_scan;
    Helpers.qcheck fold_min_max_prop;
    case "bounds checking" bounds;
    case "set operations" set_ops;
    case "min/max element" min_max;
    case "in-place operations" in_place;
    case "capacity mismatch" capacity_mismatch;
    Helpers.qcheck model_prop;
  ]
