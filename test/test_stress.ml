(* Stress shapes that exercise the complexity-bound parameters directly:
   very tall lattices (H), wide branching (B), and degenerate constraint
   shapes.  These guard the termination arguments (Try re-entry is bounded
   by H; Minlevel walks at most H·B covers). *)

open Minup_lattice
module ST = Minup_core.Solver.Make (Total)
module SP = Minup_core.Solver.Make (Powerset)
module ExT = Minup_core.Explain.Make (Total)
module Cst = Minup_constraints.Cst

let case = Helpers.case

let tall_lattice_cycle () =
  (* H = 499; a 3-cycle must walk the whole ladder down to its floor. *)
  let lat = Total.anonymous 500 in
  let csts =
    [
      Cst.simple "a" (Cst.Attr "b");
      Cst.simple "b" (Cst.Attr "c");
      Cst.simple "c" (Cst.Attr "a");
      Cst.simple "b" (Cst.Level 123);
    ]
  in
  let p = ST.compile_exn ~lattice:lat csts in
  let sol = ST.solve p in
  Array.iter (fun l -> Alcotest.(check int) "all at 123" 123 l) sol.ST.levels;
  Alcotest.(check bool) "minimal" true (ExT.is_locally_minimal p sol.ST.levels)

let tall_lattice_complex_cycle () =
  let lat = Total.anonymous 300 in
  let csts =
    [
      Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "c");
      Cst.simple "c" (Cst.Attr "a");
      Cst.simple "c" (Cst.Level 200);
      Cst.simple "b" (Cst.Level 50);
    ]
  in
  let p = ST.compile_exn ~lattice:lat csts in
  let sol = ST.solve p in
  Alcotest.(check bool) "satisfies" true (ST.satisfies p sol.ST.levels);
  Alcotest.(check bool) "minimal" true (ExT.is_locally_minimal p sol.ST.levels)

let wide_branching () =
  (* Powerset of 16: branching factor 16, 65536 levels — never enumerated,
     only walked. *)
  let lat = Powerset.create (List.init 16 (Printf.sprintf "e%d")) in
  let set es = Cst.Level (Powerset.of_elements_exn lat (List.map (Printf.sprintf "e%d") es)) in
  let csts =
    [
      Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(set [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
      Cst.simple "a" (set [ 0; 1 ]);
      Cst.simple "b" (set [ 6; 7 ]);
      Cst.simple "c" (Cst.Attr "a");
      (* and a cycle *)
      Cst.simple "d" (Cst.Attr "e");
      Cst.simple "e" (Cst.Attr "d");
      Cst.simple "d" (set [ 9; 10; 11 ]);
    ]
  in
  let p = SP.compile_exn ~lattice:lat csts in
  let plain = SP.solve p in
  let fast = SP.solve ~config:(SP.Config.make ~residual:Powerset.residual ()) p in
  Alcotest.(check bool) "satisfies" true (SP.satisfies p plain.SP.levels);
  Alcotest.(check bool) "fast path agrees" true (plain.SP.levels = fast.SP.levels);
  let module ExP = Minup_core.Explain.Make (Powerset) in
  Alcotest.(check bool) "minimal" true (ExP.is_locally_minimal p plain.SP.levels)

let degenerate_shapes () =
  let lat = Total.anonymous 4 in
  (* Duplicate constraints, trivial (dropped) constraints, self-sufficient
     complex constraints — none should disturb the result. *)
  let csts =
    [
      Cst.simple "a" (Cst.Level 2);
      Cst.simple "a" (Cst.Level 2);
      Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Attr "a") (* trivial: dropped *);
      Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(Cst.Level 1);
    ]
  in
  let p = ST.compile_exn ~lattice:lat csts in
  let sol = ST.solve p in
  Alcotest.(check bool) "satisfies" true (ST.satisfies p sol.ST.levels);
  let l name = Option.get (ST.find p sol name) in
  Alcotest.(check int) "a at 2" 2 (l "a");
  Alcotest.(check int) "b stays bottom" 0 (l "b")

let huge_lhs () =
  (* One association over 200 attributes with a single floored member. *)
  let lat = Total.anonymous 8 in
  let attrs = List.init 200 (Printf.sprintf "x%d") in
  let csts =
    [
      Cst.make_exn ~lhs:attrs ~rhs:(Cst.Level 7);
      Cst.simple "x0" (Cst.Level 7);
    ]
  in
  let p = ST.compile_exn ~lattice:lat ~attrs csts in
  let sol = ST.solve p in
  Alcotest.(check bool) "satisfies" true (ST.satisfies p sol.ST.levels);
  (* x0's floor already covers the association: everyone else at ⊥. *)
  List.iteri
    (fun i a ->
      Alcotest.(check int) a (if i = 0 then 7 else 0) (Option.get (ST.find p sol a)))
    attrs

let long_chain_backprop () =
  (* 5000-attribute simple chain: exercises the iterative DFS (no stack
     overflow) and linear back-propagation. *)
  let lat = Total.anonymous 4 in
  let n = 5000 in
  let attrs = List.init n (Printf.sprintf "c%d") in
  let csts =
    Cst.simple (Printf.sprintf "c%d" (n - 1)) (Cst.Level 3)
    :: List.init (n - 1) (fun i ->
           Cst.simple (Printf.sprintf "c%d" i) (Cst.Attr (Printf.sprintf "c%d" (i + 1))))
  in
  let p = ST.compile_exn ~lattice:lat ~attrs csts in
  let sol = ST.solve p in
  Alcotest.(check int) "head reaches the floor" 3 (Option.get (ST.find p sol "c0"))

let suite =
  [
    case "tall lattice, simple cycle" tall_lattice_cycle;
    case "tall lattice, complex cycle" tall_lattice_complex_cycle;
    case "wide branching (2^16 levels)" wide_branching;
    case "degenerate constraint shapes" degenerate_shapes;
    case "huge left-hand side" huge_lhs;
    case "5000-attribute chain" long_chain_backprop;
  ]
