(* The solver's incremental lhs-lub aggregate (one running lub of finalized
   left-hand-side members per complex constraint) replaces the per-Minlevel
   refold of the whole lhs.  [~check_aggregate:true] makes every Minlevel
   call cross-check the aggregate against the reference refold and raise on
   the first divergence, so these properties fail loudly if the
   finalization invariants (finalized levels never change; [done_] ≡
   finalized away from the attribute under consideration) are ever
   broken. *)

open Minup_lattice
module S = Helpers.S
module Gen = Minup_workload.Gen_constraints
module Gen_lattice = Minup_workload.Gen_lattice
module Instr = Minup_core.Instr

let case = Helpers.case

let random_problem seed =
  let rng = Minup_workload.Prng.create seed in
  let lat =
    Gen_lattice.random_closure_exn rng ~universe:5 ~n_generators:4 ~max_size:40
  in
  let spec =
    {
      Gen.n_attrs = 16;
      n_simple = 22;
      n_complex = 8;
      max_lhs = 4;
      n_constants = 6;
      constants = Explicit.all lat;
    }
  in
  let attrs, csts =
    match seed mod 3 with
    | 0 -> Gen.acyclic rng spec
    | 1 -> Gen.single_scc rng spec
    | _ -> Gen.mixed rng spec ~n_islands:2 ~island_size:4
  in
  S.compile_exn ~lattice:lat ~attrs csts

let fields (s : Instr.t) =
  [
    s.Instr.lub;
    s.Instr.glb;
    s.Instr.leq;
    s.Instr.minlevel_calls;
    s.Instr.try_calls;
    s.Instr.try_iterations;
    s.Instr.constraint_checks;
  ]

(* On random Explicit lattices and all three workload shapes, the
   self-checking solve must complete (aggregate = refold at every Minlevel),
   return the same solution as the plain solve, and — the reference fold
   being uninstrumented — identical counters. *)
let aggregate_matches_refold =
  QCheck.Test.make ~count:120
    ~name:"incremental lhs-lub aggregate = reference refold" Helpers.seed_arb
    (fun seed ->
      let p = random_problem seed in
      let checked = S.solve ~config:(S.Config.make ~check_aggregate:true ()) p in
      let plain = S.solve p in
      checked.S.levels = plain.S.levels
      && fields checked.S.stats = fields plain.S.stats
      && S.satisfies p checked.S.levels)

(* Bounds mode is the aggregate's hard case: Minlevel runs for every
   attribute of every complex constraint, so the fold-on-top-of-aggregate
   path (provisional members) is exercised, not just the O(1) fast path. *)
let aggregate_matches_refold_bounds =
  QCheck.Test.make ~count:120
    ~name:"aggregate = refold under upper-bound preprocessing"
    Helpers.seed_arb
    (fun seed ->
      let p = random_problem seed in
      match S.solve_with_bounds ~config:(S.Config.make ~check_aggregate:true ()) p [] with
      | Ok sol -> S.satisfies p sol.S.levels
      | Error _ -> false)

(* The paper's Figure 2 run, self-checked, still yields Figure 2(b). *)
let paper_example_checked () =
  let lattice = Minup_core.Paper.fig1b in
  let p =
    S.compile_exn ~lattice ~attrs:Minup_core.Paper.fig2_attrs
      Minup_core.Paper.fig2_constraints
  in
  let checked = S.solve ~config:(S.Config.make ~check_aggregate:true ()) p in
  let plain = S.solve p in
  Alcotest.(check (array int)) "same levels" plain.S.levels checked.S.levels;
  Alcotest.(check (list int)) "same counters" (fields plain.S.stats)
    (fields checked.S.stats)

let suite =
  [
    Helpers.qcheck aggregate_matches_refold;
    Helpers.qcheck aggregate_matches_refold_bounds;
    case "paper Figure 2 under self-check" paper_example_checked;
  ]
