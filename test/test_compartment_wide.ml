open Minup_lattice

let case = Helpers.case
let small = Compartment_wide.create ~classifications:[ "S"; "TS" ] ~categories:[ "A"; "N"; "X" ]
let wt = Alcotest.testable (Compartment_wide.pp_level small) (Compartment_wide.equal small)

let laws () =
  let module Laws = Check.Laws (Compartment_wide) in
  match Laws.check ~max_size:64 small with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let agrees_with_narrow () =
  (* On ≤62 categories the wide and narrow implementations must agree on
     every operation, via the string rendering. *)
  let narrow = Compartment.create ~classifications:[ "S"; "TS" ] ~categories:[ "A"; "N"; "X" ] in
  let to_wide l =
    Option.get
      (Compartment_wide.level_of_string small (Compartment.level_to_string narrow l))
  in
  Seq.iter
    (fun a ->
      Seq.iter
        (fun b ->
          let wa = to_wide a and wb = to_wide b in
          Alcotest.(check bool) "leq agrees"
            (Compartment.leq narrow a b)
            (Compartment_wide.leq small wa wb);
          Alcotest.(check string) "lub agrees"
            (Compartment.level_to_string narrow (Compartment.lub narrow a b))
            (Compartment_wide.level_to_string small (Compartment_wide.lub small wa wb));
          Alcotest.(check string) "glb agrees"
            (Compartment.level_to_string narrow (Compartment.glb narrow a b))
            (Compartment_wide.level_to_string small (Compartment_wide.glb small wa wb)))
        (Compartment.levels narrow))
    (Compartment.levels narrow)

let beyond_machine_word () =
  (* 100 categories: more than any single word holds. *)
  let big = Compartment_wide.dod ~n_categories:100 in
  Alcotest.(check int) "categories" 100 (Compartment_wide.n_categories big);
  Alcotest.(check int) "height" 103 (Compartment_wide.height big);
  Alcotest.(check (option int)) "size overflows" None (Compartment_wide.size big);
  let cats_a = List.init 70 (Printf.sprintf "K%d") in
  let a = Compartment_wide.make_exn big ~cls:"S" ~cats:cats_a in
  let b = Compartment_wide.make_exn big ~cls:"TS" ~cats:[ "K0"; "K99" ] in
  Alcotest.(check bool) "incomparable 1" false (Compartment_wide.leq big a b);
  Alcotest.(check bool) "incomparable 2" false (Compartment_wide.leq big b a);
  let l = Compartment_wide.lub big a b in
  Alcotest.(check int) "lub cats" 71
    (List.length (Compartment_wide.category_names big l));
  Alcotest.(check string) "lub cls" "TS" (Compartment_wide.classification_name big l);
  (* covers: drop one of 71 categories or step the ladder down. *)
  Alcotest.(check int) "covers" 72 (List.length (Compartment_wide.covers_below big l));
  (* Dominance after lub. *)
  Alcotest.(check bool) "a ⊑ lub" true (Compartment_wide.leq big a l);
  Alcotest.(check bool) "b ⊑ lub" true (Compartment_wide.leq big b l)

let roundtrip () =
  let l = Compartment_wide.make_exn small ~cls:"TS" ~cats:[ "A"; "X" ] in
  Alcotest.(check string) "render" "TS:{A,X}" (Compartment_wide.level_to_string small l);
  Alcotest.(check (option wt)) "parse" (Some l)
    (Compartment_wide.level_of_string small "TS:{A,X}");
  Alcotest.(check (option wt)) "bare cls"
    (Some (Compartment_wide.make_exn small ~cls:"S" ~cats:[]))
    (Compartment_wide.level_of_string small "S")

let residual_least () =
  let lvl cls cats = Compartment_wide.make_exn small ~cls ~cats in
  let target = lvl "TS" [ "A"; "N" ] and others = lvl "S" [ "N"; "X" ] in
  let r = Compartment_wide.residual small ~target ~others in
  Alcotest.check wt "residual" (lvl "TS" [ "A" ]) r;
  Alcotest.(check bool) "sufficient" true
    (Compartment_wide.leq small target (Compartment_wide.lub small r others))

let solver_over_wide () =
  (* End-to-end: the functor works over the wide lattice, with and without
     the residual fast path. *)
  let module SW = Minup_core.Solver.Make (Compartment_wide) in
  let big = Compartment_wide.dod ~n_categories:80 in
  let lvl cls cats = Minup_constraints.Cst.Level (Compartment_wide.make_exn big ~cls ~cats) in
  let csts =
    [
      Minup_constraints.Cst.simple "a" (lvl "C" [ "K5"; "K70" ]);
      Minup_constraints.Cst.simple "b" (Minup_constraints.Cst.Attr "a");
      Minup_constraints.Cst.make_exn ~lhs:[ "b"; "c" ] ~rhs:(lvl "S" [ "K5"; "K79" ]);
    ]
  in
  let p = SW.compile_exn ~lattice:big csts in
  let plain = SW.solve p in
  let fast = SW.solve ~config:(SW.Config.make ~residual:Compartment_wide.residual ()) p in
  Alcotest.(check bool) "satisfies" true (SW.satisfies p plain.SW.levels);
  Alcotest.(check bool) "fast = plain" true
    (Array.for_all2 (Compartment_wide.equal big) plain.SW.levels fast.SW.levels)

let suite =
  [
    case "lattice laws" laws;
    case "agrees with single-word compartment" agrees_with_narrow;
    case "beyond one machine word" beyond_machine_word;
    case "string round-trips" roundtrip;
    case "residual" residual_least;
    case "solver over wide lattice" solver_over_wide;
  ]
