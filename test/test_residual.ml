(* The footnote-4 fast path: solving with a direct residual computation
   must produce exactly the same classification as the generic lattice
   walk. *)

open Minup_lattice

let case = Helpers.case

module SC = Minup_core.Solver.Make (Compartment)
module ST = Minup_core.Solver.Make (Total)
module Cst = Minup_constraints.Cst

let compartment_same () =
  let lat = Compartment.fig1a in
  let mk cls cats = Cst.Level (Compartment.make_exn lat ~cls ~cats) in
  let csts =
    [
      Cst.make_exn ~lhs:[ "a"; "b" ] ~rhs:(mk "TS" [ "Army"; "Nuclear" ]);
      Cst.simple "a" (mk "S" [ "Army" ]);
      Cst.simple "c" (Cst.Attr "a");
      (* a cycle too *)
      Cst.simple "d" (Cst.Attr "e");
      Cst.simple "e" (Cst.Attr "d");
      Cst.simple "d" (mk "TS" []);
      Cst.make_exn ~lhs:[ "e"; "f" ] ~rhs:(mk "TS" [ "Nuclear" ]);
    ]
  in
  let p = SC.compile_exn ~lattice:lat csts in
  let plain = SC.solve p in
  let fast = SC.solve ~config:(SC.Config.make ~residual:Compartment.residual ()) p in
  Alcotest.(check bool) "identical assignments" true
    (Array.for_all2 (Compartment.equal lat) plain.SC.levels fast.SC.levels);
  Alcotest.(check bool) "fast path satisfies" true (SC.satisfies p fast.SC.levels)

let total_same_prop =
  QCheck.Test.make ~count:80 ~name:"total-order residual = generic walk"
    Helpers.seed_arb
    (fun seed ->
      let rng = Minup_workload.Prng.create seed in
      let lat = Total.anonymous 5 in
      let spec =
        Minup_workload.Gen_constraints.
          {
            n_attrs = 6;
            n_simple = 5;
            n_complex = 3;
            max_lhs = 3;
            n_constants = 3;
            constants = [ 0; 1; 2; 3; 4 ];
          }
      in
      let attrs, csts =
        if Minup_workload.Prng.bool rng then
          Minup_workload.Gen_constraints.acyclic rng spec
        else Minup_workload.Gen_constraints.single_scc rng spec
      in
      let p = ST.compile_exn ~lattice:lat ~attrs csts in
      let plain = ST.solve p in
      let fast = ST.solve ~config:(ST.Config.make ~residual:Total.residual ()) p in
      plain.ST.levels = fast.ST.levels)

let fewer_ops () =
  (* The whole point of footnote 4: fewer lattice operations. *)
  let lat = Compartment.dod ~n_categories:10 in
  let mk cls cats = Cst.Level (Compartment.make_exn lat ~cls ~cats) in
  let csts =
    [
      Cst.make_exn ~lhs:[ "a"; "b"; "c" ]
        ~rhs:(mk "TS" [ "K0"; "K1"; "K2"; "K3"; "K4" ]);
      Cst.simple "a" (mk "C" [ "K0" ]);
      Cst.simple "b" (mk "S" [ "K1" ]);
    ]
  in
  let p = SC.compile_exn ~lattice:lat csts in
  let plain = SC.solve p in
  let fast = SC.solve ~config:(SC.Config.make ~residual:Compartment.residual ()) p in
  Alcotest.(check bool) "same answer" true
    (Array.for_all2 (Compartment.equal lat) plain.SC.levels fast.SC.levels);
  Alcotest.(check bool) "fewer lattice ops" true
    (Minup_core.Instr.lattice_ops fast.SC.stats
    < Minup_core.Instr.lattice_ops plain.SC.stats)

let suite =
  [
    case "compartment residual matches walk" compartment_same;
    Helpers.qcheck total_same_prop;
    case "residual saves lattice operations" fewer_ops;
  ]
