(* Benchmark & reproduction harness — one experiment per figure/table-like
   artifact of the paper (see DESIGN.md §3 for the index).

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- fig2
   List experiments:      dune exec bench/main.exe -- list *)

open Minup_lattice
module Cst = Minup_constraints.Cst
module Problem = Minup_constraints.Problem
module Stats = Minup_constraints.Stats
module Paper = Minup_core.Paper
module Instr = Minup_core.Instr
module SE = Minup_core.Solver.Make (Explicit)
module ST = Minup_core.Solver.Make (Total)
module Prng = Minup_workload.Prng
module Gen = Minup_workload.Gen_constraints
open Bench_util

(* ------------------------------------------------------------------ *)
(* FIG1 — the two example lattices of Figure 1.                        *)

let fig1 () =
  section "FIG1: the security lattices of Figure 1";
  let a = Compartment.fig1a in
  Printf.printf
    "Fig. 1(a): compartmented lattice, %d classifications x 2^%d categories = %d access classes, height %d\n"
    (Compartment.n_classifications a)
    (Compartment.n_categories a)
    (Option.get (Compartment.size a))
    (Compartment.height a);
  let mk cls cats = Compartment.make_exn a ~cls ~cats in
  let show_lub x y =
    Printf.printf "  lub(%s, %s) = %s\n"
      (Compartment.level_to_string a x)
      (Compartment.level_to_string a y)
      (Compartment.level_to_string a (Compartment.lub a x y))
  in
  show_lub (mk "S" [ "Army" ]) (mk "TS" [ "Nuclear" ]);
  show_lub (mk "S" [ "Army" ]) (mk "S" [ "Nuclear" ]);
  let b = Paper.fig1b in
  Printf.printf "\nFig. 1(b): %d levels, height %d, cover relation:\n"
    (Explicit.cardinal b) (Explicit.height b);
  List.iter
    (fun (lo, hi) ->
      Printf.printf "  %s < %s\n" (Explicit.name b lo) (Explicit.name b hi))
    (Explicit.cover_pairs b);
  Printf.printf "  glb(L4, L5) = %s   lub(L2, L3) = %s\n"
    (Explicit.name b
       (Explicit.glb b (Explicit.of_name_exn b "L4") (Explicit.of_name_exn b "L5")))
    (Explicit.name b
       (Explicit.lub b (Explicit.of_name_exn b "L2") (Explicit.of_name_exn b "L3")))

(* ------------------------------------------------------------------ *)
(* FIG2 — the worked example and its trace (Figure 2).                 *)

let fig2 () =
  section "FIG2: the Figure 2 classification (paper's worked example)";
  let problem =
    SE.compile_exn ~lattice:Paper.fig1b ~attrs:Paper.fig2_attrs
      Paper.fig2_constraints
  in
  Printf.printf "priority sets:\n";
  Array.iteri
    (fun i set ->
      Printf.printf "  priority[%d] = {%s}\n" (i + 1)
        (String.concat ", "
           (Array.to_list (Array.map (Problem.attr_name problem.SE.prob) set))))
    problem.SE.prio.Minup_constraints.Priorities.sets;
  let sol = SE.solve problem in
  let rows =
    List.map
      (fun (attr, expected) ->
        let got =
          Explicit.level_to_string Paper.fig1b
            (Option.get (SE.find problem sol attr))
        in
        [ attr; got; expected; (if got = expected then "ok" else "MISMATCH") ])
      Paper.fig2_expected_solution
  in
  table ~header:[ "attr"; "computed"; "paper"; "" ] rows;
  let ok =
    List.for_all
      (fun (attr, expected) ->
        Explicit.level_to_string Paper.fig1b
          (Option.get (SE.find problem sol attr))
        = expected)
      Paper.fig2_expected_solution
  in
  Printf.printf "reproduces Fig. 2(b) final row: %b\n" ok

(* ------------------------------------------------------------------ *)
(* THM52 — complexity scaling (Theorem 5.2).                           *)

let ladder16 = Total.create (List.init 16 (Printf.sprintf "S%d"))

let acyclic_workload seed n =
  let rng = Prng.create seed in
  Gen.acyclic rng
    {
      Gen.n_attrs = n;
      n_simple = 2 * n;
      n_complex = n / 2;
      max_lhs = 4;
      n_constants = n / 4;
      constants = List.init 16 Fun.id;
    }

(* The quadratic worst case needs forward lowering to traverse most of the
   SCC on every attempt: a bare Hamiltonian cycle with a single interior
   floor.  Chords or extra floors make Try fail early and the measured
   cost collapses back to linear. *)
let cyclic_workload seed n =
  let rng = Prng.create seed in
  Gen.single_scc rng
    {
      Gen.n_attrs = n;
      n_simple = 0;
      n_complex = 0;
      max_lhs = 2;
      n_constants = 1;
      constants = [ 8 ];
    }

let scaling_row problem =
  let stats = Stats.compute problem.ST.prob in
  let result = ref None in
  let secs = time_it (fun () -> result := Some (ST.solve problem)) in
  let sol = Option.get !result in
  let ops = Instr.lattice_ops sol.ST.stats in
  (stats, secs, ops, float_of_int ops /. float_of_int stats.Stats.total_size)

let thm52_acyclic () =
  section "THM52-A: acyclic scaling — expect ops/S to stay flat (linear in S)";
  let rows =
    List.map
      (fun n ->
        let attrs, csts = acyclic_workload 17 n in
        let problem = ST.compile_exn ~lattice:ladder16 ~attrs csts in
        let stats, secs, ops, ratio = scaling_row problem in
        [
          string_of_int n;
          string_of_int stats.Stats.total_size;
          pp_seconds secs;
          string_of_int ops;
          Printf.sprintf "%.2f" ratio;
        ])
      [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000 ]
  in
  table ~header:[ "attrs"; "S"; "time"; "lattice ops"; "ops/S" ] rows

let thm52_cyclic () =
  section
    "THM52-C: single-SCC scaling — ops/S grows with N_A (quadratic worst case)";
  let rows =
    List.map
      (fun n ->
        let attrs, csts = cyclic_workload 23 n in
        let problem = ST.compile_exn ~lattice:ladder16 ~attrs csts in
        let stats, secs, ops, ratio = scaling_row problem in
        [
          string_of_int n;
          string_of_int stats.Stats.total_size;
          pp_seconds secs;
          string_of_int ops;
          Printf.sprintf "%.2f" ratio;
        ])
      [ 50; 100; 200; 400; 800 ]
  in
  table ~header:[ "attrs"; "S"; "time"; "lattice ops"; "ops/S" ] rows;
  print_endline
    "  (ops/S growing with N_A is the quadratic worst case of Thm. 5.2;\n\
    \   the acyclic table stays flat, matching the linear bound)"

(* ------------------------------------------------------------------ *)
(* SEC5-L — cost of lattice operations (Bechamel microbenchmark).      *)

let lattice_ops () =
  section "SEC5-L: lattice operation cost (Bechamel OLS estimates)";
  let explicit = Minup_workload.Gen_lattice.chain_product [ 3; 3; 3 ] in
  let n = Explicit.cardinal explicit in
  let enc = Encode.of_explicit explicit in
  let dod = Compartment.dod ~n_categories:62 in
  let rng = Prng.create 7 in
  let pairs = Array.init 256 (fun _ -> (Prng.int rng n, Prng.int rng n)) in
  let dod_levels =
    Array.init 256 (fun _ ->
        Compartment.{ cls = Prng.int rng 4; cats = Prng.int rng (1 lsl 30) })
  in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"explicit.leq (bitset up-sets)"
        (Staged.stage (fun () ->
             Array.iter (fun (a, b) -> ignore (Explicit.leq explicit a b)) pairs));
      Test.make ~name:"encode.leq (chain codes)"
        (Staged.stage (fun () ->
             Array.iter (fun (a, b) -> ignore (Encode.leq enc a b)) pairs));
      Test.make ~name:"explicit.lub (table)"
        (Staged.stage (fun () ->
             Array.iter (fun (a, b) -> ignore (Explicit.lub explicit a b)) pairs));
      Test.make ~name:"compartment.leq (bit vector)"
        (Staged.stage (fun () ->
             Array.iteri
               (fun i l ->
                 ignore (Compartment.leq dod l dod_levels.((i + 1) land 255)))
               dod_levels));
      Test.make ~name:"compartment.lub (bit vector)"
        (Staged.stage (fun () ->
             Array.iteri
               (fun i l ->
                 ignore (Compartment.lub dod l dod_levels.((i + 1) land 255)))
               dod_levels));
    ]
  in
  let rows =
    List.map
      (fun (name, ns) -> [ name; Printf.sprintf "%.2f" (ns /. 256.0) ])
      (bechamel_estimates tests)
  in
  table ~header:[ "operation (batches of 256)"; "ns/op" ] rows;
  print_endline
    "  (the paper's §5 point: with suitable encodings dominance and lub are\n\
    \   effectively constant time, so c in the complexity bounds is O(1))"

(* ------------------------------------------------------------------ *)
(* SEC6-UB — upper-bound preprocessing scaling.                        *)

let upper_bounds () =
  section "SEC6-UB: upper-bound preprocessing — expect linear growth in S";
  let rows =
    List.map
      (fun n ->
        let attrs, csts = acyclic_workload 31 n in
        let problem = ST.compile_exn ~lattice:ladder16 ~attrs csts in
        let s = Problem.total_size problem.ST.prob in
        let bounds =
          List.filteri (fun i _ -> i mod 10 = 0) attrs
          |> List.map (fun a -> (a, 12))
        in
        let pre_secs =
          time_it (fun () -> ignore (ST.derive_upper_bounds problem bounds))
        in
        let solve_secs =
          time_it (fun () -> ignore (ST.solve_with_bounds problem bounds))
        in
        [
          string_of_int n;
          string_of_int s;
          pp_seconds pre_secs;
          pp_seconds solve_secs;
        ])
      [ 1_000; 2_000; 4_000; 8_000; 16_000 ]
  in
  table ~header:[ "attrs"; "S"; "preprocess"; "bounded solve" ] rows

(* ------------------------------------------------------------------ *)
(* FIG4 — NP-completeness over posets (Theorem 6.1).                   *)

let fig4 () =
  section
    "FIG4/THM61: 3-SAT reduction — poset search vs polynomial lattice solve";
  let open Minup_poset in
  let rows =
    List.map
      (fun n_vars ->
        let rng = Prng.create (1000 + n_vars) in
        let n_clauses = int_of_float (4.2 *. float_of_int n_vars) in
        let cnf = Minup_workload.Gen_sat.random_3sat rng ~n_vars ~n_clauses in
        let red = Reduction.build cnf in
        let sat_result = ref None and mp_result = ref None in
        let sat_secs =
          time_it (fun () -> sat_result := Some (Sat.solve_count cnf))
        in
        let mp_secs =
          time_it (fun () ->
              mp_result := Some (Minposet.satisfiable_count red.Reduction.problem))
        in
        let sat, sat_dec = Option.get !sat_result in
        let mp, mp_dec = Option.get !mp_result in
        assert ((sat <> None) = (mp <> None));
        let attrs, csts =
          acyclic_workload n_vars (Minposet.n_attrs red.Reduction.problem)
        in
        let lp = ST.compile_exn ~lattice:ladder16 ~attrs csts in
        let lat_secs = time_it (fun () -> ignore (ST.solve lp)) in
        [
          string_of_int n_vars;
          string_of_int n_clauses;
          (if sat <> None then "SAT" else "UNSAT");
          string_of_int sat_dec;
          string_of_int mp_dec;
          pp_seconds sat_secs;
          pp_seconds mp_secs;
          pp_seconds lat_secs;
        ])
      [ 4; 6; 8; 10; 12; 14 ]
  in
  table
    ~header:
      [
        "vars"; "clauses"; "result"; "dpll dec"; "poset dec"; "dpll";
        "min-poset"; "lattice same-size";
      ]
    rows;
  print_endline
    "  (the min-poset search tracks the exponential SAT search, while a\n\
    \   lattice instance with the same attribute count stays fast — Thm. 6.1)"

(* ------------------------------------------------------------------ *)
(* ABL-BT — ablation: backtracking baseline vs forward lowering.       *)

let ablation_backtrack () =
  section
    "ABL-BT: rejected backtracking alternative vs Algorithm 3.1";
  let module BT = Minup_baselines.Backtrack.Make (Explicit) in
  let lat = Paper.fig1b in
  let lvl = Explicit.of_name_exn lat in
  (* k complex constraints of lhs size 3 over a simple chain: the
     backtracking choice space is 3^k while the algorithm stays flat. *)
  let build k =
    let attrs = List.init (3 * k) (Printf.sprintf "x%d") in
    let complex =
      List.init k (fun i ->
          Cst.make_exn
            ~lhs:
              [
                Printf.sprintf "x%d" (3 * i);
                Printf.sprintf "x%d" ((3 * i) + 1);
                Printf.sprintf "x%d" ((3 * i) + 2);
              ]
            ~rhs:(Cst.Level (lvl "L6")))
    in
    let chain =
      List.init ((3 * k) - 1) (fun i ->
          Cst.simple
            (Printf.sprintf "x%d" i)
            (Cst.Attr (Printf.sprintf "x%d" (i + 1))))
    in
    let floors = [ Cst.simple "x0" (Cst.Level (lvl "L2")) ] in
    SE.compile_exn ~lattice:lat ~attrs (complex @ chain @ floors)
  in
  let rows =
    List.map
      (fun k ->
        let problem = build k in
        let space = Option.get (BT.search_space problem) in
        let bt_secs =
          time_it ~runs:1 (fun () ->
              ignore (BT.solve ~max_space:max_int problem))
        in
        let alg_secs = time_it (fun () -> ignore (SE.solve problem)) in
        [
          string_of_int k;
          string_of_int space;
          pp_seconds bt_secs;
          pp_seconds alg_secs;
        ])
      [ 2; 4; 6; 8; 10 ]
  in
  table
    ~header:[ "complex csts"; "choice space"; "backtracking"; "Algorithm 3.1" ]
    rows;
  print_endline
    "  (the backtracking column grows with the product of lhs sizes = 3^k —\n\
    \   the cost §3.2 rejects; forward lowering stays polynomial)"

(* ------------------------------------------------------------------ *)
(* CMP-Q — overclassification of the Qian-style baseline.              *)

let qian_quality () =
  section "CMP-Q: overclassification vs the Qian-style baseline [13]";
  let module Q = Minup_baselines.Qian.Make (Explicit) in
  let module TM = Minup_baselines.Topmost.Make (Explicit) in
  let module Loss = Minup_baselines.Loss.Make (Explicit) in
  let lat = Paper.fig1b in
  let run name attrs csts =
    let problem = SE.compile_exn ~lattice:lat ~attrs csts in
    let sol = SE.solve problem in
    let q = Q.solve problem in
    let t = TM.solve problem in
    assert (SE.satisfies problem q);
    [
      name;
      string_of_int (Problem.n_attrs problem.SE.prob);
      string_of_int (Loss.n_overclassified lat ~reference:sol.SE.levels q);
      string_of_int (Loss.excess_rank lat ~reference:sol.SE.levels q);
      string_of_int (Loss.excess_rank lat ~reference:sol.SE.levels t);
    ]
  in
  let rng = Prng.create 99 in
  let spec n =
    {
      Gen.n_attrs = n;
      n_simple = n;
      n_complex = n / 2;
      max_lhs = 3;
      n_constants = n / 2;
      constants = Explicit.all lat;
    }
  in
  let rows =
    [
      run "Fig. 2 example" Paper.fig2_attrs Paper.fig2_constraints;
      run "sec. 3.1 example" [] Paper.sec31_constraints;
      (let attrs, csts = Gen.acyclic rng (spec 60) in
       run "random acyclic n=60" attrs csts);
      (let attrs, csts = Gen.acyclic rng (spec 200) in
       run "random acyclic n=200" attrs csts);
      (let attrs, csts = Gen.single_scc rng (spec 40) in
       run "random cyclic n=40" attrs csts);
    ]
  in
  table
    ~header:
      [
        "workload"; "attrs"; "qian overclassified"; "qian excess rank";
        "all-top excess rank";
      ]
    rows;
  print_endline
    "  (Algorithm 3.1 is the reference: it is pointwise minimal, so every\n\
    \   positive entry is unnecessary upgrading by the baseline)"

(* ------------------------------------------------------------------ *)
(* EXT-VERIFY — the polynomial minimality checker at scale.            *)

let ext_verify () =
  section
    "EXT-VERIFY: exact minimality verification by replay (extension; expect \
     near-linear growth)";
  let module Ex = Minup_core.Explain.Make (Total) in
  let rows =
    List.map
      (fun n ->
        let attrs, csts = acyclic_workload 41 n in
        let problem = ST.compile_exn ~lattice:ladder16 ~attrs csts in
        let sol = ST.solve problem in
        let verdict = ref false in
        let secs =
          time_it (fun () -> verdict := Ex.is_locally_minimal problem sol.ST.levels)
        in
        assert !verdict;
        [
          string_of_int n;
          string_of_int (Problem.total_size problem.ST.prob);
          pp_seconds secs;
          "minimal";
        ])
      [ 500; 1_000; 2_000; 4_000; 8_000 ]
  in
  table ~header:[ "attrs"; "S"; "verify time"; "verdict" ] rows;
  print_endline
    "  (the exhaustive oracle is exponential; the replay checker certifies\n\
    \   the same answer in polynomial time — see Explain's documentation)"

(* ------------------------------------------------------------------ *)
(* THROUGHPUT — batch-engine scaling across worker counts (PR 1).      *)

let bench_json_path = "BENCH_PR1.json"

let throughput () =
  section "THROUGHPUT: parallel batch engine (writes BENCH_PR1.json)";
  let module Engine = Minup_core.Engine.Make (Total) in
  let jobs_levels = [ 1; 2; 4; 8 ] in
  let workloads =
    [
      ("acyclic", 2_000, 48, fun seed -> acyclic_workload seed 2_000);
      ("cyclic", 200, 48, fun seed -> cyclic_workload seed 200);
    ]
  in
  let results = ref [] in
  let phase_metrics = ref [] in
  let rows =
    List.concat_map
      (fun (name, n_attrs, n_problems, gen) ->
        let problems =
          Array.init n_problems (fun i ->
              let attrs, csts = gen (1_000 + i) in
              ST.compile_exn ~lattice:ladder16 ~attrs csts)
        in
        (* The jobs=1 run is the reference every parallel run must equal. *)
        let reference =
          Engine.ok_exn (Engine.solve_batch ~jobs:1 problems)
        in
        (* Phase breakdown: one metered run at the widest worker count,
           outside the timed loop so the timing rows stay unobserved. *)
        let module Metrics = Minup_obs.Metrics in
        Metrics.enable ();
        Metrics.reset ();
        let metered =
          Engine.solve_batch ~jobs:(List.fold_left max 1 jobs_levels) problems
        in
        Instr.to_metrics metered.Engine.stats;
        phase_metrics := (name, Metrics.to_json ()) :: !phase_metrics;
        Metrics.disable ();
        List.map
          (fun jobs ->
            let best = ref infinity and report = ref None in
            for _ = 1 to 3 do
              let t0 = Unix.gettimeofday () in
              let r = Engine.solve_batch ~jobs problems in
              let dt = Unix.gettimeofday () -. t0 in
              if dt < !best then best := dt;
              report := Some r
            done;
            let r = Option.get !report in
            Array.iteri
              (fun i (s : ST.solution) ->
                if s.ST.levels <> reference.(i).ST.levels then
                  failwith
                    (Printf.sprintf
                       "throughput: jobs=%d diverged from the sequential \
                        solve on %s problem %d"
                       jobs name i))
              (Engine.ok_exn r);
            let wall_ms = !best *. 1e3 in
            let sps = float_of_int n_problems /. !best in
            let lub = r.Engine.stats.Instr.lub
            and leq = r.Engine.stats.Instr.leq in
            results :=
              (name, n_attrs, n_problems, jobs, wall_ms, sps, lub, leq)
              :: !results;
            [
              name;
              string_of_int n_attrs;
              string_of_int jobs;
              Printf.sprintf "%.1f" wall_ms;
              Printf.sprintf "%.1f" sps;
              string_of_int lub;
              string_of_int leq;
            ])
          jobs_levels)
      workloads
  in
  table
    ~header:[ "workload"; "attrs"; "jobs"; "wall ms"; "solves/s"; "lub"; "leq" ]
    rows;
  let results = List.rev !results in
  let json =
    let open Minup_obs.Json in
    let num_i i = Num (float_of_int i) in
    Obj
      ([ ("benchmark", Str "throughput") ]
      @ host_meta ()
      @ [
          ( "results",
            Arr
              (List.map
                 (fun (name, n_attrs, n_problems, jobs, wall_ms, sps, lub, leq)
                    ->
                   Obj
                     [
                       ("experiment", Str name);
                       ("n_attrs", num_i n_attrs);
                       ("n_problems", num_i n_problems);
                       ("jobs", num_i jobs);
                       ("wall_ms", Num (Float.round (wall_ms *. 1e3) /. 1e3));
                       ("solves_per_sec", Num (Float.round (sps *. 10.) /. 10.));
                       ("lub", num_i lub);
                       ("leq", num_i leq);
                     ])
                 results) );
          ( "phase_metrics",
            Obj (List.rev_map (fun (name, m) -> (name, m)) !phase_metrics) );
        ])
  in
  let oc = open_out bench_json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Minup_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf
    "wrote %s  (parallel output verified equal to sequential; this host \
     recommends %d domains)\n"
    bench_json_path
    (Domain.recommended_domain_count ())

(* A fast jobs=2 parity check for CI (dev/ci.sh): small batches, no JSON,
   nonzero exit on the first parallel/sequential divergence. *)
let throughput_smoke () =
  section "THROUGHPUT-SMOKE: jobs=2 parity vs sequential (CI)";
  let module Engine = Minup_core.Engine.Make (Total) in
  let compile gen seed0 count n =
    Array.init count (fun i ->
        let attrs, csts = gen (seed0 + i) n in
        ST.compile_exn ~lattice:ladder16 ~attrs csts)
  in
  List.iter
    (fun (name, problems) ->
      let seq = Engine.ok_exn (Engine.solve_batch ~jobs:1 problems) in
      let par = Engine.ok_exn (Engine.solve_batch ~jobs:2 problems) in
      Array.iteri
        (fun i (s : ST.solution) ->
          if s.ST.levels <> seq.(i).ST.levels then
            failwith
              (Printf.sprintf
                 "throughput-smoke: jobs=2 diverged from sequential on %s \
                  problem %d"
                 name i))
        par;
      Printf.printf "%-8s %2d problems: jobs=2 output = sequential\n" name
        (Array.length problems))
    [
      ("acyclic", compile acyclic_workload 2_000 12 300);
      ("cyclic", compile cyclic_workload 3_000 12 60);
    ]

(* ------------------------------------------------------------------ *)
(* SUPERVISION — the cost of per-task budgets + retry bookkeeping on    *)
(* the PR1 throughput workloads when no fault fires (PR 4).             *)

let supervision_json_path = "BENCH_PR4.json"

let supervision () =
  section "SUPERVISION: fault-supervision overhead (writes BENCH_PR4.json)";
  let module Engine = Minup_core.Engine.Make (Total) in
  (* Generous budgets that never trip: the run measures the bookkeeping
     (deadline polls + step counting in the solver hot path, retry
     machinery in the engine), not fault handling. *)
  let policy =
    {
      Minup_core.Engine.default_policy with
      Minup_core.Engine.deadline_ms = Some 3_600_000;
      max_steps = Some max_int;
      retries = 2;
    }
  in
  let workloads =
    [
      ("acyclic", 2_000, 24, fun seed -> acyclic_workload seed 2_000);
      ("cyclic", 600, 24, fun seed -> cyclic_workload seed 600);
    ]
  in
  let jobs_levels = [ 1; 4 ] in
  let results = ref [] in
  let phase_metrics = ref [] in
  let rows =
    List.concat_map
      (fun (name, n_attrs, n_problems, gen) ->
        let problems =
          Array.init n_problems (fun i ->
              let attrs, csts = gen (4_000 + i) in
              ST.compile_exn ~lattice:ladder16 ~attrs csts)
        in
        (* Phase breakdown for the supervised run, outside the timed
           loop: the engine registers its fault counters up front, so
           the JSON must show engine/retries = 0 etc., proving no fault
           fired during the measurement. *)
        let module Metrics = Minup_obs.Metrics in
        Metrics.enable ();
        Metrics.reset ();
        let metered = Engine.solve_batch ~policy ~jobs:2 problems in
        Instr.to_metrics metered.Engine.stats;
        phase_metrics := (name, Metrics.to_json ()) :: !phase_metrics;
        Metrics.disable ();
        if metered.Engine.failed > 0 then
          failwith "supervision: a generous budget tripped";
        List.map
          (fun jobs ->
            (* Interleave the two variants so drift hits both alike. *)
            let best_base = ref infinity and best_sup = ref infinity in
            let supervised = ref None in
            for _ = 1 to 5 do
              let t0 = Unix.gettimeofday () in
              let base = Engine.solve_batch ~jobs problems in
              let t1 = Unix.gettimeofday () in
              let sup = Engine.solve_batch ~policy ~jobs problems in
              let t2 = Unix.gettimeofday () in
              best_base := min !best_base (t1 -. t0);
              best_sup := min !best_sup (t2 -. t1);
              supervised := Some (base, sup)
            done;
            let base, sup = Option.get !supervised in
            let base_sols = Engine.ok_exn base
            and sup_sols = Engine.ok_exn sup in
            Array.iteri
              (fun i (s : ST.solution) ->
                if s.ST.levels <> sup_sols.(i).ST.levels then
                  failwith
                    (Printf.sprintf
                       "supervision: budgeted solve diverged on %s problem %d"
                       name i))
              base_sols;
            let overhead_pct = 100. *. ((!best_sup /. !best_base) -. 1.) in
            results := (name, n_attrs, jobs, !best_base, !best_sup, overhead_pct) :: !results;
            [
              name;
              string_of_int n_attrs;
              string_of_int jobs;
              Printf.sprintf "%.1f" (!best_base *. 1e3);
              Printf.sprintf "%.1f" (!best_sup *. 1e3);
              Printf.sprintf "%+.2f%%" overhead_pct;
            ])
          jobs_levels)
      workloads
  in
  table
    ~header:
      [ "workload"; "attrs"; "jobs"; "base ms"; "supervised ms"; "overhead" ]
    rows;
  let results = List.rev !results in
  let worst =
    List.fold_left (fun acc (_, _, _, _, _, o) -> max acc o) neg_infinity
      results
  in
  let json =
    let open Minup_obs.Json in
    let num_i i = Num (float_of_int i) in
    Obj
      ([ ("benchmark", Str "supervision") ]
      @ host_meta ()
      @ [
          ( "policy",
            Obj
              [
                ("deadline_ms", num_i 3_600_000);
                ("max_steps", Str "max_int");
                ("retries", num_i policy.Minup_core.Engine.retries);
              ] );
          ( "results",
            Arr
              (List.map
                 (fun (name, n_attrs, jobs, base, sup, overhead_pct) ->
                   Obj
                     [
                       ("workload", Str name);
                       ("n_attrs", num_i n_attrs);
                       ("jobs", num_i jobs);
                       ("baseline_ms", Num (base *. 1e3));
                       ("supervised_ms", Num (sup *. 1e3));
                       ("overhead_pct", Num overhead_pct);
                     ])
                 results) );
          ("overhead_pct_max", Num worst);
          ( "phase_metrics",
            Obj (List.rev_map (fun (name, m) -> (name, m)) !phase_metrics) );
        ])
  in
  let oc = open_out supervision_json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Minup_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf "wrote %s  (worst-case supervision overhead %+.2f%%)\n"
    supervision_json_path worst

(* ------------------------------------------------------------------ *)
(* SESSION — incremental resolve vs from-scratch on single deltas       *)
(* (PR 5).                                                              *)

let session_json_path = "BENCH_PR5.json"

let session_incremental () =
  section
    "SESSION: incremental resolve vs from-scratch solve (writes \
     BENCH_PR5.json)";
  let module Sess = Minup_session.Session.Make (Total) in
  let n = 2_000 in
  let attrs, csts = acyclic_workload 7_000 n in
  let sess = Sess.create ~lattice:ladder16 ~attrs csts in
  let rng = Prng.create 7_001 in
  let attr_arr = Array.of_list attrs in
  (* Pre-seed lower bounds on a slice of attributes: a later
     re-tightening of one of these only changes the level of a bound
     constraint the compiled problem already contains, which is the
     session's cheapest (patch) path. *)
  let bounded = Array.of_list (Prng.sample rng 200 attrs) in
  Array.iter
    (fun a -> Sess.set_lower_bound sess a (Some (2 + Prng.int rng 6)))
    bounded;
  ignore (Sess.resolve sess);
  let n_deltas = 40 in
  let samples = ref [] in
  for k = 0 to n_deltas - 1 do
    (* Three re-tightenings for every added constraint: the acceptance
       target is single-constraint deltas, with the add path keeping the
       recompile-and-reuse path honest. *)
    let kind =
      if k mod 4 = 3 then begin
        let a = attr_arr.(Prng.int rng (Array.length attr_arr)) in
        ignore
          (Sess.add_constraint sess
             (Cst.simple a (Cst.Level (1 + Prng.int rng 8)))
            : int);
        "add"
      end
      else begin
        let a = bounded.(Prng.int rng (Array.length bounded)) in
        Sess.set_lower_bound sess a (Some (1 + Prng.int rng 15));
        "retighten"
      end
    in
    let t0 = Unix.gettimeofday () in
    let inc = Sess.resolve sess in
    let inc_s = Unix.gettimeofday () -. t0 in
    let attrs', csts' = Sess.snapshot sess in
    let scratch_sol = ref None in
    let scratch_s =
      time_it (fun () ->
          let p = ST.compile_exn ~lattice:ladder16 ~attrs:attrs' csts' in
          scratch_sol := Some (ST.solve p))
    in
    let scratch = Option.get !scratch_sol in
    if inc.Sess.Solver.levels <> scratch.ST.levels then
      failwith
        (Printf.sprintf "session-incremental: delta %d diverged from scratch"
           k);
    samples := (kind, inc_s, scratch_s) :: !samples
  done;
  let samples = List.rev !samples in
  let median xs =
    match List.sort compare xs with
    | [] -> 0.0
    | s -> List.nth s (List.length s / 2)
  in
  let speedup (_, inc_s, scratch_s) = scratch_s /. Float.max inc_s 1e-9 in
  let kinds = [ "retighten"; "add" ] in
  let per_kind =
    List.map
      (fun kind ->
        let ks = List.filter (fun (k, _, _) -> k = kind) samples in
        ( kind,
          List.length ks,
          median (List.map (fun (_, i, _) -> i) ks) *. 1e3,
          median (List.map (fun (_, _, s) -> s) ks) *. 1e3,
          median (List.map speedup ks) ))
      kinds
  in
  table
    ~header:[ "delta"; "count"; "resolve ms"; "scratch ms"; "speedup" ]
    (List.map
       (fun (kind, count, inc_ms, scratch_ms, sp) ->
         [
           kind;
           string_of_int count;
           Printf.sprintf "%.3f" inc_ms;
           Printf.sprintf "%.3f" scratch_ms;
           Printf.sprintf "%.1fx" sp;
         ])
       per_kind);
  let overall = median (List.map speedup samples) in
  let stats = Sess.stats sess in
  let json =
    let open Minup_obs.Json in
    let num_i i = Num (float_of_int i) in
    Obj
      ([ ("benchmark", Str "session_incremental") ]
      @ host_meta ()
      @ [
          ("n_attrs", num_i n);
          ("n_deltas", num_i n_deltas);
          ( "results",
            Arr
              (List.map
                 (fun (kind, count, inc_ms, scratch_ms, sp) ->
                   Obj
                     [
                       ("delta", Str kind);
                       ("count", num_i count);
                       ("median_resolve_ms", Num inc_ms);
                       ("median_scratch_ms", Num scratch_ms);
                       ("median_speedup", Num sp);
                     ])
                 per_kind) );
          ("median_speedup", Num overall);
          ( "session_stats",
            Obj
              [
                ("resolves", num_i stats.Sess.resolves);
                ("cached", num_i stats.Sess.cached);
                ("patched", num_i stats.Sess.patched);
                ("incremental", num_i stats.Sess.incremental);
                ("full", num_i stats.Sess.full);
                ("frozen", num_i stats.Sess.frozen);
              ] );
        ])
  in
  let oc = open_out session_json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Minup_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf
    "wrote %s  (median incremental speedup %.1fx; every resolve verified \
     equal to scratch)\n"
    session_json_path overall

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("thm52-acyclic", thm52_acyclic);
    ("thm52-cyclic", thm52_cyclic);
    ("lattice-ops", lattice_ops);
    ("upper-bounds", upper_bounds);
    ("fig4", fig4);
    ("ablation-backtrack", ablation_backtrack);
    ("qian-quality", qian_quality);
    ("ext-verify", ext_verify);
    ("throughput", throughput);
    ("throughput-smoke", throughput_smoke);
    ("supervision", supervision);
    ("session-incremental", session_incremental);
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
      List.iter (fun (name, _) -> print_endline name) experiments
  | _ :: name :: _ -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; try 'list'\n" name;
          exit 1)
  | _ -> List.iter (fun (_, f) -> f ()) experiments
