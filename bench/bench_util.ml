(* Shared benchmark plumbing: wall-clock timing for macro experiments,
   Bechamel for micro experiments, and aligned table rendering. *)

(* Median wall time of [runs] executions of [f], in seconds. *)
let time_it ?(runs = 3) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  match List.sort compare samples with
  | [] -> 0.0
  | sorted -> List.nth sorted (runs / 2)

(* Host/build provenance stamped into every BENCH_*.json artifact so a
   result file is interpretable without the shell session that produced
   it.  [git_rev] degrades to "unknown" outside a checkout. *)
let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = In_channel.input_line ic in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some rev when rev <> "" -> rev
      | _ -> "unknown")

let host_meta () =
  let open Minup_obs.Json in
  [
    ("host_domains", Num (float_of_int (Domain.recommended_domain_count ())));
    ("ocaml_version", Str Sys.ocaml_version);
    ("git_rev", Str (git_rev ()));
    ("os_type", Str Sys.os_type);
    ("word_size", Num (float_of_int Sys.word_size));
  ]

let pp_seconds s =
  if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

(* Aligned table printing: rows of equal length string lists. *)
let table ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    "  "
    ^ String.concat "  "
        (List.map2
           (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
           row widths)
  in
  print_endline (render_row header);
  print_endline
    ("  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun r -> print_endline (render_row r)) rows

let section title =
  Printf.printf "\n=== %s ===\n" title

(* Run a list of Bechamel tests and return (name, ns/run) estimates. *)
let bechamel_estimates tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"bench" tests)
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name result acc ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> (name, est) :: acc
      | _ -> (name, Float.nan) :: acc)
    results []
  |> List.sort compare
