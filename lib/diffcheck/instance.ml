module Cst = Minup_constraints.Cst
module Explicit = Minup_lattice.Explicit

type t = {
  names : string list;
  order : (string * string) list;
  attrs : string list;
  csts : string Cst.t list;
  bounds : (string * string) list;
}

module Materialize (L : Minup_lattice.Lattice_intf.S) = struct
  let instance lat ~attrs ~csts ~bounds =
    let levels = List.of_seq (Seq.take 4096 (L.levels lat)) in
    let named = List.mapi (fun i l -> (l, Printf.sprintf "v%d" i)) levels in
    let name_of l =
      match List.find_opt (fun (l', _) -> L.equal lat l l') named with
      | Some (_, nm) -> nm
      | None -> invalid_arg "Instance.Materialize: level outside the enumeration"
    in
    (* The full order relation, not just covers: Explicit.create computes
       the transitive reduction itself, and emitting every pair keeps this
       total even for lattices whose covers are awkward to enumerate. *)
    let order =
      List.concat_map
        (fun (a, na) ->
          List.filter_map
            (fun (b, nb) ->
              if (not (L.equal lat a b)) && L.leq lat a b then Some (na, nb)
              else None)
            named)
        named
    in
    {
      names = List.map snd named;
      order;
      attrs;
      csts = List.map (Cst.map_level name_of) csts;
      bounds = List.map (fun (a, l) -> (a, name_of l)) bounds;
    }
end

let lattice t =
  match Explicit.create ~names:t.names ~order:t.order with
  | Ok lat -> Ok lat
  | Error e -> Error (Format.asprintf "%a" Explicit.pp_error e)

exception Missing

let resolve t lat =
  let level nm =
    match Explicit.of_name lat nm with Some l -> l | None -> raise Missing
  in
  match
    ( List.map (Cst.map_level level) t.csts,
      List.map (fun (a, nm) -> (a, level nm)) t.bounds )
  with
  | csts, bounds -> Some (csts, bounds)
  | exception Missing -> None

let with_header header body =
  String.concat "" (List.map (fun l -> "# " ^ l ^ "\n") header) ^ body

let lat_file ?(header = []) t =
  let body =
    match lattice t with
    | Ok lat -> Minup_lattice.Lattice_file.to_string lat
    | Error _ ->
        (* Not a valid lattice (can only happen on hand-edited input):
           render the raw declaration so the file still documents it. *)
        ("levels " ^ String.concat ", " t.names ^ "\n")
        ^ String.concat ""
            (List.map (fun (a, b) -> a ^ " < " ^ b ^ "\n") t.order)
  in
  with_header header body

let cst_file ?(header = []) t =
  with_header header
    (Minup_constraints.Parse.render ~level_to_string:Fun.id
       { attrs = t.attrs; csts = t.csts; upper_bounds = t.bounds })

let size t =
  List.length t.csts + List.length t.bounds + List.length t.attrs
  + List.length t.names
