(** The seeded differential self-check harness.

    [run ~seed ~cases ~jobs ()] generates [cases] random (lattice,
    constraint-set) instances — rotating through the explicit,
    compartmented and powerset backends, the acyclic / single-SCC / mixed
    constraint shapes, and plain vs. upper-bounded mode — and pushes each
    through the full {!Battery}.  Case [i] is derived from [(seed, i)]
    alone, so results are identical whatever [jobs] is, and a failure
    always names the case that reproduces it.

    Every failing case is materialized ({!Instance}), delta-shrunk
    ({!Shrink}) against "the battery still fails on the mirrored
    instance", and — given [repro_dir] — written out as a replayable
    [caseN.lat]/[caseN.cst] pair.  A failure that does {e not} reproduce
    on the explicit-lattice mirror (a backend-specific bug) is kept
    unshrunk and flagged in the report. *)

type failure_report = {
  case : int;
  backend : string;
  shape : string;
  property : string;
  detail : string;
  repro : Instance.t;  (** shrunk when the mirror reproduces the failure *)
  mirrored : bool;  (** the failure reproduces on the explicit mirror *)
  files : (string * string * string) option;
      (** written [.lat]/[.cst]/[.json] paths — the [.json] holds the
          finding as a {!Minup_core.Wire} error envelope *)
}

type summary = {
  seed : int;
  cases : int;
  backends : (string * int) list;  (** cases per backend *)
  shapes : (string * int) list;  (** cases per constraint shape *)
  bounded : int;  (** cases run with upper bounds *)
  checks : (string * int) list;  (** executions per property *)
  total_failures : int;
  failures : failure_report list;
      (** at most one per failing case, capped at {!max_reports} *)
}

(** Failing cases reported (and shrunk) in full; the rest only counted. *)
val max_reports : int

(** [fault] plants an extra runtime fault into every case's
    supervised-batch property (see {!Battery.Make.run}) — the
    supervision analogue of [mutation], used by
    [mlsclassify selfcheck --inject-fault] to prove the harness catches
    engine-level misbehavior. *)
val run :
  ?mutation:Battery.mutation ->
  ?fault:Minup_faultsim.kind ->
  ?repro_dir:string ->
  seed:int ->
  cases:int ->
  jobs:int ->
  unit ->
  summary

(** Deterministic, jobs-invariant rendering (the CLI output). *)
val pp_summary : Format.formatter -> summary -> unit

(** Re-run the battery on a written reproducer: [lat]/[cst] are the file
    {e contents}.  [Error] when they fail to parse. *)
val replay :
  ?mutation:Battery.mutation ->
  ?fault:Minup_faultsim.kind ->
  lat:string ->
  cst:string ->
  unit ->
  (Battery.failure list, string) result
