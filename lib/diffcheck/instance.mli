(** Concrete, self-contained test instances.

    The self-check batteries run over arbitrary lattice backends
    (explicit, compartmented, powerset), but a failing case must outlive
    the process: it has to be shrunk, written to disk and replayed later.
    An {!t} is that durable form — a fully materialized lattice (level
    {e names} plus order pairs) together with the policy, everything
    referenced by name only, so the whole case round-trips through the
    [.lat]/[.cst] text formats.

    Backend level syntax is not preserved: compartmented renderings such
    as [TS:{Army,Nuclear}] contain commas and braces that the lattice
    file format would mis-split, so {!Materialize} renames every level to
    a neutral [v0, v1, …] in enumeration order.  The order structure — the
    only thing the algorithms see — is carried over exactly. *)

type t = {
  names : string list;  (** level names, in enumeration order *)
  order : (string * string) list;  (** [lo ⊑ hi] pairs (not only covers) *)
  attrs : string list;
  csts : string Minup_constraints.Cst.t list;
      (** right-hand-side levels by {e name} *)
  bounds : (string * string) list;  (** upper bounds, level by name *)
}

(** [Materialize (L)] converts a backend case into its durable form. *)
module Materialize (L : Minup_lattice.Lattice_intf.S) : sig
  (** Levels are enumerated via [L.levels] (capped at 4096 — self-check
      lattices are small by construction) and renamed [v0, v1, …]. *)
  val instance :
    L.t ->
    attrs:string list ->
    csts:L.level Minup_constraints.Cst.t list ->
    bounds:(string * L.level) list ->
    t
end

(** Rebuild the lattice.  [Error] after an over-aggressive lattice shrink
    (the shrinker treats that as "candidate rejected"). *)
val lattice : t -> (Minup_lattice.Explicit.t, string) result

(** Resolve the by-name constraints and bounds against a rebuilt lattice;
    [None] if a referenced level name is gone. *)
val resolve :
  t ->
  Minup_lattice.Explicit.t ->
  (Minup_lattice.Explicit.level Minup_constraints.Cst.t list
  * (string * Minup_lattice.Explicit.level) list)
  option

(** The instance's lattice in {!Minup_lattice.Lattice_file} format
    (canonical cover pairs when the lattice is valid), with [# ]-comment
    [header] lines prepended. *)
val lat_file : ?header:string list -> t -> string

(** The instance's policy in {!Minup_constraints.Parse} format ([attrs]
    declaration, constraints, upper bounds), with [header] prepended. *)
val cst_file : ?header:string list -> t -> string

(** [size t] = constraints + bounds + attributes + levels — the measure
    the shrinker drives down. *)
val size : t -> int
