(** Greedy delta-shrinking of a failing {!Instance.t}.

    Classic delta-debugging, specialized to the instance structure.  Four
    move families, each tried element by element and kept whenever the
    candidate still satisfies [predicate] (i.e. still fails the battery):

    + drop a constraint;
    + drop an upper bound;
    + drop an attribute no remaining constraint or bound mentions;
    + drop a lattice level no constraint or bound names (its order pairs
      go with it) — candidates that stop being valid lattices are
      rejected by the predicate via {!Instance.lattice}.

    Passes repeat until a full round removes nothing, so the result is
    1-minimal with respect to these moves: removing any single remaining
    element makes the failure disappear. *)

(** [shrink ~predicate inst] — [predicate inst] must hold on entry and is
    maintained as an invariant; the result is the smallest instance
    reached. *)
val shrink : predicate:(Instance.t -> bool) -> Instance.t -> Instance.t
