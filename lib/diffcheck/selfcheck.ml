open Minup_lattice
module Cst = Minup_constraints.Cst
module Wire = Minup_core.Wire
module Json = Minup_obs.Json
module Prng = Minup_workload.Prng
module Gen = Minup_workload.Gen_constraints
module Gen_lattice = Minup_workload.Gen_lattice

module B_explicit = Battery.Make (Explicit)
module B_compartment = Battery.Make (Compartment)
module B_powerset = Battery.Make (Powerset)
module M_explicit = Instance.Materialize (Explicit)
module M_compartment = Instance.Materialize (Compartment)
module M_powerset = Instance.Materialize (Powerset)

(* --- case generation ------------------------------------------------- *)

type payload =
  | P_explicit of
      Explicit.t
      * string list
      * Explicit.level Cst.t list
      * (string * Explicit.level) list
  | P_compartment of
      Compartment.t
      * string list
      * Compartment.level Cst.t list
      * (string * Compartment.level) list
  | P_powerset of
      Powerset.t
      * string list
      * Powerset.level Cst.t list
      * (string * Powerset.level) list

type case = {
  id : int;
  backend : string;
  shape : string;
  bounded : bool;
  payload : payload;
}

(* Sizes are deliberately small: the exhaustive oracle and the
   backtracking baseline only engage on small cases, and shrinking wants
   many cheap cases over few expensive ones. *)
let gen_policy rng ~constants =
  let n_attrs = 4 + Prng.int rng 5 in
  let spec =
    {
      Gen.n_attrs;
      n_simple = 2 + Prng.int rng (n_attrs + 2);
      n_complex = 1 + Prng.int rng 3;
      max_lhs = 2 + Prng.int rng 2;
      n_constants = 1 + Prng.int rng 3;
      constants;
    }
  in
  match Prng.int rng 3 with
  | 0 -> ("acyclic", Gen.acyclic rng spec)
  | 1 -> ("single_scc", Gen.single_scc rng spec)
  | _ -> ("mixed", Gen.mixed rng spec ~n_islands:2 ~island_size:2)

(* Per-backend generation, sharing [gen_policy] over the level pool. *)
module Gen_case (L : Lattice_intf.S) = struct
  let policy rng lat =
    let pool = List.of_seq (Seq.take 64 (L.levels lat)) in
    let shape, (attrs, csts) = gen_policy rng ~constants:pool in
    (shape, attrs, csts, pool)

  (* Bounds lean high (⊤ half the time) so both the feasible and the
     infeasible branch of bounded solving get regular exercise. *)
  let bounds rng lat ~attrs ~pool =
    let chosen = Prng.sample rng (1 + Prng.int rng 2) attrs in
    List.map
      (fun a ->
        (a, if Prng.bool rng then L.top lat else Prng.pick rng pool))
      chosen
end

module GE = Gen_case (Explicit)
module GC = Gen_case (Compartment)
module GP = Gen_case (Powerset)

let explicit_lattice rng =
  match Prng.int rng 4 with
  | 0 -> Gen_lattice.diamond_stack (1 + Prng.int rng 3)
  | 1 -> Gen_lattice.chain_product [ 1 + Prng.int rng 2; 1 + Prng.int rng 2 ]
  | 2 -> Gen_lattice.random_closure_exn rng ~universe:4 ~n_generators:3 ~max_size:24
  | _ -> Minup_core.Paper.fig1b

let take k xs = List.filteri (fun i _ -> i < k) xs

let compartment_lattice rng =
  if Prng.int rng 3 = 0 then Compartment.fig1a
  else
    Compartment.create
      ~classifications:(take (2 + Prng.int rng 3) [ "U"; "C"; "S"; "TS" ])
      ~categories:(take (Prng.int rng 3) [ "X"; "Y"; "Z" ])

let powerset_lattice rng =
  Powerset.create (take (2 + Prng.int rng 3) [ "p"; "q"; "r"; "s" ])

let gen_case seed id =
  (* Each case draws from its own stream: splitmix64 decorrelates even
     adjacent seeds, so deriving from (seed, id) keeps cases independent
     of each other and of the worker that happens to claim them. *)
  let rng = Prng.create (seed lxor ((id + 1) * 0x9E3779B9)) in
  let bounded = id land 1 = 1 in
  match id mod 3 with
  | 0 ->
      let lat = explicit_lattice rng in
      let shape, attrs, csts, pool = GE.policy rng lat in
      let bounds = if bounded then GE.bounds rng lat ~attrs ~pool else [] in
      {
        id;
        backend = "explicit";
        shape;
        bounded;
        payload = P_explicit (lat, attrs, csts, bounds);
      }
  | 1 ->
      let lat = compartment_lattice rng in
      let shape, attrs, csts, pool = GC.policy rng lat in
      let bounds = if bounded then GC.bounds rng lat ~attrs ~pool else [] in
      {
        id;
        backend = "compartment";
        shape;
        bounded;
        payload = P_compartment (lat, attrs, csts, bounds);
      }
  | _ ->
      let lat = powerset_lattice rng in
      let shape, attrs, csts, pool = GP.policy rng lat in
      let bounds = if bounded then GP.bounds rng lat ~attrs ~pool else [] in
      {
        id;
        backend = "powerset";
        shape;
        bounded;
        payload = P_powerset (lat, attrs, csts, bounds);
      }

let run_case ?mutation ?fault case =
  let counters = Battery.zero () in
  let failures =
    match case.payload with
    | P_explicit (lat, attrs, csts, bounds) ->
        B_explicit.run ?mutation ?fault ~counters ~lat ~attrs ~csts ~bounds ()
    | P_compartment (lat, attrs, csts, bounds) ->
        B_compartment.run ?mutation ?fault ~counters ~lat ~attrs ~csts ~bounds
          ()
    | P_powerset (lat, attrs, csts, bounds) ->
        B_powerset.run ?mutation ?fault ~counters ~lat ~attrs ~csts ~bounds ()
  in
  (counters, failures)

let materialize case =
  match case.payload with
  | P_explicit (lat, attrs, csts, bounds) ->
      M_explicit.instance lat ~attrs ~csts ~bounds
  | P_compartment (lat, attrs, csts, bounds) ->
      M_compartment.instance lat ~attrs ~csts ~bounds
  | P_powerset (lat, attrs, csts, bounds) ->
      M_powerset.instance lat ~attrs ~csts ~bounds

(* --- shrinking ------------------------------------------------------- *)

(* "Still fails": the mirrored instance parses back into a valid lattice,
   resolves, and the explicit-backend battery reports at least one
   disagreement (under the same injected mutation, if any). *)
let instance_fails ?mutation ?fault (inst : Instance.t) =
  match Instance.lattice inst with
  | Error _ -> false
  | Ok lat -> (
      match Instance.resolve inst lat with
      | None -> false
      | Some (csts, bounds) ->
          let counters = Battery.zero () in
          B_explicit.run ?mutation ?fault ~counters ~lat
            ~attrs:inst.Instance.attrs ~csts ~bounds ()
          <> [])

(* --- the harness ----------------------------------------------------- *)

type failure_report = {
  case : int;
  backend : string;
  shape : string;
  property : string;
  detail : string;
  repro : Instance.t;
  mirrored : bool;
  files : (string * string * string) option;
}

type summary = {
  seed : int;
  cases : int;
  backends : (string * int) list;
  shapes : (string * int) list;
  bounded : int;
  checks : (string * int) list;
  total_failures : int;
  failures : failure_report list;
}

let max_reports = 5

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let run ?mutation ?fault ?repro_dir ~seed ~cases ~jobs () =
  let jobs = max 1 (min jobs (max 1 cases)) in
  let outcomes = Array.make cases None in
  let next = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= cases then continue := false
      else begin
        let case = gen_case seed i in
        let result =
          (* An exception out of any implementation is itself a finding,
             not a harness crash. *)
          match run_case ?mutation ?fault case with
          | counters, failures -> (counters, failures)
          | exception e ->
              ( Battery.zero (),
                [
                  {
                    Battery.property = "exception";
                    detail = Printexc.to_string e;
                  };
                ] )
        in
        outcomes.(i) <- Some (case, result)
      end
    done
  in
  let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  (* Aggregation is sequential and in case order, so the summary is a pure
     function of (seed, cases) — never of the parallel schedule. *)
  let totals = Battery.zero () in
  let tally tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let backends_tbl = Hashtbl.create 4 and shapes_tbl = Hashtbl.create 4 in
  let bounded = ref 0 in
  let failing = ref [] in
  Array.iter
    (function
      | None -> assert false
      | Some ((case : case), (counters, failures)) ->
          Battery.add totals counters;
          tally backends_tbl case.backend;
          tally shapes_tbl case.shape;
          if case.bounded then incr bounded;
          if failures <> [] then failing := (case, failures) :: !failing)
    outcomes;
  let failing = List.rev !failing in
  let total_failures =
    List.fold_left (fun n (_, fs) -> n + List.length fs) 0 failing
  in
  (match repro_dir with
  | Some dir when failing <> [] -> ensure_dir dir
  | _ -> ());
  let failures =
    List.map
      (fun ((case : case), fs) ->
        let f = List.hd fs in
        let inst0 = materialize case in
        let mirrored = instance_fails ?mutation ?fault inst0 in
        let inst =
          if mirrored then
            Shrink.shrink ~predicate:(instance_fails ?mutation ?fault) inst0
          else inst0
        in
        let header =
          [
            "minup selfcheck reproducer";
            Printf.sprintf "seed=%d case=%d backend=%s shape=%s" seed case.id
              case.backend case.shape;
            Printf.sprintf "property=%s: %s" f.Battery.property
              f.Battery.detail;
            (if mirrored then "shrunk on the explicit mirror"
             else "backend-specific: does not reproduce on the mirror");
            Printf.sprintf
              "replay: mlsclassify solve -l case%d.lat -c case%d.cst \
               --check-minimal"
              case.id case.id;
          ]
        in
        let files =
          match repro_dir with
          | None -> None
          | Some dir ->
              let base = Filename.concat dir (Printf.sprintf "case%d" case.id) in
              write_file (base ^ ".lat") (Instance.lat_file ~header inst);
              write_file (base ^ ".cst") (Instance.cst_file ~header inst);
              (* Machine-readable mirror of the finding, in the same
                 versioned envelope the serve loop answers with. *)
              let envelope =
                Wire.v1
                  ~problem:(Printf.sprintf "case%d" case.id)
                  (Wire.Error
                     {
                       detail =
                         Printf.sprintf "property=%s: %s" f.Battery.property
                           f.Battery.detail;
                     })
              in
              write_file (base ^ ".json")
                (Json.to_string ~pretty:true (Wire.to_json envelope) ^ "\n");
              Some (base ^ ".lat", base ^ ".cst", base ^ ".json")
        in
        {
          case = case.id;
          backend = case.backend;
          shape = case.shape;
          property = f.Battery.property;
          detail = f.Battery.detail;
          repro = inst;
          mirrored;
          files;
        })
      (take max_reports failing)
  in
  {
    seed;
    cases;
    backends =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) backends_tbl []);
    shapes =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) shapes_tbl []);
    bounded = !bounded;
    checks = Battery.to_alist totals;
    total_failures;
    failures;
  }

let pp_summary ppf s =
  let alist l =
    String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l)
  in
  Format.fprintf ppf "selfcheck: seed=%d cases=%d@." s.seed s.cases;
  Format.fprintf ppf "  backends: %s@." (alist s.backends);
  Format.fprintf ppf "  shapes: %s@." (alist s.shapes);
  Format.fprintf ppf "  bounded: %d@." s.bounded;
  Format.fprintf ppf "  checks: %s@." (alist s.checks);
  Format.fprintf ppf "  failures: %d@." s.total_failures;
  List.iter
    (fun r ->
      Format.fprintf ppf "  FAIL case=%d backend=%s shape=%s property=%s: %s@."
        r.case r.backend r.shape r.property r.detail;
      Format.fprintf ppf "    repro%s: %d levels, %d attrs, %d constraints, %d bounds@."
        (if r.mirrored then " (shrunk)" else " (unshrunk, backend-specific)")
        (List.length r.repro.Instance.names)
        (List.length r.repro.Instance.attrs)
        (List.length r.repro.Instance.csts)
        (List.length r.repro.Instance.bounds);
      match r.files with
      | None -> ()
      | Some (lat, cst, json) ->
          Format.fprintf ppf "    wrote %s %s %s@." lat cst json)
    s.failures;
  if s.total_failures > List.length s.failures then
    Format.fprintf ppf "  (%d further failures not shown)@."
      (s.total_failures - List.length s.failures)

let replay ?mutation ?fault ~lat ~cst () =
  match Lattice_file.parse lat with
  | Error e -> Error (Format.asprintf "lattice: %a" Lattice_file.pp_error e)
  | Ok lattice -> (
      match
        Minup_constraints.Parse.parse_resolve
          ~level_of_string:(Explicit.level_of_string lattice)
          cst
      with
      | Error e ->
          Error (Format.asprintf "constraints: %a" Minup_constraints.Parse.pp_error e)
      | Ok r ->
          let counters = Battery.zero () in
          Ok
            (B_explicit.run ?mutation ?fault ~counters ~lat:lattice
               ~attrs:r.Minup_constraints.Parse.attrs
               ~csts:r.Minup_constraints.Parse.csts
               ~bounds:r.Minup_constraints.Parse.upper_bounds ()))
