(** The differential property battery.

    One case = a lattice plus a constraint set (and optional upper
    bounds).  {!Make.run} pushes the case through every implementation
    that claims to agree with the solver and records each disagreement:

    - the solver's output satisfies every constraint;
    - it is pointwise minimal, exactly — by the polynomial
      {!Minup_core.Explain} replay on every case, and cross-checked
      against the exhaustive {!Minup_core.Verify} enumeration whenever
      the candidate space fits under a cap;
    - the backtracking baseline ({!Minup_baselines.Backtrack}) and the
      solver never strictly undercut one another (minimal solutions need
      not be unique, but two minimal solutions are incomparable);
    - the Qian-style baseline ({!Minup_baselines.Qian}) satisfies the
      constraints and never beats the solver;
    - {!Minup_core.Engine.Make.solve_batch} is bit-identical (levels
      {e and} [Instr] counters) to sequential solves;
    - a {e supervised} batch with a seeded fault planted through
      [Minup_faultsim] (raise / virtual-clock stall / step-budget
      blowout, rotating per case) returns [Error] at exactly the planted
      index, retries it exactly as configured, leaves every other copy
      bit-identical to the sequential solve, and produces the same
      outcome labels at [jobs = 1] and [jobs = 2];
    - the {!Minup_constraints.Parse} render/parse round-trip preserves
      the policy, and the {!Minup_obs.Json} print/parse round-trip
      preserves a document built from the solution (compact and pretty);
    - with bounds: a returned solution respects them and is still
      minimal; a reported inconsistency is confirmed against the
      exhaustive oracle on small cases;
    - a {!Minup_session.Session} fed a deterministic pseudo-random delta
      sequence (add/remove constraint, set/clear lower bound, new
      attribute) answers every [resolve] bit-identically to a
      from-scratch compile-and-solve of its snapshot — incrementality
      must never be visible in results.  A failing sequence is shrunk
      to a minimal failing subsequence before being reported;
    - {!Minup_core.Wire} envelopes built from the case (solution with
      and without stats, fault, infeasible, error, acks) survive the
      [to_json] → [to_string] → [parse] → [of_json] round trip, compact
      and pretty.

    A {!mutation} injects a deliberate bug into the solver's output so
    the harness (and its shrinker) can be proven to catch one. *)

type mutation =
  | Overclassify  (** raise the first non-top attribute to ⊤ *)
  | Underclassify  (** drop the first non-bottom attribute to ⊥ *)

(** How many times each property was actually checked (oracles and
    baselines only run when the case is small enough, bounds only when
    present), accumulated across cases with {!add}. *)
type counters = {
  mutable cases : int;
  mutable compile : int;
  mutable satisfies : int;
  mutable minimal : int;
  mutable oracle : int;
  mutable backtrack : int;
  mutable qian : int;
  mutable batch : int;
  mutable supervised : int;
  mutable parse_rt : int;
  mutable json_rt : int;
  mutable bounded_ok : int;
  mutable bounded_infeasible : int;
  mutable session : int;
  mutable wire : int;
}

val zero : unit -> counters

(** [add into c] accumulates [c] into [into]. *)
val add : counters -> counters -> unit

(** [(label, count)] pairs in a fixed order, for summaries. *)
val to_alist : counters -> (string * int) list

type failure = { property : string; detail : string }

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  (** Run the full battery on one case.  Returns the disagreements found
      (empty = the case passed); bumps [counters] per executed check.

      [fault] plants an extra, {e unexpected} runtime fault (of the given
      kind) into the supervised-batch property, which must then fail —
      the supervision analogue of [mutation]: it proves the harness
      catches engine-level misbehavior, not just wrong levels. *)
  val run :
    ?mutation:mutation ->
    ?fault:Minup_faultsim.kind ->
    counters:counters ->
    lat:L.t ->
    attrs:string list ->
    csts:L.level Minup_constraints.Cst.t list ->
    bounds:(string * L.level) list ->
    unit ->
    failure list
end
