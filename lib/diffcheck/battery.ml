module Cst = Minup_constraints.Cst
module Parse = Minup_constraints.Parse
module Instr = Minup_core.Instr
module Wire = Minup_core.Wire
module Fault = Minup_core.Fault
module Json = Minup_obs.Json
module Prng = Minup_workload.Prng

type mutation = Overclassify | Underclassify

type counters = {
  mutable cases : int;
  mutable compile : int;
  mutable satisfies : int;
  mutable minimal : int;
  mutable oracle : int;
  mutable backtrack : int;
  mutable qian : int;
  mutable batch : int;
  mutable supervised : int;
  mutable parse_rt : int;
  mutable json_rt : int;
  mutable bounded_ok : int;
  mutable bounded_infeasible : int;
  mutable session : int;
  mutable wire : int;
}

let zero () =
  {
    cases = 0;
    compile = 0;
    satisfies = 0;
    minimal = 0;
    oracle = 0;
    backtrack = 0;
    qian = 0;
    batch = 0;
    supervised = 0;
    parse_rt = 0;
    json_rt = 0;
    bounded_ok = 0;
    bounded_infeasible = 0;
    session = 0;
    wire = 0;
  }

let add into c =
  into.cases <- into.cases + c.cases;
  into.compile <- into.compile + c.compile;
  into.satisfies <- into.satisfies + c.satisfies;
  into.minimal <- into.minimal + c.minimal;
  into.oracle <- into.oracle + c.oracle;
  into.backtrack <- into.backtrack + c.backtrack;
  into.qian <- into.qian + c.qian;
  into.batch <- into.batch + c.batch;
  into.supervised <- into.supervised + c.supervised;
  into.parse_rt <- into.parse_rt + c.parse_rt;
  into.json_rt <- into.json_rt + c.json_rt;
  into.bounded_ok <- into.bounded_ok + c.bounded_ok;
  into.bounded_infeasible <- into.bounded_infeasible + c.bounded_infeasible;
  into.session <- into.session + c.session;
  into.wire <- into.wire + c.wire

let to_alist c =
  [
    ("compile", c.compile);
    ("satisfies", c.satisfies);
    ("minimal", c.minimal);
    ("oracle", c.oracle);
    ("backtrack", c.backtrack);
    ("qian", c.qian);
    ("batch", c.batch);
    ("supervised", c.supervised);
    ("parse", c.parse_rt);
    ("json", c.json_rt);
    ("bounded_ok", c.bounded_ok);
    ("bounded_infeasible", c.bounded_infeasible);
    ("session", c.session);
    ("wire", c.wire);
  ]

type failure = { property : string; detail : string }

(* Caps keeping the exhaustive cross-checks polynomial in practice: the
   oracle enumerates at most [oracle_cap] candidate assignments, the
   backtracking baseline runs only when its choice space is below
   [backtrack_space]. *)
let oracle_cap = 20_000
let backtrack_space = 5_000

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Minup_core.Solver.Make (L)
  module V = Minup_core.Verify.Make (L)
  module E = Minup_core.Explain.Make (L)
  module Engine = Minup_core.Engine.Make (L)
  module Backtrack = Minup_baselines.Backtrack.Make (L)
  module Qian = Minup_baselines.Qian.Make (L)
  module Sess = Minup_session.Session.Make (L)

  (* One step of the session property's replayable delta sequence.
     Deltas only ever reference the case's original attributes, so every
     subsequence is well-formed — which is what makes shrinking sound. *)
  type delta =
    | D_add of L.level Cst.t
    | D_remove of int
    | D_bound of string * L.level option
    | D_attr of string

  let delta_descr lat = function
    | D_add c ->
        let rhs =
          match c.Cst.rhs with
          | Cst.Attr a -> a
          | Cst.Level l -> L.level_to_string lat l
        in
        Printf.sprintf "add {%s} >= %s" (String.concat "," c.Cst.lhs) rhs
    | D_remove id -> Printf.sprintf "remove #%d" id
    | D_bound (a, Some l) ->
        Printf.sprintf "bound %s >= %s" a (L.level_to_string lat l)
    | D_bound (a, None) -> Printf.sprintf "clear %s" a
    | D_attr a -> Printf.sprintf "attr %s" a

  let session_deltas rng ~lat ~attrs ~csts =
    let pool =
      L.bottom lat :: L.top lat
      :: List.filter_map
           (fun (c : L.level Cst.t) ->
             match c.Cst.rhs with Cst.Level l -> Some l | Cst.Attr _ -> None)
           csts
    in
    let n0 = List.length csts in
    List.init 8 (fun k ->
        match Prng.int rng 6 with
        | 0 | 1 -> D_bound (Prng.pick rng attrs, Some (Prng.pick rng pool))
        | 2 -> D_bound (Prng.pick rng attrs, None)
        | 3 -> (
            let lhs = Prng.sample rng (1 + Prng.int rng 2) attrs in
            let rhs =
              if Prng.bool rng then Cst.Level (Prng.pick rng pool)
              else Cst.Attr (Prng.pick rng attrs)
            in
            match Cst.make ~lhs ~rhs with
            | Ok c -> D_add c
            | Error _ -> D_bound (Prng.pick rng attrs, None))
        | 4 when n0 > 0 ->
            (* Ids [0, n0) name the initial constraints, later ids the
               D_adds before this step; an id that was never assigned (or
               already removed) makes the delta a harmless no-op. *)
            D_remove (Prng.int rng (n0 + k))
        | _ -> D_attr (Printf.sprintf "zz%d" k))

  let apply_delta sess = function
    | D_add c -> ignore (Sess.add_constraint sess c : int)
    | D_remove id -> ignore (Sess.remove_constraint sess id : bool)
    | D_bound (a, l) -> Sess.set_lower_bound sess a l
    | D_attr a -> Sess.add_attribute sess a

  (* Replay [create; check; (delta; check)*] where each check resolves
     the session and demands bit-identical levels from a from-scratch
     compile-and-solve of the snapshot.  Returns the first failure as a
     detail string, [None] when the replay is parity-clean. *)
  let session_failure ~lat ~attrs ~csts deltas =
    let check sess step =
      let inc = Sess.resolve sess in
      let attrs', csts' = Sess.snapshot sess in
      match S.compile ~lattice:lat ~attrs:attrs' csts' with
      | Error e ->
          Some
            (Format.asprintf "step %d: snapshot rejected: %a" step
               Minup_constraints.Problem.pp_error e)
      | Ok p ->
          let fresh = S.solve p in
          let a = inc.Sess.Solver.levels and b = fresh.S.levels in
          let same =
            Array.length a = Array.length b
            && begin
                 let ok = ref true in
                 Array.iteri
                   (fun i l -> if not (L.equal lat l b.(i)) then ok := false)
                   a;
                 !ok
               end
          in
          if same then None
          else
            Some
              (Printf.sprintf
                 "step %d: incremental resolve differs from scratch solve" step)
    in
    try
      let sess = Sess.create ~lattice:lat ~attrs csts in
      match check sess 0 with
      | Some _ as f -> f
      | None ->
          let rec go step = function
            | [] -> None
            | d :: rest -> (
                apply_delta sess d;
                match check sess step with
                | Some _ as f -> f
                | None -> go (step + 1) rest)
          in
          go 1 deltas
    with e -> Some ("exception: " ^ Printexc.to_string e)

  (* Greedy one-at-a-time shrink: drop deltas while the replay still
     fails. *)
  let shrink_deltas ~lat ~attrs ~csts deltas =
    let fails ds = session_failure ~lat ~attrs ~csts ds <> None in
    let rec go ds i =
      if i >= List.length ds then ds
      else
        let cand = List.filteri (fun j _ -> j <> i) ds in
        if fails cand then go cand i else go ds (i + 1)
    in
    go deltas 0

  let mutate lat mutation levels =
    let levels = Array.copy levels in
    (match mutation with
    | Overclassify ->
        let top = L.top lat in
        let exception Done in
        (try
           Array.iteri
             (fun a l ->
               if not (L.equal lat l top) then begin
                 levels.(a) <- top;
                 raise Done
               end)
             levels
         with Done -> ())
    | Underclassify ->
        let bot = L.bottom lat in
        let exception Done in
        (try
           Array.iteri
             (fun a l ->
               if not (L.equal lat l bot) then begin
                 levels.(a) <- bot;
                 raise Done
               end)
             levels
         with Done -> ()));
    levels

  let strictly_below lat a b =
    (* a ⊏ b pointwise: b dominates a and they differ somewhere. *)
    V.dominates lat b a && not (V.equal_assignment lat a b)

  let run ?mutation ?fault ~(counters : counters) ~lat ~attrs ~csts ~bounds ()
      =
    let fails = ref [] in
    let fail property detail = fails := { property; detail } :: !fails in
    counters.cases <- counters.cases + 1;
    (match S.compile ~lattice:lat ~attrs csts with
    | Error e ->
        fail "compile"
          (Format.asprintf "generated constraints rejected: %a"
             Minup_constraints.Problem.pp_error e)
    | Ok problem ->
        counters.compile <- counters.compile + 1;
        let sol = S.solve problem in
        let levels =
          match mutation with
          | None -> sol.S.levels
          | Some m -> mutate lat m sol.S.levels
        in
        counters.satisfies <- counters.satisfies + 1;
        if not (S.satisfies problem levels) then
          fail "satisfies"
            (Printf.sprintf "solution violates a constraint (%d attrs, %d csts)"
               (List.length attrs) (List.length csts))
        else begin
          (* Exact minimality, polynomial path — every case. *)
          counters.minimal <- counters.minimal + 1;
          let emin = E.is_locally_minimal problem levels in
          if not emin then
            fail "minimal" "Explain.is_locally_minimal rejects the solution";
          (* Exhaustive oracle on small cases; must agree with Explain. *)
          (match V.is_minimal_solution ~cap:oracle_cap problem levels with
          | Error `Too_large -> ()
          | Ok omin ->
              counters.oracle <- counters.oracle + 1;
              if omin <> emin then
                fail "oracle"
                  (Printf.sprintf
                     "exhaustive enumeration says minimal=%b, Explain says %b"
                     omin emin));
          (* Backtracking baseline: two minimal solutions are incomparable,
             so neither side may strictly undercut the other. *)
          (match Backtrack.search_space problem with
          | Some space when space <= backtrack_space -> (
              counters.backtrack <- counters.backtrack + 1;
              match Backtrack.solve ~max_space:backtrack_space problem with
              | None -> fail "backtrack" "exhaustive choice search found nothing"
              | Some bl ->
                  if not (S.satisfies problem bl) then
                    fail "backtrack" "backtracking candidate violates constraints"
                  else begin
                    if strictly_below lat bl levels then
                      fail "backtrack"
                        "backtracking found a strictly lower solution";
                    if strictly_below lat levels bl then
                      fail "backtrack"
                        "solver solution strictly undercuts the backtracking \
                         minimum"
                  end)
          | _ -> ());
          (* Qian-style baseline: sound but over-classifying — it can never
             end up strictly below a minimal solution. *)
          counters.qian <- counters.qian + 1;
          let q = Qian.solve problem in
          if not (S.satisfies problem q) then
            fail "qian" "Qian labeling violates constraints"
          else if strictly_below lat q levels then
            fail "qian" "Qian labeling strictly below the minimal solution"
        end;
        (* Batch engine parity: three copies at jobs=2 must reproduce the
           sequential solve bit for bit, Instr counters included.  (Checked
           against the unmutated solution: the engine wraps the same
           solver.) *)
        counters.batch <- counters.batch + 1;
        let report = Engine.solve_batch ~jobs:2 (Array.make 3 problem) in
        Array.iteri
          (fun i -> function
            | Error f ->
                fail "batch"
                  (Format.asprintf "solve_batch copy %d faulted: %a" i
                     Minup_core.Fault.pp f)
            | Ok (b : S.solution) ->
                if not (V.equal_assignment lat b.S.levels sol.S.levels) then
                  fail "batch"
                    (Printf.sprintf "solve_batch copy %d diverges from sequential"
                       i)
                else if Instr.to_alist b.S.stats <> Instr.to_alist sol.S.stats
                then
                  fail "batch"
                    (Printf.sprintf "solve_batch copy %d: counter divergence" i))
          report.Engine.solutions;
        (* Supervised batch with an injected fault: the fault must surface
           as [Error] at exactly its planted index, every other copy must
           stay bit-identical to the sequential solve, and the whole
           outcome must be invariant under the worker count.  Skipped on
           attribute-free instances: their solves emit no scheduling
           events, so a planted fault can never fire (and the shrinker
           must not be able to ride this property down to an empty
           instance). *)
        if attrs <> [] then begin
          counters.supervised <- counters.supervised + 1;
          let key = List.length csts + (7 * List.length attrs) in
          let nb = 4 in
          let f_idx = key mod nb in
          (* Every attribute contributes at least two scheduling events
             (Consider plus Back_assigned/Finalized), so any event index
             below [2·|attrs|] is guaranteed to fire. *)
          let at_event = key mod (2 * List.length attrs) in
          let kind =
            match key / nb mod 3 with
            | 0 -> Minup_faultsim.Raise
            | 1 -> Minup_faultsim.Stall 60_000
            | _ -> Minup_faultsim.Blowout
          in
          let plan =
            { Minup_faultsim.task = f_idx; at_event; kind }
            ::
            (match fault with
            | None -> []
            | Some k ->
                (* An extra, unexpected fault: the property demands [Ok]
                   here, so the harness must flag it — this is how
                   [--inject-fault] proves supervision failures are
                   caught. *)
                [
                  {
                    Minup_faultsim.task = (f_idx + 2) mod nb;
                    at_event;
                    kind = k;
                  };
                ])
          in
          let policy =
            {
              Minup_core.Engine.default_policy with
              deadline_ms = Some 10_000;
              max_steps = Some 10_000_000;
              retries = 1;
              backoff_ms = 0;
              seed = key;
            }
          in
          let expected_label =
            match kind with
            | Minup_faultsim.Raise -> "injected"
            | Minup_faultsim.Stall _ -> "deadline"
            | Minup_faultsim.Blowout -> "budget"
          in
          let run_supervised jobs =
            Engine.solve_batch ~jobs ~policy
              ~instrument:(Minup_faultsim.instrument plan)
              (Array.make nb problem)
          in
          let check_report jobs (r : Engine.report) =
            Array.iteri
              (fun i -> function
                | Ok (b : S.solution) ->
                    if i = f_idx then
                      fail "supervised"
                        (Printf.sprintf
                           "jobs=%d: planted fault at task %d did not fire" jobs
                           f_idx)
                    else if not (V.equal_assignment lat b.S.levels sol.S.levels)
                    then
                      fail "supervised"
                        (Printf.sprintf
                           "jobs=%d: fault-free copy %d diverges from sequential"
                           jobs i)
                    else if Instr.to_alist b.S.stats <> Instr.to_alist sol.S.stats
                    then
                      fail "supervised"
                        (Printf.sprintf
                           "jobs=%d: fault-free copy %d: counter divergence" jobs
                           i)
                | Error f ->
                    if i <> f_idx then
                      fail "supervised"
                        (Format.asprintf
                           "jobs=%d: unplanted fault at task %d: %a" jobs i
                           Minup_core.Fault.pp f)
                    else if Minup_core.Fault.label f <> expected_label then
                      fail "supervised"
                        (Format.asprintf
                           "jobs=%d: planted %s fault surfaced as %a" jobs
                           expected_label Minup_core.Fault.pp f))
              r.Engine.solutions;
            if r.Engine.attempts.(f_idx) <> 2 then
              fail "supervised"
                (Printf.sprintf "jobs=%d: expected 2 attempts at task %d, got %d"
                   jobs f_idx
                   r.Engine.attempts.(f_idx))
          in
          let r1 = run_supervised 1 in
          let r2 = run_supervised 2 in
          check_report 1 r1;
          check_report 2 r2;
          let labels (r : Engine.report) =
            Array.map
              (function
                | Ok _ -> "ok" | Error f -> Minup_core.Fault.label f)
              r.Engine.solutions
          in
          if labels r1 <> labels r2 then
            fail "supervised" "outcome labels differ between jobs=1 and jobs=2"
        end;
        (* Parse round-trip: render the policy and read it back. *)
        counters.parse_rt <- counters.parse_rt + 1;
        let resolved : _ Parse.resolved =
          { attrs; csts; upper_bounds = bounds }
        in
        let text =
          Parse.render ~level_to_string:(L.level_to_string lat) resolved
        in
        (match
           Parse.parse_resolve ~level_of_string:(L.level_of_string lat) text
         with
        | Error e ->
            fail "parse"
              (Format.asprintf "render output rejected: %a" Parse.pp_error e)
        | Ok r ->
            let cst_eq (a : _ Cst.t) (b : _ Cst.t) =
              a.Cst.lhs = b.Cst.lhs
              &&
              match (a.Cst.rhs, b.Cst.rhs) with
              | Cst.Attr x, Cst.Attr y -> x = y
              | Cst.Level x, Cst.Level y -> L.equal lat x y
              | _ -> false
            in
            let same =
              r.Parse.attrs = attrs
              && List.length r.Parse.csts = List.length csts
              && List.for_all2 cst_eq r.Parse.csts csts
              && List.length r.Parse.upper_bounds = List.length bounds
              && List.for_all2
                   (fun (a, l) (b, m) -> a = b && L.equal lat l m)
                   r.Parse.upper_bounds bounds
            in
            if not same then
              fail "parse" "render/parse_resolve round-trip changed the policy");
        (* JSON round-trip of a solution document, compact and pretty. *)
        counters.json_rt <- counters.json_rt + 1;
        let doc =
          Json.Obj
            [
              ( "assignment",
                Json.Obj
                  (List.map
                     (fun (a, l) -> (a, Json.Str (L.level_to_string lat l)))
                     sol.S.assignment) );
              ("stats", Instr.to_json sol.S.stats);
            ]
        in
        List.iter
          (fun pretty ->
            match Json.parse (Json.to_string ~pretty doc) with
            | Error e ->
                fail "json"
                  (Printf.sprintf "to_string ~pretty:%b output rejected: %s"
                     pretty e)
            | Ok doc' ->
                if doc' <> doc then
                  fail "json"
                    (Printf.sprintf
                       "to_string ~pretty:%b/parse round-trip changed the \
                        document"
                       pretty))
          [ false; true ];
        (* Bounded mode (§6): a solution must sit within the bounds and
           still be minimal; a reported inconsistency is confirmed by
           enumeration when feasible. *)
        if bounds <> [] then begin
          match S.solve_with_bounds problem bounds with
          | Ok bs ->
              counters.bounded_ok <- counters.bounded_ok + 1;
              if not (S.satisfies problem bs.S.levels) then
                fail "bounded" "bounded solution violates constraints"
              else begin
                List.iter
                  (fun (a, b) ->
                    match S.find problem bs a with
                    | Some l when L.leq lat l b -> ()
                    | Some _ ->
                        fail "bounded"
                          (Printf.sprintf
                             "bounded solution exceeds the bound on %S" a)
                    | None ->
                        fail "bounded"
                          (Printf.sprintf "bound on unknown attribute %S" a))
                  bounds;
                if not (E.is_locally_minimal problem bs.S.levels) then
                  fail "bounded" "bounded solution is not pointwise minimal"
              end
          | Error _ -> (
              counters.bounded_infeasible <- counters.bounded_infeasible + 1;
              match V.all_solutions ~cap:oracle_cap problem with
              | Error `Too_large -> ()
              | Ok sols ->
                  let within ls =
                    List.for_all
                      (fun (a, b) ->
                        match
                          Minup_constraints.Problem.attr_id problem.S.prob a
                        with
                        | Some i -> L.leq lat ls.(i) b
                        | None -> true)
                      bounds
                  in
                  if List.exists within sols then
                    fail "bounded"
                      "reported inconsistent, but an in-bounds solution exists")
        end;
        (* Session delta parity: replay the case into a long-lived
           {!Minup_session.Session}, apply a deterministic pseudo-random
           delta sequence, and demand that every incremental [resolve]
           is bit-identical to a from-scratch solve of the snapshot —
           incrementality must never be visible in results. *)
        if attrs <> [] then begin
          counters.session <- counters.session + 1;
          let key =
            (11 * List.length csts) + (13 * List.length attrs)
            + List.length bounds
          in
          let rng = Prng.create key in
          let deltas = session_deltas rng ~lat ~attrs ~csts in
          match session_failure ~lat ~attrs ~csts deltas with
          | None -> ()
          | Some _ ->
              let shrunk = shrink_deltas ~lat ~attrs ~csts deltas in
              let detail =
                match session_failure ~lat ~attrs ~csts shrunk with
                | Some d -> d
                | None -> "failure did not survive shrinking"
              in
              fail "session"
                (Printf.sprintf "after %d deltas [%s]: %s"
                   (List.length shrunk)
                   (String.concat "; " (List.map (delta_descr lat) shrunk))
                   detail)
        end;
        (* Wire envelope round-trip: every response shape the serve loop
           can emit, built from this case's data, must survive
           to_json → to_string → parse → of_json, compact and pretty. *)
        counters.wire <- counters.wire + 1;
        let assignment =
          List.map
            (fun (a, l) -> (a, L.level_to_string lat l))
            sol.S.assignment
        in
        let envelopes =
          [
            Wire.v1 (Wire.Solution { assignment; stats = Some sol.S.stats });
            Wire.v1 ~problem:"battery"
              (Wire.Solution { assignment; stats = None });
            Wire.v1 ~problem:"battery"
              (Wire.Fault
                 {
                   fault =
                     Fault.Budget_exhausted
                       {
                         max_steps = List.length csts;
                         steps = List.length attrs;
                       };
                   attempts = 2;
                   task = Some 0;
                 });
            Wire.v1 (Wire.Infeasible { detail = "bounds conflict" });
            Wire.v1 (Wire.Error { detail = "battery" });
            Wire.v1 ~problem:"battery"
              (Wire.Ack { id = Some (List.length csts) });
            Wire.v1 (Wire.Ack { id = None });
          ]
        in
        List.iter
          (fun env ->
            List.iter
              (fun pretty ->
                match Json.parse (Json.to_string ~pretty (Wire.to_json env)) with
                | Error e ->
                    fail "wire"
                      (Printf.sprintf
                         "serialized envelope rejected by Json.parse \
                          (pretty:%b): %s"
                         pretty e)
                | Ok j -> (
                    match Wire.of_json j with
                    | Error e ->
                        fail "wire"
                          (Printf.sprintf
                             "of_json rejected a to_json envelope (pretty:%b): \
                              %s"
                             pretty e)
                    | Ok env' ->
                        if not (Wire.equal env env') then
                          fail "wire"
                            (Printf.sprintf
                               "envelope round-trip changed (status %s, \
                                pretty:%b)"
                               (Wire.status env) pretty)))
              [ false; true ])
          envelopes);
    List.rev !fails
end
