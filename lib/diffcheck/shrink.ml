module Cst = Minup_constraints.Cst

let remove_nth n xs = List.filteri (fun i _ -> i <> n) xs

(* Drop elements of [get inst] one at a time, keeping every removal that
   preserves [predicate].  The index does not advance after a successful
   removal (the next element slides into place). *)
let shrink_list ~get ~set ~predicate inst =
  let rec go inst i =
    let xs = get inst in
    if i >= List.length xs then inst
    else
      let candidate = set inst (remove_nth i xs) in
      if predicate candidate then go candidate i else go inst (i + 1)
  in
  go inst 0

let mentioned_attrs (inst : Instance.t) =
  List.concat_map Cst.attrs inst.csts @ List.map fst inst.bounds

let mentioned_levels (inst : Instance.t) =
  List.filter_map
    (fun (c : _ Cst.t) ->
      match c.Cst.rhs with Cst.Level nm -> Some nm | Cst.Attr _ -> None)
    inst.csts
  @ List.map snd inst.bounds

let drop_level (inst : Instance.t) nm =
  {
    inst with
    Instance.names = List.filter (( <> ) nm) inst.names;
    order = List.filter (fun (a, b) -> a <> nm && b <> nm) inst.order;
  }

let pass ~predicate (inst : Instance.t) =
  let inst =
    shrink_list ~predicate
      ~get:(fun (i : Instance.t) -> i.csts)
      ~set:(fun i csts -> { i with Instance.csts })
      inst
  in
  let inst =
    shrink_list ~predicate
      ~get:(fun (i : Instance.t) -> i.bounds)
      ~set:(fun i bounds -> { i with Instance.bounds })
      inst
  in
  (* Unreferenced attributes.  [shrink_list] over the full attribute list
     would also try referenced ones; restricting the move keeps the
     instance internally consistent (every lhs attribute stays declared). *)
  let inst =
    let used = mentioned_attrs inst in
    List.fold_left
      (fun (acc : Instance.t) a ->
        if List.mem a used then acc
        else
          let candidate =
            { acc with Instance.attrs = List.filter (( <> ) a) acc.attrs }
          in
          if predicate candidate then candidate else acc)
      inst inst.attrs
  in
  (* Unreferenced lattice levels; the predicate re-validates the lattice,
     so removals that break the lub/glb structure are rejected. *)
  let inst =
    let used = mentioned_levels inst in
    List.fold_left
      (fun (acc : Instance.t) nm ->
        if List.mem nm used then acc
        else
          let candidate = drop_level acc nm in
          if predicate candidate then candidate else acc)
      inst inst.names
  in
  inst

let shrink ~predicate inst =
  let rec fixpoint inst =
    let inst' = pass ~predicate inst in
    if inst' = inst then inst else fixpoint inst'
  in
  fixpoint inst
