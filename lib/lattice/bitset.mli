(** Fixed-capacity mutable bit sets.

    Bit sets are the workhorse behind explicit lattice representations: each
    element of a poset carries the bit set of elements it dominates (or is
    dominated by), so that order tests, upper-bound intersections and minimal
    element extraction are word-parallel operations. *)

type t

(** [create n] is a bit set able to hold members [0 .. n-1], initially empty. *)
val create : int -> t

(** Capacity the set was created with. *)
val capacity : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

(** Number of members. *)
val cardinal : t -> int

(** [popcount w] — number of set bits of a raw word, by SWAR lane summation
    (no loop over bits).  Exposed for tests and for callers doing their own
    word-level tricks. *)
val popcount : int -> int

val is_empty : t -> bool
val copy : t -> t
val equal : t -> t -> bool

(** [subset a b] is [true] iff every member of [a] is a member of [b]. *)
val subset : t -> t -> bool

(** [inter a b] is a fresh set holding the intersection. The arguments must
    have the same capacity. *)
val inter : t -> t -> t

val union : t -> t -> t
val diff : t -> t -> t

(** In-place intersection: [a := a ∩ b]. *)
val inter_into : t -> t -> unit

val union_into : t -> t -> unit

(** [iter f s] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t

(** First (smallest) member, if any. *)
val min_elt : t -> int option

(** Last (largest) member, if any. *)
val max_elt : t -> int option

(** [disjoint a b] is [true] iff the sets share no member. *)
val disjoint : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Arbitrary total order (word-wise), for use in maps and sets. *)
val compare : t -> t -> int
