type level = int

type t = {
  names : string array; (* indexed by internal (topological) level id *)
  index : (string, int) Hashtbl.t;
  up : Bitset.t array; (* up.(i) = { j | i ⊑ j }, reflexive *)
  down : Bitset.t array;
  covers_lo : int list array; (* immediate predecessors, ascending *)
  covers_hi : int list array; (* immediate successors, ascending *)
  lub_table : int array option; (* flat n*n, present for small lattices *)
  glb_table : int array option;
  lub_memo : int array; (* direct-mapped cache for the table-less case *)
  glb_memo : int array;
  top : int;
  bottom : int;
  height : int;
}

type error =
  | Empty
  | Duplicate_name of string
  | Unknown_name of string
  | Cyclic_order
  | No_upper_bound of string * string
  | No_least_upper_bound of string * string * string * string
  | No_lower_bound of string * string
  | No_greatest_lower_bound of string * string * string * string

let pp_error ppf = function
  | Empty -> Format.fprintf ppf "lattice has no levels"
  | Duplicate_name n -> Format.fprintf ppf "duplicate level name %S" n
  | Unknown_name n -> Format.fprintf ppf "order pair mentions unknown level %S" n
  | Cyclic_order -> Format.fprintf ppf "order relation is cyclic"
  | No_upper_bound (a, b) ->
      Format.fprintf ppf "levels %S and %S have no upper bound" a b
  | No_least_upper_bound (a, b, m1, m2) ->
      Format.fprintf ppf
        "levels %S and %S have incomparable minimal upper bounds %S and %S" a b
        m1 m2
  | No_lower_bound (a, b) ->
      Format.fprintf ppf "levels %S and %S have no lower bound" a b
  | No_greatest_lower_bound (a, b, m1, m2) ->
      Format.fprintf ppf
        "levels %S and %S have incomparable maximal lower bounds %S and %S" a b
        m1 m2

(* Lattices up to this size get O(1) lub/glb lookup tables. *)
let table_threshold = 600

(* Above the threshold, lub/glb fall back to upset/downset intersections —
   O(n/word_size) per call.  A small direct-mapped memo in front of that
   path catches the heavy repetition a solver run exhibits (the same few
   level pairs are combined over and over).  Each slot packs query and
   answer into ONE immediate int, [(a*n + b) * n + result + 1] with a ≤ b
   (0 = empty), so a read either sees a complete, self-identifying entry or
   misses — concurrent unsynchronised use from several domains (the batch
   engine shares lattices across workers) can at worst lose a cached entry,
   never yield a wrong answer.  Packing needs n³ < 2^62, i.e. n < ~1.6M —
   far beyond what [create]'s O(n²) validation pass admits anyway. *)
let memo_size = 4096 (* power of two *)
let memo_mask = memo_size - 1

exception Err of error

let build_index names =
  let index = Hashtbl.create (List.length names) in
  List.iteri
    (fun i n ->
      if Hashtbl.mem index n then raise (Err (Duplicate_name n));
      Hashtbl.add index n i)
    names;
  index

(* lub of internal ids a b: minimal element of up(a) ∩ up(b), checked unique.
   Internal ids are topological, so the smallest id in the intersection is a
   minimal element; it is the lub iff the whole intersection sits above it. *)
let lub_of_upsets ~names up a b =
  let s = Bitset.inter up.(a) up.(b) in
  match Bitset.min_elt s with
  | None -> raise (Err (No_upper_bound (names.(a), names.(b))))
  | Some m ->
      if Bitset.subset s up.(m) then m
      else
        let other =
          Bitset.fold
            (fun x acc ->
              match acc with
              | Some _ -> acc
              | None -> if x <> m && not (Bitset.mem up.(m) x) then Some x else acc)
            s None
        in
        let m2 = match other with Some x -> x | None -> m in
        raise
          (Err (No_least_upper_bound (names.(a), names.(b), names.(m), names.(m2))))

let glb_of_downsets ~names down a b =
  let s = Bitset.inter down.(a) down.(b) in
  match Bitset.max_elt s with
  | None -> raise (Err (No_lower_bound (names.(a), names.(b))))
  | Some m ->
      if Bitset.subset s down.(m) then m
      else
        let other =
          Bitset.fold
            (fun x acc ->
              match acc with
              | Some _ -> acc
              | None -> if x <> m && not (Bitset.mem down.(m) x) then Some x else acc)
            s None
        in
        let m2 = match other with Some x -> x | None -> m in
        raise
          (Err
             (No_greatest_lower_bound (names.(a), names.(b), names.(m), names.(m2))))

let create ~names ~order =
  try
    if names = [] then raise (Err Empty);
    let names0 = Array.of_list names in
    let n = Array.length names0 in
    let index0 = build_index names in
    let edge (lo, hi) =
      let find x =
        match Hashtbl.find_opt index0 x with
        | Some i -> i
        | None -> raise (Err (Unknown_name x))
      in
      (find lo, find hi)
    in
    (* Reflexive pairs are trivially true statements; drop them. *)
    let edges0 =
      List.filter (fun (lo, hi) -> lo <> hi) (List.map edge order)
    in
    let topo =
      match Hasse.topological_order n edges0 with
      | l -> Array.of_list l
      | exception Invalid_argument _ -> raise (Err Cyclic_order)
    in
    (* rank.(old_id) = new (topological) id *)
    let rank = Array.make n 0 in
    Array.iteri (fun pos old_id -> rank.(old_id) <- pos) topo;
    let names = Array.init n (fun i -> names0.(topo.(i))) in
    let index = build_index (Array.to_list names) in
    let edges = List.map (fun (lo, hi) -> (rank.(lo), rank.(hi))) edges0 in
    let covers = Hasse.transitive_reduction n edges in
    let up = Hasse.transitive_closure n covers in
    let down = Array.init n (fun _ -> Bitset.create n) in
    for i = 0 to n - 1 do
      Bitset.iter (fun j -> Bitset.set down.(j) i) up.(i)
    done;
    let covers_lo = Array.make n [] and covers_hi = Array.make n [] in
    List.iter
      (fun (lo, hi) ->
        covers_lo.(hi) <- lo :: covers_lo.(hi);
        covers_hi.(lo) <- hi :: covers_hi.(lo))
      (List.rev covers);
    (* Validate lattice-hood by computing every lub and glb. *)
    let lub_tab = Array.make (n * n) 0 and glb_tab = Array.make (n * n) 0 in
    for a = 0 to n - 1 do
      for b = a to n - 1 do
        let l = lub_of_upsets ~names up a b in
        let g = glb_of_downsets ~names down a b in
        lub_tab.((a * n) + b) <- l;
        lub_tab.((b * n) + a) <- l;
        glb_tab.((a * n) + b) <- g;
        glb_tab.((b * n) + a) <- g
      done
    done;
    let keep_tables = n <= table_threshold in
    Ok
      {
        names;
        index;
        up;
        down;
        covers_lo;
        covers_hi;
        lub_table = (if keep_tables then Some lub_tab else None);
        glb_table = (if keep_tables then Some glb_tab else None);
        lub_memo = (if keep_tables then [||] else Array.make memo_size 0);
        glb_memo = (if keep_tables then [||] else Array.make memo_size 0);
        top = n - 1;
        bottom = 0;
        height = Hasse.longest_path n covers;
      }
  with Err e -> Error e

let create_exn ~names ~order =
  match create ~names ~order with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Explicit.create: %a" pp_error e)

let chain names =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  create_exn ~names ~order:(pairs names)

let cardinal t = Array.length t.names
let all t = List.init (cardinal t) Fun.id
let of_name t s = Hashtbl.find_opt t.index s

let of_name_exn t s =
  match of_name t s with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Explicit.of_name_exn: unknown level %S" s)

let name t l = t.names.(l)

let cover_pairs t =
  let acc = ref [] in
  for hi = cardinal t - 1 downto 0 do
    List.iter (fun lo -> acc := (lo, hi) :: !acc) (List.rev t.covers_lo.(hi))
  done;
  List.sort compare !acc

let equal _ (a : level) b = a = b
let compare_level _ = Int.compare
let leq t a b = Bitset.mem t.up.(a) b

let lub t a b =
  match t.lub_table with
  | Some tab -> tab.((a * cardinal t) + b)
  | None ->
      let n = cardinal t in
      let key = if a <= b then (a * n) + b else (b * n) + a in
      let slot = t.lub_memo.(key land memo_mask) in
      if slot <> 0 && (slot - 1) / n = key then (slot - 1) mod n
      else begin
        let v = lub_of_upsets ~names:t.names t.up a b in
        t.lub_memo.(key land memo_mask) <- (key * n) + v + 1;
        v
      end

let glb t a b =
  match t.glb_table with
  | Some tab -> tab.((a * cardinal t) + b)
  | None ->
      let n = cardinal t in
      let key = if a <= b then (a * n) + b else (b * n) + a in
      let slot = t.glb_memo.(key land memo_mask) in
      if slot <> 0 && (slot - 1) / n = key then (slot - 1) mod n
      else begin
        let v = glb_of_downsets ~names:t.names t.down a b in
        t.glb_memo.(key land memo_mask) <- (key * n) + v + 1;
        v
      end

let top t = t.top
let bottom t = t.bottom

(* Already O(1): immediate predecessors are precomputed at [create] time
   (the [covers_lo] array), so the solver's cover-descent loop never
   recomputes the Hasse diagram. *)
let covers_below t l = t.covers_lo.(l)
let height t = t.height
let levels t = Seq.init (cardinal t) Fun.id
let size t = Some (cardinal t)
let pp_level t ppf l = Format.pp_print_string ppf t.names.(l)
let level_to_string t l = t.names.(l)
let level_of_string = of_name
