type t = { n : int; w : int array }

let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; w = Array.make (max 1 (words_for n)) 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let q = i / bits_per_word and r = i mod bits_per_word in
  t.w.(q) <- t.w.(q) lor (1 lsl r)

let clear t i =
  check t i;
  let q = i / bits_per_word and r = i mod bits_per_word in
  t.w.(q) <- t.w.(q) land lnot (1 lsl r)

let mem t i =
  check t i;
  let q = i / bits_per_word and r = i mod bits_per_word in
  t.w.(q) land (1 lsl r) <> 0

(* SWAR (SIMD-within-a-register) population count.  The classic 64-bit
   constants, truncated to OCaml's 63-bit native int: lanes are summed in
   parallel (2-bit, then 4-bit, then 8-bit groups) and the per-byte counts
   are accumulated into the top byte by one multiply.  The top "lane" of a
   63-bit word is 7 bits wide, which is enough: the total count is ≤ 63.
   0x5555555555555555 does not fit a 63-bit literal, but only its even bits
   below the sign position matter (bit 62 of [x lsr 1] is always 0). *)
let m1 = 0x1555555555555555 (* even bits 0, 2, …, 60 *)
let m2 = 0x3333333333333333
let m4 = 0x0F0F0F0F0F0F0F0F
let h01 = 0x0101010101010101

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

(* Index of the lowest set bit of a nonzero word: isolate it with
   [w land (-w)], then count the ones below it. *)
let lowest_bit_index w = popcount ((w land (-w)) - 1)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.w

let is_empty t = Array.for_all (fun w -> w = 0) t.w

let copy t = { n = t.n; w = Array.copy t.w }

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  Array.for_all2 ( = ) a.w b.w

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.w - 1 do
    if a.w.(i) land lnot b.w.(i) <> 0 then ok := false
  done;
  !ok

let map2 f a b =
  same_capacity a b;
  { n = a.n; w = Array.init (Array.length a.w) (fun i -> f a.w.(i) b.w.(i)) }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let inter_into a b =
  same_capacity a b;
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) land b.w.(i)
  done

let union_into a b =
  same_capacity a b;
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) lor b.w.(i)
  done

(* Iteration visits only the set bits: zero words are skipped outright and
   nonzero words are consumed one lowest bit at a time ([w land (w - 1)]
   clears it), so the cost is proportional to the cardinality, not the
   capacity. *)
let iter f t =
  for q = 0 to Array.length t.w - 1 do
    let w = ref t.w.(q) in
    if !w <> 0 then begin
      let base = q * bits_per_word in
      while !w <> 0 do
        f (base + lowest_bit_index !w);
        w := !w land (!w - 1)
      done
    end
  done

let fold f t init =
  let acc = ref init in
  for q = 0 to Array.length t.w - 1 do
    let w = ref t.w.(q) in
    if !w <> 0 then begin
      let base = q * bits_per_word in
      while !w <> 0 do
        acc := f (base + lowest_bit_index !w) !acc;
        w := !w land (!w - 1)
      done
    end
  done;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let min_elt t =
  let nwords = Array.length t.w in
  let rec go q =
    if q >= nwords then None
    else
      let w = t.w.(q) in
      if w = 0 then go (q + 1)
      else Some ((q * bits_per_word) + lowest_bit_index w)
  in
  go 0

(* Index of the highest set bit of a nonzero word: smear it rightward, then
   the count of ones is one more than the index. *)
let highest_bit_index w =
  let w = w lor (w lsr 1) in
  let w = w lor (w lsr 2) in
  let w = w lor (w lsr 4) in
  let w = w lor (w lsr 8) in
  let w = w lor (w lsr 16) in
  let w = w lor (w lsr 32) in
  popcount w - 1

let max_elt t =
  let rec go q =
    if q < 0 then None
    else
      let w = t.w.(q) in
      if w = 0 then go (q - 1)
      else Some ((q * bits_per_word) + highest_bit_index w)
  in
  go (Array.length t.w - 1)

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.w - 1 do
    if a.w.(i) land b.w.(i) <> 0 then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)

let compare a b =
  same_capacity a b;
  let rec go i =
    if i < 0 then 0
    else
      match Int.compare a.w.(i) b.w.(i) with 0 -> go (i - 1) | c -> c
  in
  go (Array.length a.w - 1)
