module Json = Minup_obs.Json
module Trace = Minup_obs.Trace
module Metrics = Minup_obs.Metrics
module Wire = Minup_core.Wire
module Fault = Minup_core.Fault
module Explicit = Minup_lattice.Explicit
module Lattice_file = Minup_lattice.Lattice_file
module Parse = Minup_constraints.Parse
module S = Session.Make (Explicit)
module Solver = S.Solver

type conn = {
  max_sessions : int;
  deadline_ms : int option;
  max_steps : int option;
  mutable sessions : (string * S.t) list;  (** most recently used first *)
}

let create ?(max_sessions = 8) ?deadline_ms ?max_steps () =
  if max_sessions < 1 then invalid_arg "Serve.create: max_sessions < 1";
  { max_sessions; deadline_ms; max_steps; sessions = [] }

let session_names conn = List.map fst conn.sessions

let err ?problem detail = Wire.v1 ?problem (Wire.Error { detail })
let errf ?problem fmt = Format.kasprintf (err ?problem) fmt

let str_field name doc =
  match Json.member name doc with Some (Json.Str s) -> Some s | _ -> None

let int_field name doc =
  match Json.member name doc with
  | Some (Json.Num f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

(* Find a session and mark it most recently used. *)
let find conn name =
  match List.assoc_opt name conn.sessions with
  | None -> None
  | Some s ->
      conn.sessions <- (name, s) :: List.remove_assoc name conn.sessions;
      Some s

let evictions = lazy (Metrics.counter "serve/evicted")

let insert conn name session =
  conn.sessions <- (name, session) :: List.remove_assoc name conn.sessions;
  let rec take k = function
    | [] -> ([], 0)
    | _ :: rest when k = 0 -> ([], 1 + List.length rest)
    | x :: rest ->
        let kept, dropped = take (k - 1) rest in
        (x :: kept, dropped)
  in
  let kept, dropped = take conn.max_sessions conn.sessions in
  conn.sessions <- kept;
  if dropped > 0 && Metrics.enabled () then
    Metrics.add (Lazy.force evictions) dropped

(* One policy-format line, resolved against the session's lattice. *)
let parse_constraint session text =
  let lat = S.lattice session in
  match Parse.parse_resolve ~level_of_string:(Explicit.level_of_string lat) text with
  | Error e -> Error (Format.asprintf "%a" Parse.pp_error e)
  | Ok { Parse.upper_bounds = _ :: _; _ } ->
      Error "upper-bound (<=) lines are not constraints; pass \"bounds\" to resolve"
  | Ok { Parse.csts = [ c ]; _ } -> Ok c
  | Ok { Parse.csts; _ } ->
      Error
        (Printf.sprintf "expected exactly one constraint, got %d"
           (List.length csts))

let open_session conn problem doc =
  match str_field "lattice" doc with
  | None -> err ~problem "open: missing \"lattice\""
  | Some lattice_text -> (
      match Lattice_file.parse lattice_text with
      | Error e -> errf ~problem "open: lattice: %a" Lattice_file.pp_error e
      | Ok lat -> (
          let constraints = Option.value ~default:"" (str_field "constraints" doc) in
          match
            Parse.parse_resolve
              ~level_of_string:(Explicit.level_of_string lat)
              constraints
          with
          | Error e -> errf ~problem "open: constraints: %a" Parse.pp_error e
          | Ok { Parse.upper_bounds = _ :: _; _ } ->
              err ~problem
                "open: policy has upper-bound (<=) lines; pass \"bounds\" to \
                 resolve instead"
          | Ok { Parse.attrs; csts; _ } ->
              insert conn problem (S.create ~lattice:lat ~attrs csts);
              Wire.v1 ~problem (Wire.Ack { id = None })))

let render_assignment lat assignment =
  List.map (fun (a, l) -> (a, Explicit.level_to_string lat l)) assignment

let resolve_op conn problem session doc =
  let lat = S.lattice session in
  let deadline_ms =
    match int_field "deadline_ms" doc with Some _ as d -> d | None -> conn.deadline_ms
  in
  let max_steps =
    match int_field "max_steps" doc with Some _ as s -> s | None -> conn.max_steps
  in
  let budget =
    if deadline_ms <> None || max_steps <> None then
      Some (Minup_core.Solver.budget ?deadline_ms ?max_steps ())
    else None
  in
  let config = Solver.Config.make ?budget () in
  let want_stats =
    match Json.member "stats" doc with Some (Json.Bool true) -> true | _ -> false
  in
  let bounds =
    match Json.member "bounds" doc with
    | Some (Json.Obj fields) ->
        Some
          (List.fold_left
             (fun acc (a, j) ->
               match acc with
               | Error _ -> acc
               | Ok bl -> (
                   match j with
                   | Json.Str s -> (
                       match Explicit.level_of_string lat s with
                       | Some l -> Ok ((a, l) :: bl)
                       | None -> Error (Printf.sprintf "unknown level %S" s))
                   | _ -> Error (Printf.sprintf "bound of %S is not a string" a)))
             (Ok []) fields
          |> Result.map List.rev)
    | Some _ -> Some (Error "\"bounds\" is not an object")
    | None -> None
  in
  let solution_env (sol : Solver.solution) =
    Wire.v1 ~problem
      (Wire.Solution
         {
           assignment = render_assignment lat sol.Solver.assignment;
           stats = (if want_stats then Some sol.Solver.stats else None);
         })
  in
  match bounds with
  | Some (Error detail) -> err ~problem ("resolve: " ^ detail)
  | None -> (
      match S.resolve ~config session with
      | sol -> solution_env sol
      | exception Solver.Cancelled { reason; progress } ->
          let fault =
            match reason with
            | Solver.Deadline { deadline_ms; elapsed_ms } ->
                Fault.Deadline_exceeded { deadline_ms; elapsed_ms }
            | Solver.Steps { max_steps } ->
                Fault.Budget_exhausted
                  { max_steps; steps = progress.Solver.steps }
          in
          Wire.v1 ~problem (Wire.Fault { fault; attempts = 1; task = None }))
  | Some (Ok bl) -> (
      match S.resolve_with_bounds ~config session bl with
      | Ok sol -> solution_env sol
      | Error (Solver.Unknown_attr a) ->
          errf ~problem "resolve: bound on unknown attribute %S" a
      | Error inc ->
          Wire.v1 ~problem
            (Wire.Infeasible
               { detail = Format.asprintf "%a" (Solver.pp_inconsistency lat) inc })
      | exception Solver.Cancelled { reason; progress } ->
          let fault =
            match reason with
            | Solver.Deadline { deadline_ms; elapsed_ms } ->
                Fault.Deadline_exceeded { deadline_ms; elapsed_ms }
            | Solver.Steps { max_steps } ->
                Fault.Budget_exhausted
                  { max_steps; steps = progress.Solver.steps }
          in
          Wire.v1 ~problem (Wire.Fault { fault; attempts = 1; task = None }))

let dispatch conn op problem session doc =
  match op with
  | "add_constraint" -> (
      match str_field "constraint" doc with
      | None -> err ~problem "add_constraint: missing \"constraint\""
      | Some text -> (
          match parse_constraint session text with
          | Error detail -> err ~problem ("add_constraint: " ^ detail)
          | Ok c ->
              let id = S.add_constraint session c in
              Wire.v1 ~problem (Wire.Ack { id = Some id })))
  | "remove_constraint" -> (
      match int_field "id" doc with
      | None -> err ~problem "remove_constraint: missing \"id\""
      | Some id ->
          if S.remove_constraint session id then
            Wire.v1 ~problem (Wire.Ack { id = Some id })
          else errf ~problem "remove_constraint: unknown constraint id %d" id)
  | "set_lower_bound" -> (
      match str_field "attr" doc with
      | None -> err ~problem "set_lower_bound: missing \"attr\""
      | Some attr -> (
          match Json.member "level" doc with
          | None | Some Json.Null ->
              S.set_lower_bound session attr None;
              Wire.v1 ~problem (Wire.Ack { id = None })
          | Some (Json.Str s) -> (
              match Explicit.level_of_string (S.lattice session) s with
              | None -> errf ~problem "set_lower_bound: unknown level %S" s
              | Some l ->
                  S.set_lower_bound session attr (Some l);
                  Wire.v1 ~problem (Wire.Ack { id = None }))
          | Some _ -> err ~problem "set_lower_bound: \"level\" is not a string"))
  | "add_attribute" -> (
      match str_field "attr" doc with
      | None -> err ~problem "add_attribute: missing \"attr\""
      | Some attr ->
          S.add_attribute session attr;
          Wire.v1 ~problem (Wire.Ack { id = None }))
  | "resolve" -> resolve_op conn problem session doc
  | "close" ->
      conn.sessions <- List.remove_assoc problem conn.sessions;
      Wire.v1 ~problem (Wire.Ack { id = None })
  | op -> errf ~problem "unknown op %S" op

let requests = lazy (Metrics.counter "serve/requests")
let errors = lazy (Metrics.counter "serve/errors")

let handle_line conn line =
  let metering = Metrics.enabled () in
  if metering then Metrics.incr (Lazy.force requests);
  let resp =
    match Json.parse line with
    | Error msg -> err ("request is not JSON: " ^ msg)
    | Ok doc -> (
        match (str_field "op" doc, str_field "problem" doc) with
        | None, problem -> err ?problem "missing \"op\""
        | Some _, None -> err "missing \"problem\""
        | Some op, Some problem -> (
            Trace.with_span ~cat:"serve" ("serve." ^ op) @@ fun () ->
            try
              if op = "open" then open_session conn problem doc
              else
                match find conn problem with
                | None -> errf ~problem "unknown session %S" problem
                | Some session -> dispatch conn op problem session doc
            with
            | (Sys.Break | Out_of_memory) as e -> raise e
            | e -> err ~problem (Printexc.to_string e)))
  in
  if metering && Wire.status resp = "error" then
    Metrics.incr (Lazy.force errors);
  resp

let run conn ic oc =
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    | line ->
        if String.trim line <> "" then begin
          let resp = handle_line conn line in
          output_string oc (Json.to_string (Wire.to_json resp));
          output_char oc '\n';
          flush oc
        end
  done
