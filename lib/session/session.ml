module Cst = Minup_constraints.Cst
module Problem = Minup_constraints.Problem
module Priorities = Minup_constraints.Priorities
module Trace = Minup_obs.Trace

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module Solver = Minup_core.Solver.Make (L)

  type stats = {
    resolves : int;
    cached : int;
    patched : int;
    incremental : int;
    full : int;
    frozen : int;
  }

  (* Which session-level object a kept (compiled) constraint came from:
     the key survives recompilation, which is what lets the session match
     constraints across compiles (bound patching, absorber comparison). *)
  type key = K_user of int | K_bound of string

  type compiled = {
    problem : Solver.problem;
    keys : key array;  (** per compiled constraint index *)
    solution : Solver.solution;
  }

  type delta =
    | D_add of L.level Cst.t
    | D_remove of L.level Cst.t
    | D_bound of { attr : string; patched : bool }
        (** [patched] — the attribute already had a bound when this delta
            was queued, so the compiled constraint can be re-leveled in
            place *)
    | D_attr of string

  type t = {
    lattice : L.t;
    mutable attrs : string list;  (** interning order, append-only *)
    attr_set : (string, unit) Hashtbl.t;
    mutable entries : (int * L.level Cst.t) list;  (** id order *)
    mutable next_id : int;
    bounds : (string, L.level) Hashtbl.t;
    mutable bound_order : string list;  (** first-set order *)
    mutable pending : delta list;  (** reversed *)
    mutable compiled : compiled option;
    mutable n_resolves : int;
    mutable n_cached : int;
    mutable n_patched : int;
    mutable n_incremental : int;
    mutable n_full : int;
    mutable n_frozen : int;
  }

  let lattice t = t.lattice

  let register t a =
    if not (Hashtbl.mem t.attr_set a) then begin
      Hashtbl.add t.attr_set a ();
      t.attrs <- t.attrs @ [ a ]
    end

  let add_constraint t c =
    List.iter (register t) (Cst.attrs c);
    let id = t.next_id in
    t.next_id <- id + 1;
    t.entries <- t.entries @ [ (id, c) ];
    t.pending <- D_add c :: t.pending;
    id

  let create ~lattice ?(attrs = []) csts =
    let t =
      {
        lattice;
        attrs = [];
        attr_set = Hashtbl.create 64;
        entries = [];
        next_id = 0;
        bounds = Hashtbl.create 16;
        bound_order = [];
        pending = [];
        compiled = None;
        n_resolves = 0;
        n_cached = 0;
        n_patched = 0;
        n_incremental = 0;
        n_full = 0;
        n_frozen = 0;
      }
    in
    List.iter (register t) attrs;
    List.iter (fun c -> ignore (add_constraint t c)) csts;
    t

  let remove_constraint t id =
    match List.assoc_opt id t.entries with
    | None -> false
    | Some c ->
        t.entries <- List.filter (fun (i, _) -> i <> id) t.entries;
        t.pending <- D_remove c :: t.pending;
        true

  let set_lower_bound t attr lvl =
    register t attr;
    match lvl with
    | None ->
        if Hashtbl.mem t.bounds attr then begin
          Hashtbl.remove t.bounds attr;
          t.bound_order <- List.filter (fun a -> a <> attr) t.bound_order;
          t.pending <- D_bound { attr; patched = false } :: t.pending
        end
    | Some l ->
        let existing = Hashtbl.mem t.bounds attr in
        Hashtbl.replace t.bounds attr l;
        if not existing then t.bound_order <- t.bound_order @ [ attr ];
        t.pending <- D_bound { attr; patched = existing } :: t.pending

  let add_attribute t a =
    if not (Hashtbl.mem t.attr_set a) then begin
      register t a;
      t.pending <- D_attr a :: t.pending
    end

  (* The compile input, with the session key of every constraint.  Bound
     constraints come after user constraints so user constraint indices
     are as stable as possible; within each group the order is the
     session's insertion order, so recompiles of an unchanged session are
     literally identical. *)
  let keyed_csts t =
    List.map (fun (id, c) -> (K_user id, c)) t.entries
    @ List.map
        (fun a ->
          (K_bound a, Cst.make_exn ~lhs:[ a ] ~rhs:(Cst.Level (Hashtbl.find t.bounds a))))
        t.bound_order

  let snapshot t = (t.attrs, List.map snd (keyed_csts t))

  let compile_now t =
    let keyed = keyed_csts t in
    (* Mirror of {!Problem.compile}'s kept/dropped partition: compiled
       constraint index [ci] is the position among the non-trivial
       constraints, so the keys of the kept ones, in order, address the
       compiled array. *)
    let kept = List.filter (fun (_, c) -> not (Cst.is_trivial c)) keyed in
    let keys = Array.of_list (List.map fst kept) in
    let problem =
      Solver.compile_exn ~lattice:t.lattice ~attrs:t.attrs (List.map snd keyed)
    in
    (problem, keys)

  (* The member of a complex constraint's lhs the Bigloop considers last —
     minimal priority, ties broken towards the larger id (sets run in
     decreasing priority, members in ascending id).  Only that member runs
     [Minlevel] and thereby reads its peers, so it is the one whose value
     an absorber change invalidates. *)
  let absorber (prio : Priorities.t) (c : _ Problem.cst) =
    Array.fold_left
      (fun best a ->
        let pa = prio.Priorities.priority.(a)
        and pb = prio.Priorities.priority.(best) in
        if pa < pb || (pa = pb && a > best) then a else best)
      c.Problem.lhs.(0) c.Problem.lhs

  (* Transitive closure of "whose level may differ from the previous
     solve": seeds are the attributes the deltas touch directly.  A dirty
     attribute [x] taints

     - the whole lhs of every constraint whose rhs is [x] (its members'
       levels are computed from [x]'s), and
     - the whole lhs of every complex constraint containing [x] (the
       absorbing member reads its peers; in a cycle every member does).

     Taken per-constraint this is deliberately all-or-nothing across a
     complex lhs: it guarantees the solver's aggregate bookkeeping sees
     either a fully frozen lhs (no Minlevel runs) or a fully re-solved one
     (the same member absorbs as in a scratch solve).  Any superset of the
     truly-affected attributes is sound — clean attributes keep their
     levels by induction over the dependency order. *)
  let close_dirty (prob : _ Problem.t) seeds =
    let n = Problem.n_attrs prob in
    let dirty = Array.make n false in
    let stack = ref [] in
    let mark a =
      if not dirty.(a) then begin
        dirty.(a) <- true;
        stack := a :: !stack
      end
    in
    List.iter mark seeds;
    let mark_lhs ci = Array.iter mark prob.Problem.csts.(ci).Problem.lhs in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | x :: rest ->
          stack := rest;
          List.iter mark_lhs prob.Problem.incoming.(x);
          List.iter
            (fun ci -> if prob.Problem.complex.(ci) then mark_lhs ci)
            prob.Problem.constr_of.(x)
    done;
    dirty

  let any_dirty_cycle (problem : Solver.problem) dirty =
    let n = Array.length dirty in
    let rec go a =
      a < n
      && ((dirty.(a) && Priorities.in_cycle problem.Solver.prio problem.Solver.prob a)
         || go (a + 1))
    in
    go 0

  let count_frozen dirty =
    Array.fold_left (fun acc d -> if d then acc else acc + 1) 0 dirty

  let attr_ids_of_delta (prob : _ Problem.t) = function
    | D_add c | D_remove c ->
        List.filter_map (Problem.attr_id prob) (Cst.attrs c)
    | D_bound { attr; _ } -> Option.to_list (Problem.attr_id prob attr)
    | D_attr a -> Option.to_list (Problem.attr_id prob a)

  let finish t problem keys solution =
    (* Deltas are consumed only here, on success: a cancelled solve leaves
       them queued, so the next resolve retries instead of serving the
       stale cached solution. *)
    t.pending <- [];
    t.compiled <- Some { problem; keys; solution };
    solution

  let full_resolve ~config t =
    let problem, keys = compile_now t in
    t.n_full <- t.n_full + 1;
    finish t problem keys (Solver.solve ~config problem)

  (* Every pending delta re-tightens a bound that already existed at the
     last compile: patch the Rlevel right-hand sides in place and keep the
     compiled arrays and the priority assignment.  The constraint graph is
     untouched (level right-hand sides contribute no edge). *)
  let patch_resolve ~config t (old : compiled) pending =
    let ci_of_bound = Hashtbl.create 16 in
    Array.iteri
      (fun ci -> function
        | K_bound a -> Hashtbl.replace ci_of_bound a ci
        | K_user _ -> ())
      old.keys;
    let prob0 = old.problem.Solver.prob in
    let prob', seeds =
      List.fold_left
        (fun (prob, seeds) d ->
          match d with
          | D_bound { attr; _ } ->
              let ci = Hashtbl.find ci_of_bound attr in
              let l = Hashtbl.find t.bounds attr in
              (Problem.set_rlevel prob ci l, Problem.attr_id_exn prob attr :: seeds)
          | _ -> assert false)
        (prob0, []) pending
    in
    let problem = Solver.reuse_priorities old.problem prob' in
    t.n_patched <- t.n_patched + 1;
    let dirty = close_dirty prob' seeds in
    let solution =
      if any_dirty_cycle problem dirty then begin
        t.n_full <- t.n_full + 1;
        Solver.solve ~config problem
      end
      else begin
        t.n_incremental <- t.n_incremental + 1;
        t.n_frozen <- t.n_frozen + count_frozen dirty;
        Solver.solve_incremental ~config
          ~frozen:(fun a ->
            if dirty.(a) then None else Some old.solution.Solver.levels.(a))
          problem
      end
    in
    finish t problem old.keys solution

  let general_resolve ~config t (old : compiled) pending =
    let problem, keys = compile_now t in
    let prob' = problem.Solver.prob in
    let n_old = Array.length old.solution.Solver.levels in
    let n_new = Problem.n_attrs prob' in
    let seeds = ref [] in
    List.iter
      (fun d -> seeds := attr_ids_of_delta prob' d @ !seeds)
      pending;
    for a = n_old to n_new - 1 do
      seeds := a :: !seeds
    done;
    (* Attribute ids are stable (the attrs list is append-only and always
       passed to compile), so constraints present in both compiles can be
       compared directly.  If a complex constraint's absorbing member
       changed — remote edits can renumber priorities of untouched
       attributes — the member that runs Minlevel differs from last time,
       so the whole lhs must be re-solved even though no value it reads
       changed. *)
    let old_ci = Hashtbl.create 64 in
    Array.iteri (fun ci k -> Hashtbl.replace old_ci k ci) old.keys;
    let old_prob = old.problem.Solver.prob in
    Array.iteri
      (fun ci k ->
        if prob'.Problem.complex.(ci) then
          match Hashtbl.find_opt old_ci k with
          | None -> ()
          | Some oci ->
              if
                absorber old.problem.Solver.prio old_prob.Problem.csts.(oci)
                <> absorber problem.Solver.prio prob'.Problem.csts.(ci)
              then
                Array.iter
                  (fun a -> seeds := a :: !seeds)
                  prob'.Problem.csts.(ci).Problem.lhs)
      keys;
    let dirty = close_dirty prob' !seeds in
    let solution =
      if any_dirty_cycle problem dirty then begin
        t.n_full <- t.n_full + 1;
        Solver.solve ~config problem
      end
      else begin
        t.n_incremental <- t.n_incremental + 1;
        t.n_frozen <- t.n_frozen + count_frozen dirty;
        Solver.solve_incremental ~config
          ~frozen:(fun a ->
            if a < n_old && not dirty.(a) then
              Some old.solution.Solver.levels.(a)
            else None)
          problem
      end
    in
    finish t problem keys solution

  let resolve ?(config = Solver.Config.default) t =
    Trace.with_span ~cat:"session" "session.resolve" @@ fun () ->
    t.n_resolves <- t.n_resolves + 1;
    match (t.pending, t.compiled) with
    | [], Some c ->
        t.n_cached <- t.n_cached + 1;
        c.solution
    | pending_rev, old -> (
        let pending = List.rev pending_rev in
        match old with
        | None -> full_resolve ~config t
        | Some old ->
            let all_patched =
              List.for_all
                (function D_bound { patched = true; _ } -> true | _ -> false)
                pending
            in
            if all_patched then patch_resolve ~config t old pending
            else general_resolve ~config t old pending)

  let resolve_with_bounds ?(config = Solver.Config.default) t ubounds =
    if t.pending <> [] || t.compiled = None then ignore (resolve t);
    let problem = (Option.get t.compiled).problem in
    Solver.solve_with_bounds ~config problem ubounds

  let solution t = if t.pending = [] then Option.map (fun c -> c.solution) t.compiled else None

  let stats t =
    {
      resolves = t.n_resolves;
      cached = t.n_cached;
      patched = t.n_patched;
      incremental = t.n_incremental;
      full = t.n_full;
      frozen = t.n_frozen;
    }
end
