(** [mlsclassify serve] — an NDJSON request/response loop over sessions.

    One request per line, one {!Minup_core.Wire} response envelope per
    line, in order.  Requests are JSON objects with an ["op"] field and,
    for every op but [open] on a fresh name, the ["problem"] field naming
    the session:

    - [{"op": "open", "problem": p, "lattice": text, "constraints": text}]
      — create (or replace) session [p] from a lattice file and an
      optional policy file, both passed inline as text.  Policies with
      [<=] lines are rejected: upper bounds are per-resolve inputs.
    - [{"op": "add_constraint", "problem": p, "constraint": line}] — parse
      one policy line and add it; the response [Ack] carries the fresh
      constraint id.
    - [{"op": "remove_constraint", "problem": p, "id": n}]
    - [{"op": "set_lower_bound", "problem": p, "attr": a, "level": l}] —
      omit ["level"] (or pass [null]) to clear the bound.
    - [{"op": "add_attribute", "problem": p, "attr": a}]
    - [{"op": "resolve", "problem": p, ...}] — re-solve incrementally (see
      {!Session}).  Optional fields: ["deadline_ms"] and ["max_steps"]
      build a {!Minup_core.Solver.budget} (falling back to the
      connection-wide defaults); a cancelled solve answers with a
      [status: "fault"] envelope carrying the {!Minup_core.Fault.t}.
      ["bounds"] (object of attr -> level) runs the §6 upper-bounded
      solve instead, answering [status: "infeasible"] when the bounds
      conflict.  ["stats": true] includes the operation counters.
    - [{"op": "close", "problem": p}]

    Anything else — unparseable line, unknown op, unknown session, bad
    field — answers a [status: "error"] envelope; the loop never dies on
    a bad request.  Sessions are kept in an LRU list capped at
    [max_sessions]; opening one beyond the cap silently evicts the least
    recently used (counted in the [serve/evicted] metric). *)

type conn

val create :
  ?max_sessions:int -> ?deadline_ms:int -> ?max_steps:int -> unit -> conn

(** Sessions currently held, most recently used first. *)
val session_names : conn -> string list

(** Handle one request line (without trailing newline).  Total: every
    exception but [Sys.Break] and [Out_of_memory] becomes an error
    envelope. *)
val handle_line : conn -> string -> Minup_core.Wire.t

(** Read lines until EOF, writing one compact-JSON envelope line per
    request and flushing after each — the loop is usable as a pipe peer. *)
val run : conn -> in_channel -> out_channel -> unit
