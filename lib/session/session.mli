(** Long-lived solving sessions with incremental re-solving.

    A session owns a constraint problem as {e mutable editor state} — an
    append-only attribute universe, user constraints addressed by dense
    integer ids, and per-attribute lower bounds — plus the last compiled
    {!Minup_core.Solver.Make.problem} and its solution.  Edits
    ({!Make.add_constraint}, {!Make.remove_constraint},
    {!Make.set_lower_bound}, {!Make.add_attribute}) are cheap: they queue
    deltas.  {!Make.resolve} applies the queued deltas and re-solves,
    reusing as much of the previous resolve as the deltas allow:

    - no deltas: the cached solution is returned as-is;
    - only re-tightened lower bounds on attributes that were already
      bounded: the compiled problem is patched in place
      ({!Minup_constraints.Problem.set_rlevel}) and the priority
      assignment is reused — no re-interning, no DFS;
    - otherwise the problem is recompiled, but attributes whose constraint
      neighbourhood is untouched keep their previous levels: the session
      computes the {e dirty closure} of the deltas and re-runs the solver
      only over it ({!Minup_core.Solver.Make.solve_incremental});
    - if the dirty closure reaches a constraint cycle, the session falls
      back to a full solve — forward lowering through a cycle depends on
      global state that per-attribute freezing cannot reproduce.

    Incrementality is {e never} visible in results: every resolve returns
    exactly (bit-identical levels) what a from-scratch
    {!Minup_core.Solver.Make.solve} of the current problem
    ({!Make.snapshot}) would return.  Which path was taken shows up only
    in {!Make.stats} and in the solve's operation counters.

    Sessions are single-domain values: no internal locking. *)

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  (** The session's own solver instance.  Exposed so callers can name the
      types of {!resolve}'s inputs and outputs — and, critically, match
      the {e runtime identity} of its [Cancelled] exception: functor
      applications are generative, so a [Cancelled] raised from inside
      {!resolve} is catchable only as [Make(L).Solver.Cancelled]. *)
  module Solver : module type of Minup_core.Solver.Make (L)

  type t

  (** How past resolves were served; [frozen] totals the attributes whose
      levels were reused (not re-solved) across incremental resolves. *)
  type stats = {
    resolves : int;
    cached : int;  (** no pending deltas: cached solution returned *)
    patched : int;  (** bound-patch path: compile and priorities reused *)
    incremental : int;  (** re-solved with frozen clean attributes *)
    full : int;  (** full solves (first resolve, or cycle fallback) *)
    frozen : int;
  }

  (** [create ~lattice ?attrs csts] — a fresh session over the given
      constraints.  Nothing is compiled or solved until the first
      {!resolve}.  Attributes are interned in [attrs]-then-first-mention
      order and constraint ids are assigned in list order, [0..]. *)
  val create :
    lattice:L.t -> ?attrs:string list -> L.level Minup_constraints.Cst.t list -> t

  val lattice : t -> L.t

  (** [add_constraint t c] queues [c] and returns its fresh id. *)
  val add_constraint : t -> L.level Minup_constraints.Cst.t -> int

  (** [remove_constraint t id] — [false] if no live constraint has [id].
      Attributes mentioned only by the removed constraint stay in the
      universe (ids are append-only, so solutions keep their shape). *)
  val remove_constraint : t -> int -> bool

  (** [set_lower_bound t attr (Some l)] requires [λ(attr) ⊒ l] — the basic
      constraint [attr >= l], replaced in place if [attr] already has a
      bound (that replacement is the patch fast path).  [None] clears the
      bound.  Unknown attributes are registered first. *)
  val set_lower_bound : t -> string -> L.level option -> unit

  (** Register an attribute (a no-op if already present).  Unconstrained
      attributes classify at ⊥. *)
  val add_attribute : t -> string -> unit

  (** Apply queued deltas and (re-)solve.  [config] defaults to
      {!Solver.Config.default}; the fields that select {e which} minimal
      solution is returned ([residual], [upgrade_preference]) must be the
      same at every resolve of one session, or reuse of previous levels is
      unsound.  A [budget] applies to whatever solving actually happens on
      this call.  Raises [Solver.Cancelled] like the underlying solve. *)
  val resolve : ?config:Solver.Config.t -> t -> Solver.solution

  (** Apply queued deltas (with a default-config resolve if any are
      pending), then run the §6 upper-bounded solve on the compiled
      problem.  [config] applies to the bounded solve only.  The bounded
      solution is not cached — it is not the session's minimal solution. *)
  val resolve_with_bounds :
    ?config:Solver.Config.t ->
    t ->
    (string * L.level) list ->
    (Solver.solution, Solver.inconsistency) result

  (** The exact compile input the session's state denotes:
      [(attrs, csts)] such that a from-scratch
      [Solver.compile ~attrs csts] + [solve] reproduces {!resolve}'s
      answer.  User constraints in id order, then bound constraints in
      first-set order. *)
  val snapshot : t -> string list * L.level Minup_constraints.Cst.t list

  (** The last resolve's solution, if any resolve has happened and no
      deltas are pending. *)
  val solution : t -> Solver.solution option

  val stats : t -> stats
end
