type ast = {
  decls : string list;
  lowers : (int * string list * string) list;
  uppers : (int * string * string) list;
}

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Err of string

let fail fmt = Format.kasprintf (fun s -> raise (Err s)) fmt

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
  | _ -> false

let check_ident s =
  if s = "" then fail "empty identifier";
  String.iter
    (fun c -> if not (is_ident_char c) then fail "invalid identifier %S" s)
    s;
  s

let split_commas s =
  s |> String.split_on_char ',' |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* Split a line at the first top-level occurrence of [op] (">=" or "<=").
   Occurrences inside braces belong to level syntax and are skipped. *)
let split_on_op line =
  let n = String.length line in
  let rec go i depth =
    if i >= n - 1 then None
    else
      match line.[i] with
      | '{' -> go (i + 1) (depth + 1)
      | '}' -> go (i + 1) (depth - 1)
      | ('>' | '<') when depth = 0 && line.[i + 1] = '=' ->
          Some (line.[i], String.sub line 0 i, String.sub line (i + 2) (n - i - 2))
      | _ -> go (i + 1) depth
  in
  go 0 0

let parse_lhs s =
  let s = String.trim s in
  let strip_prefix p s =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let body =
    match strip_prefix "lub{" s with
    | Some rest -> Some rest
    | None -> strip_prefix "{" s
  in
  match body with
  | Some rest ->
      let rest = String.trim rest in
      let n = String.length rest in
      if n = 0 || rest.[n - 1] <> '}' then fail "unterminated '{' in left-hand side";
      let inner = String.sub rest 0 (n - 1) in
      let attrs = List.map check_ident (split_commas inner) in
      if attrs = [] then fail "empty left-hand side set";
      attrs
  | None -> [ check_ident s ]

(* The [attrs] keyword only introduces a declaration list when it stands
   alone (an empty declaration) or is followed by whitespace; identifiers
   that merely start with "attrs" ([attrset >= x]) are ordinary constraint
   lines. *)
let attrs_rest line =
  if line = "attrs" then Some ""
  else if
    String.length line > 5
    && String.sub line 0 5 = "attrs"
    && (line.[5] = ' ' || line.[5] = '\t')
  then Some (String.sub line 5 (String.length line - 5))
  else None

let parse text =
  let decls = ref [] and lowers = ref [] and uppers = ref [] in
  let do_line lineno raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = String.trim line in
    if line <> "" then
      match attrs_rest line with
      | Some rest -> decls := !decls @ List.map check_ident (split_commas rest)
      | None -> (
          match split_on_op line with
          | None -> fail "expected 'attrs', '... >= ...' or '... <= ...'"
          | Some ('>', lhs, rhs) ->
              let rhs = String.trim rhs in
              if rhs = "" then fail "empty right-hand side";
              lowers := (lineno, parse_lhs lhs, rhs) :: !lowers
          | Some ('<', lhs, rhs) -> (
              let rhs = String.trim rhs in
              if rhs = "" then fail "empty right-hand side";
              match parse_lhs lhs with
              | [ a ] -> uppers := (lineno, a, rhs) :: !uppers
              | _ -> fail "upper-bound constraints take a single attribute")
          | Some _ -> assert false)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok { decls = !decls; lowers = List.rev !lowers; uppers = List.rev !uppers }
    | l :: rest -> (
        match do_line lineno l with
        | () -> go (lineno + 1) rest
        | exception Err message -> Error { line = lineno; message })
  in
  go 1 lines

type 'lvl resolved = {
  attrs : string list;
  csts : 'lvl Cst.t list;
  upper_bounds : (string * 'lvl) list;
}

let resolve ~level_of_string ast =
  (* Attributes known a priori: declarations, all lhs members, all
     upper-bounded names. *)
  let known = Hashtbl.create 64 in
  let order = ref [] in
  let declare a =
    if not (Hashtbl.mem known a) then begin
      Hashtbl.add known a ();
      order := a :: !order
    end
  in
  List.iter declare ast.decls;
  List.iter (fun (_, lhs, _) -> List.iter declare lhs) ast.lowers;
  List.iter (fun (_, a, _) -> declare a) ast.uppers;
  let resolve_rhs raw =
    if Hashtbl.mem known raw then Cst.Attr raw
    else
      match level_of_string raw with
      | Some l -> Cst.Level l
      | None ->
          declare raw;
          Cst.Attr raw
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (line, lhs, raw) :: rest -> (
        let rhs = resolve_rhs raw in
        match Cst.make ~lhs ~rhs with
        | Ok c -> build (c :: acc) rest
        | Error e -> Error { line; message = Format.asprintf "%a" Cst.pp_error e })
  in
  match build [] ast.lowers with
  | Error _ as e -> e
  | Ok csts -> (
      let rec ubs acc = function
        | [] -> Ok (List.rev acc)
        | (line, a, raw) :: rest -> (
            match level_of_string raw with
            | Some l -> ubs ((a, l) :: acc) rest
            | None ->
                Error
                  {
                    line;
                    message =
                      Printf.sprintf
                        "upper bound for %S: %S is not a level of the lattice" a
                        raw;
                  })
      in
      match ubs [] ast.uppers with
      | Error _ as e -> e
      | Ok upper_bounds -> Ok { attrs = List.rev !order; csts; upper_bounds })

let parse_resolve ~level_of_string text =
  match parse text with
  | Error _ as e -> e
  | Ok ast -> resolve ~level_of_string ast

let render ~level_to_string r =
  let buf = Buffer.create 256 in
  if r.attrs <> [] then
    Buffer.add_string buf ("attrs " ^ String.concat ", " r.attrs ^ "\n");
  List.iter
    (fun (c : _ Cst.t) ->
      let lhs =
        match c.Cst.lhs with
        | [ a ] -> a
        | many -> "{" ^ String.concat ", " many ^ "}"
      in
      let rhs =
        match c.Cst.rhs with
        | Cst.Attr a -> a
        | Cst.Level l -> level_to_string l
      in
      Buffer.add_string buf (Printf.sprintf "%s >= %s\n" lhs rhs))
    r.csts;
  List.iter
    (fun (a, l) ->
      Buffer.add_string buf (Printf.sprintf "%s <= %s\n" a (level_to_string l)))
    r.upper_bounds;
  Buffer.contents buf
