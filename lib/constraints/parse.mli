(** Text format for classification-constraint files.

    Line-based; [#] starts a comment.  Syntax:

    {v
    attrs name, salary, rank          # optional attribute declarations
    salary >= Confidential            # basic constraint
    {name, salary} >= Secret          # association constraint
    lub{rank, department} >= salary   # inference constraint ("lub" optional)
    name <= Secret                    # upper-bound constraint (§6)
    v}

    The right-hand side of a [>=] line is kept as a raw string and resolved
    against a lattice afterwards ({!resolve}): declared or left-hand-side
    attributes win, then lattice level names, then fresh attributes.  This
    lets level syntaxes as rich as compartmented classes
    ([TS:{Army,Nuclear}]) appear on the right-hand side. *)

type ast = {
  decls : string list;  (** attributes declared via [attrs] lines *)
  lowers : (int * string list * string) list;
      (** [(line, lhs, raw_rhs)] per [>=] line, in file order; the source
          line number is threaded through so {!resolve} errors point at the
          offending line *)
  uppers : (int * string * string) list;
      (** [(line, attr, raw_level)] per [<=] line *)
}

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit
val parse : string -> (ast, error) result

type 'lvl resolved = {
  attrs : string list;  (** the attribute universe, declaration order *)
  csts : 'lvl Cst.t list;
  upper_bounds : (string * 'lvl) list;
}

(** [resolve ~level_of_string ast]. *)
val resolve :
  level_of_string:(string -> 'lvl option) ->
  ast ->
  ('lvl resolved, error) result

(** Parse and resolve in one step. *)
val parse_resolve :
  level_of_string:(string -> 'lvl option) ->
  string ->
  ('lvl resolved, error) result

(** Render a resolved policy back to the file format; [parse_resolve] of
    the result reproduces it (attribute order, constraints, bounds). *)
val render : level_to_string:('lvl -> string) -> 'lvl resolved -> string
