type t = { priority : int array; sets : int array array; max_priority : int }

let forward_succs p a =
  List.filter_map
    (fun ci ->
      match (p.Problem.csts.(ci)).Problem.rhs with
      | Problem.Rattr b -> Some b
      | Problem.Rlevel _ -> None)
    p.Problem.constr_of.(a)

let backward_preds p a =
  List.concat_map
    (fun ci -> Array.to_list (p.Problem.csts.(ci)).Problem.lhs)
    p.Problem.incoming.(a)

(* Iterative DFS.  [on_finish] fires when a node's subtree is exhausted;
   [on_discover] when it is first reached.  Successor lists are consumed
   left to right, so the traversal order matches the recursive
   presentation in the paper. *)
let dfs ~succs ~visit ~on_discover ~on_finish root =
  if not visit.(root) then begin
    visit.(root) <- true;
    on_discover root;
    let stack = ref [ (root, succs root) ] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | (a, []) :: tl ->
          on_finish a;
          stack := tl
      | (a, b :: more) :: tl ->
          stack := (a, more) :: tl;
          if not visit.(b) then begin
            visit.(b) <- true;
            on_discover b;
            stack := (b, succs b) :: !stack
          end
    done
  end

let compute p =
  Minup_obs.Trace.with_span ~cat:"constraints"
    ~args:[ ("attrs", Minup_obs.Trace.Int (Problem.n_attrs p)) ]
    "priorities.compute"
  @@ fun () ->
  let n = Problem.n_attrs p in
  let visit = Array.make n false in
  let finish_stack = ref [] in
  (* Pass 1: forward DFS, recording attributes as their visit concludes. *)
  Minup_obs.Trace.with_span ~cat:"constraints" "priorities.dfs_forward"
    (fun () ->
      for a = 0 to n - 1 do
        dfs ~succs:(forward_succs p) ~visit
          ~on_discover:(fun _ -> ())
          ~on_finish:(fun x -> finish_stack := x :: !finish_stack)
          a
      done);
  (* Pass 2: walk the stack, assigning a fresh priority to each unvisited
     attribute and sweeping its backward-reachable unvisited region into the
     same priority set. *)
  let visit2 = Array.make n false in
  let priority = Array.make n 0 in
  let sets = ref [] in
  let max_priority = ref 0 in
  Minup_obs.Trace.with_span ~cat:"constraints" "priorities.dfs_backward"
    (fun () ->
      List.iter
        (fun a ->
          if not visit2.(a) then begin
            incr max_priority;
            let members = ref [] in
            dfs ~succs:(backward_preds p) ~visit:visit2
              ~on_discover:(fun x ->
                priority.(x) <- !max_priority;
                members := x :: !members)
              ~on_finish:(fun _ -> ())
              a;
            sets := Array.of_list (List.rev !members) :: !sets
          end)
        !finish_stack);
  {
    priority;
    sets = Array.of_list (List.rev !sets);
    max_priority = !max_priority;
  }

let in_cycle t p a =
  Array.length t.sets.(t.priority.(a) - 1) > 1
  || List.exists
       (fun ci ->
         match (p.Problem.csts.(ci)).Problem.rhs with
         | Problem.Rattr b -> b = a
         | Problem.Rlevel _ -> false)
       p.Problem.constr_of.(a)
