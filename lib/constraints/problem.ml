type 'lvl rhs = Rlevel of 'lvl | Rattr of int
type 'lvl cst = { lhs : int array; rhs : 'lvl rhs }

type 'lvl t = {
  attr_names : string array;
  attr_index : (string, int) Hashtbl.t;
  csts : 'lvl cst array;
  lhs_len : int array;
  complex : bool array;
  complex_idx : int array;
  n_complex : int;
  constr_of : int list array;
  complex_constr_of : int array array;
  incoming : int list array;
  dropped : 'lvl Cst.t list;
}

type error = Cst_error of Cst.error | Undeclared_attr of string

let pp_error ppf = function
  | Cst_error e -> Cst.pp_error ppf e
  | Undeclared_attr a ->
      Format.fprintf ppf "constraint mentions undeclared attribute %S" a

exception Err of error

let compile ?(attrs = []) ?(strict = false) csts =
  Minup_obs.Trace.with_span ~cat:"constraints" "problem.compile" @@ fun () ->
  try
    let names = ref [] and index = Hashtbl.create 64 and next = ref 0 in
    let declare a =
      if not (Hashtbl.mem index a) then begin
        Hashtbl.add index a !next;
        names := a :: !names;
        incr next
      end
    in
    List.iter declare attrs;
    let intern a =
      match Hashtbl.find_opt index a with
      | Some i -> i
      | None ->
          if strict then raise (Err (Undeclared_attr a));
          declare a;
          Hashtbl.find index a
    in
    let kept, dropped = List.partition (fun c -> not (Cst.is_trivial c)) csts in
    let compiled =
      List.map
        (fun (c : _ Cst.t) ->
          let lhs = Array.of_list (List.map intern c.lhs) in
          Array.sort compare lhs;
          let rhs =
            match c.rhs with
            | Cst.Level l -> Rlevel l
            | Cst.Attr a -> Rattr (intern a)
          in
          { lhs; rhs })
        kept
    in
    (* Intern attributes of dropped constraints too: they are part of the
       universe and must still receive a (default ⊥) classification. *)
    List.iter (fun c -> List.iter (fun a -> ignore (intern a)) (Cst.attrs c)) dropped;
    let n = !next in
    let csts = Array.of_list compiled in
    (* Per-constraint metadata the solver's hot loop would otherwise
       recompute on every visit. *)
    let lhs_len = Array.map (fun c -> Array.length c.lhs) csts in
    let complex = Array.map (fun len -> len > 1) lhs_len in
    let constr_of = Array.make n [] and incoming = Array.make n [] in
    Array.iteri
      (fun ci c ->
        Array.iter (fun a -> constr_of.(a) <- ci :: constr_of.(a)) c.lhs;
        match c.rhs with
        | Rattr a -> incoming.(a) <- ci :: incoming.(a)
        | Rlevel _ -> ())
      csts;
    let ascending = Array.map List.rev in
    let constr_of = ascending constr_of in
    (* Compact numbering of the complex constraints: the solver keeps one
       incremental lhs-lub aggregate per *complex* constraint, so give them
       dense ids ([complex_idx], -1 for simple ones) and index the complex
       subset of [constr_of] directly by those dense ids — walking it skips
       the (typically dominant) simple constraints. *)
    let complex_idx = Array.make (Array.length csts) (-1) in
    let n_complex = ref 0 in
    Array.iteri
      (fun ci is_complex ->
        if is_complex then begin
          complex_idx.(ci) <- !n_complex;
          incr n_complex
        end)
      complex;
    let complex_constr_of =
      Array.map
        (fun cis ->
          Array.of_list
            (List.filter_map
               (fun ci ->
                 if complex.(ci) then Some complex_idx.(ci) else None)
               cis))
        constr_of
    in
    Ok
      {
        attr_names = Array.of_list (List.rev !names);
        attr_index = index;
        csts;
        lhs_len;
        complex;
        complex_idx;
        n_complex = !n_complex;
        constr_of;
        complex_constr_of;
        incoming = ascending incoming;
        dropped;
      }
  with Err e -> Error e

let compile_exn ?attrs ?strict csts =
  match compile ?attrs ?strict csts with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "Problem.compile: %a" pp_error e)

let n_attrs p = Array.length p.attr_names
let n_csts p = Array.length p.csts

let total_size p =
  Array.fold_left (fun acc len -> acc + len + 1) 0 p.lhs_len

let attr_name p a = p.attr_names.(a)
let attr_id p a = Hashtbl.find_opt p.attr_index a

let attr_id_exn p a =
  match attr_id p a with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Problem.attr_id_exn: unknown attribute %S" a)

let cst_to_source p c =
  Cst.make_exn
    ~lhs:(Array.to_list (Array.map (attr_name p) c.lhs))
    ~rhs:
      (match c.rhs with
      | Rlevel l -> Cst.Level l
      | Rattr a -> Cst.Attr (attr_name p a))

let set_rlevel p ci l =
  if ci < 0 || ci >= Array.length p.csts then
    invalid_arg "Problem.set_rlevel: constraint index out of range";
  (match p.csts.(ci).rhs with
  | Rlevel _ -> ()
  | Rattr _ -> invalid_arg "Problem.set_rlevel: rhs is an attribute");
  let csts = Array.copy p.csts in
  csts.(ci) <- { csts.(ci) with rhs = Rlevel l };
  { p with csts }

let is_acyclic p =
  let n = n_attrs p in
  (* colors: 0 unvisited, 1 on stack, 2 done *)
  let color = Array.make n 0 in
  let cyclic = ref false in
  let rec visit a =
    if color.(a) = 1 then cyclic := true
    else if color.(a) = 0 then begin
      color.(a) <- 1;
      List.iter
        (fun ci ->
          match p.csts.(ci).rhs with Rattr b -> visit b | Rlevel _ -> ())
        p.constr_of.(a);
      color.(a) <- 2
    end
  in
  for a = 0 to n - 1 do
    if not !cyclic then visit a
  done;
  not !cyclic

let satisfies ~leq ~lub ~bottom p assignment =
  Array.for_all
    (fun c ->
      let combined =
        Array.fold_left (fun acc a -> lub acc (assignment a)) bottom c.lhs
      in
      let target =
        match c.rhs with Rlevel l -> l | Rattr a -> assignment a
      in
      leq target combined)
    p.csts

let pp pp_level ppf p =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun c -> Format.fprintf ppf "%a@," (Cst.pp pp_level) (cst_to_source p c))
    p.csts;
  Format.fprintf ppf "@]"
