(** Compiled constraint problems.

    A problem is a set of constraints over an interned attribute universe,
    indexed the way Algorithm 3.1 needs: for every attribute [A], the
    constraints whose left-hand side contains [A] ([Constr[A]] in the
    paper) and the constraints whose right-hand side is [A] (used by the
    backward DFS of the priority computation and by upper-bound
    propagation). *)

type 'lvl rhs = Rlevel of 'lvl | Rattr of int

type 'lvl cst = { lhs : int array; rhs : 'lvl rhs }
(** A compiled constraint; [lhs] is sorted and duplicate-free. *)

type 'lvl t = private {
  attr_names : string array;
  attr_index : (string, int) Hashtbl.t;
  csts : 'lvl cst array;
  lhs_len : int array;
      (** [lhs_len.(ci) = Array.length csts.(ci).lhs], precomputed so the
          solver's hot loop never recomputes it *)
  complex : bool array;  (** [complex.(ci)] iff [lhs_len.(ci) > 1] *)
  complex_idx : int array;
      (** dense numbering of the complex constraints: [complex_idx.(ci)] is
          a dense id in [0 .. n_complex-1], or [-1] if [ci] is simple *)
  n_complex : int;  (** number of complex constraints *)
  constr_of : int list array;
      (** [constr_of.(a)] — indices of constraints with [a] in their lhs,
          ascending *)
  complex_constr_of : int array array;
      (** [complex_constr_of.(a)] — dense ids ([complex_idx]) of the complex
          constraints with [a] in their lhs, ascending; the solver's
          incremental lhs-lub aggregates walk this, skipping the (typically
          dominant) simple constraints *)
  incoming : int list array;
      (** [incoming.(a)] — indices of constraints whose rhs is [a],
          ascending *)
  dropped : 'lvl Cst.t list;
      (** trivially satisfied constraints (rhs ∈ lhs) removed at compile
          time, §3 *)
}

type error = Cst_error of Cst.error | Undeclared_attr of string

val pp_error : Format.formatter -> error -> unit

(** [compile ?attrs csts] interns attributes and indexes constraints.
    Attribute ids follow [attrs] order first, then first mention among the
    constraints.  When [strict] is set (default [false]), constraints may
    only mention attributes listed in [attrs]. *)
val compile :
  ?attrs:string list -> ?strict:bool -> 'lvl Cst.t list -> ('lvl t, error) result

val compile_exn : ?attrs:string list -> ?strict:bool -> 'lvl Cst.t list -> 'lvl t

val n_attrs : 'lvl t -> int
val n_csts : 'lvl t -> int

(** Total constraint size [S = Σ (|lhs| + 1)] from the complexity analysis. *)
val total_size : 'lvl t -> int

val attr_name : 'lvl t -> int -> string
val attr_id : 'lvl t -> string -> int option
val attr_id_exn : 'lvl t -> string -> int

(** Reconstruct the source-form constraint. *)
val cst_to_source : 'lvl t -> 'lvl cst -> 'lvl Cst.t

(** [set_rlevel p ci l] — the same problem with constraint [ci]'s level
    right-hand side replaced by [l].  The constraint graph is untouched
    (a level rhs contributes no edge), so every index structure — and any
    priority assignment computed from [p] — remains valid; the patched
    problem shares them with [p].  O(number of constraints), no interning,
    no DFS.  Raises [Invalid_argument] if [ci] is out of range or its rhs
    is an attribute. *)
val set_rlevel : 'lvl t -> int -> 'lvl -> 'lvl t

(** [is_acyclic p] — no constraint cycle (every edge from each lhs attribute
    to the rhs attribute; constraints with level rhs contribute no edge). *)
val is_acyclic : 'lvl t -> bool

(** [satisfies ~leq ~lub ~bottom p assignment] checks every constraint under
    the given lattice operations; [assignment] maps attribute ids to
    levels. *)
val satisfies :
  leq:('lvl -> 'lvl -> bool) ->
  lub:('lvl -> 'lvl -> 'lvl) ->
  bottom:'lvl ->
  'lvl t ->
  (int -> 'lvl) ->
  bool

val pp :
  (Format.formatter -> 'lvl -> unit) -> Format.formatter -> 'lvl t -> unit
