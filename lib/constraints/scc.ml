type t = { component : int array; members : int array array; n_components : int }

let succs p a =
  List.filter_map
    (fun ci ->
      match (p.Problem.csts.(ci)).Problem.rhs with
      | Problem.Rattr b -> Some b
      | Problem.Rlevel _ -> None)
    p.Problem.constr_of.(a)

let compute p =
  Minup_obs.Trace.with_span ~cat:"constraints"
    ~args:[ ("attrs", Minup_obs.Trace.Int (Problem.n_attrs p)) ]
    "scc.compute"
  @@ fun () ->
  let n = Problem.n_attrs p in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let members = ref [] in
  (* Explicit call stack: (node, remaining successors). *)
  let start root =
    if index.(root) = -1 then begin
      let call = ref [ (root, succs p root) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      scc_stack := root :: !scc_stack;
      on_stack.(root) <- true;
      let continue = ref true in
      while !continue do
        match !call with
        | [] -> continue := false
        | (a, []) :: tl ->
            call := tl;
            (match tl with
            | (parent, _) :: _ ->
                if lowlink.(a) < lowlink.(parent) then
                  lowlink.(parent) <- lowlink.(a)
            | [] -> ());
            if lowlink.(a) = index.(a) then begin
              (* a is the root of an SCC: pop it. *)
              let ms = ref [] in
              let stop = ref false in
              while not !stop do
                match !scc_stack with
                | [] -> stop := true
                | x :: rest ->
                    scc_stack := rest;
                    on_stack.(x) <- false;
                    comp.(x) <- !next_comp;
                    ms := x :: !ms;
                    if x = a then stop := true
              done;
              members := Array.of_list (List.sort compare !ms) :: !members;
              incr next_comp
            end
        | (a, b :: more) :: tl ->
            call := (a, more) :: tl;
            if index.(b) = -1 then begin
              index.(b) <- !next_index;
              lowlink.(b) <- !next_index;
              incr next_index;
              scc_stack := b :: !scc_stack;
              on_stack.(b) <- true;
              call := (b, succs p b) :: !call
            end
            else if on_stack.(b) && index.(b) < lowlink.(a) then
              lowlink.(a) <- index.(b)
      done
    end
  in
  for a = 0 to n - 1 do
    start a
  done;
  {
    component = comp;
    members = Array.of_list (List.rev !members);
    n_components = !next_comp;
  }

let same_component t a b = t.component.(a) = t.component.(b)

let is_cyclic_component t p c =
  Array.length t.members.(c) > 1
  || (Array.length t.members.(c) = 1
     &&
     let a = t.members.(c).(0) in
     List.mem a (succs p a))
