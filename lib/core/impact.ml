module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module S = Solver.Make (L)

  type move = Raised | Lowered | Shifted | Added

  type change = {
    attr : string;
    before : L.level option;
    after : L.level;
    move : move;
  }

  type report = {
    changes : change list;
    unchanged : int;
    solution : S.solution;
  }

  let diff lat ~before ~after =
    List.filter_map
      (fun (attr, now) ->
        match List.assoc_opt attr before with
        | None -> Some { attr; before = None; after = now; move = Added }
        | Some old ->
            if L.equal lat old now then None
            else
              let move =
                if L.leq lat old now then Raised
                else if L.leq lat now old then Lowered
                else Shifted
              in
              Some { attr; before = Some old; after = now; move })
      after

  let of_added_constraints ~lattice ?attrs ?upgrade_preference ~base ~added () =
    match S.compile ~lattice ?attrs base with
    | Error _ as e -> e
    | Ok p0 -> (
        match S.compile ~lattice ?attrs (base @ added) with
        | Error _ as e -> e
        | Ok p1 ->
            let config = S.Config.make ?upgrade_preference () in
            let s0 = S.solve ~config p0 in
            let s1 = S.solve ~config p1 in
            let changes =
              diff lattice ~before:s0.S.assignment ~after:s1.S.assignment
            in
            Ok
              {
                changes;
                unchanged = List.length s1.S.assignment - List.length changes;
                solution = s1;
              })

  let pp_report lat ppf r =
    Format.fprintf ppf "@[<v>";
    if r.changes = [] then Format.fprintf ppf "no classification changes@,"
    else
      List.iter
        (fun { attr; before; after; move } ->
          let verb =
            match move with
            | Raised -> "raised"
            | Lowered -> "lowered"
            | Shifted -> "shifted"
            | Added -> "added"
          in
          match before with
          | None ->
              Format.fprintf ppf "%-8s %s at %a@," verb attr (L.pp_level lat) after
          | Some old ->
              Format.fprintf ppf "%-8s %s: %a -> %a@," verb attr (L.pp_level lat)
                old (L.pp_level lat) after)
        r.changes;
    Format.fprintf ppf "%d attribute(s) unchanged@]" r.unchanged
end
