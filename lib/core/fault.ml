module Json = Minup_obs.Json

type t =
  | Solver_error of { exn : string }
  | Deadline_exceeded of { deadline_ms : int; elapsed_ms : float }
  | Budget_exhausted of { max_steps : int; steps : int }
  | Injected of { description : string }

exception Injection of string

let () =
  Printexc.register_printer (function
    | Injection d -> Some (Printf.sprintf "Minup_core.Fault.Injection(%S)" d)
    | _ -> None)

let label = function
  | Solver_error _ -> "solver_error"
  | Deadline_exceeded _ -> "deadline"
  | Budget_exhausted _ -> "budget"
  | Injected _ -> "injected"

let pp ppf = function
  | Solver_error { exn } -> Format.fprintf ppf "solver exception: %s" exn
  | Deadline_exceeded { deadline_ms; elapsed_ms } ->
      Format.fprintf ppf "deadline exceeded: %.1fms elapsed of a %dms budget"
        elapsed_ms deadline_ms
  | Budget_exhausted { max_steps; steps } ->
      Format.fprintf ppf "step budget exhausted: %d steps of a %d-step budget"
        steps max_steps
  | Injected { description } ->
      Format.fprintf ppf "injected fault: %s" description

(* Microsecond rounding keeps the float JSON-exact: the paylod is a
   millisecond count, so three decimals lose nothing anyone reads. *)
let round_us ms = Float.round (ms *. 1e3) /. 1e3

let to_json t =
  let kind = ("kind", Json.Str (label t)) in
  match t with
  | Solver_error { exn } -> Json.Obj [ kind; ("exn", Json.Str exn) ]
  | Deadline_exceeded { deadline_ms; elapsed_ms } ->
      Json.Obj
        [
          kind;
          ("deadline_ms", Json.Num (float_of_int deadline_ms));
          ("elapsed_ms", Json.Num (round_us elapsed_ms));
        ]
  | Budget_exhausted { max_steps; steps } ->
      Json.Obj
        [
          kind;
          ("max_steps", Json.Num (float_of_int max_steps));
          ("steps", Json.Num (float_of_int steps));
        ]
  | Injected { description } ->
      Json.Obj [ kind; ("description", Json.Str description) ]

let of_json j =
  let exception Bad of string in
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> s
    | Some _ -> raise (Bad (k ^ " is not a string"))
    | None -> raise (Bad ("missing field " ^ k))
  in
  let num k =
    match Json.member k j with
    | Some (Json.Num f) -> f
    | Some _ -> raise (Bad (k ^ " is not a number"))
    | None -> raise (Bad ("missing field " ^ k))
  in
  let int k =
    let f = num k in
    if Float.is_integer f then int_of_float f
    else raise (Bad (k ^ " is not an integer"))
  in
  match j with
  | Json.Obj _ -> (
      try
        match str "kind" with
        | "solver_error" -> Ok (Solver_error { exn = str "exn" })
        | "deadline" ->
            Ok
              (Deadline_exceeded
                 { deadline_ms = int "deadline_ms"; elapsed_ms = num "elapsed_ms" })
        | "budget" ->
            Ok (Budget_exhausted { max_steps = int "max_steps"; steps = int "steps" })
        | "injected" -> Ok (Injected { description = str "description" })
        | k -> Error (Printf.sprintf "unknown fault kind %S" k)
      with Bad msg -> Error msg)
  | _ -> Error "expected an object"
