module Trace = Minup_obs.Trace
module Metrics = Minup_obs.Metrics
module Clock = Minup_obs.Clock

let default_jobs () = max 1 (Domain.recommended_domain_count ())

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module Solver = Solver.Make (L)

  type report = {
    solutions : Solver.solution array;
    stats : Instr.t;
    jobs : int;
  }

  (* Work distribution is a single atomic counter: workers claim the next
     unsolved index until the batch is exhausted.  Dynamic (rather than
     striped) assignment keeps all domains busy when problem sizes are
     skewed; results land at their input index, so the output order is the
     input order no matter which domain solved what. *)
  let solve_batch ?residual ?upgrade_preference ?jobs problems =
    let n = Array.length problems in
    let jobs =
      match jobs with
      | Some j when j < 1 -> invalid_arg "Engine.solve_batch: jobs < 1"
      | Some j -> min j (max 1 n)
      | None -> min (default_jobs ()) (max 1 n)
    in
    (* Latched once per batch, like the solver: the disabled path is a
       branch per site, with no clocks or atomics touched. *)
    let tracing = Trace.enabled () in
    let metering = Metrics.enabled () in
    let observing = tracing || metering in
    let solve p = Solver.solve ?residual ?upgrade_preference p in
    (* One solve, attributed to a worker/problem pair on the trace; the
       span is closed on the exception path too so B/E pairs stay
       matched. *)
    let solve1 ~worker i =
      if tracing then
        Trace.begin_span ~cat:"engine"
          ~args:[ ("problem", Trace.Int i); ("worker", Trace.Int worker) ]
          "solve_task";
      let finish () = if tracing then Trace.end_span ~cat:"engine" "solve_task" in
      match solve problems.(i) with
      | s ->
          finish ();
          s
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
    in
    (* Per-worker load-balance diagnostics: how many solves each worker
       claimed, and how long it spent claiming work off the shared queue
       (one histogram sample per worker = the distribution across the
       pool). *)
    let record_worker ~worker ~solved ~wait_ns =
      if metering then begin
        Metrics.add
          (Metrics.counter (Printf.sprintf "engine/worker%d/solves" worker))
          solved;
        Metrics.observe
          (Metrics.histogram "engine/queue_wait_ns")
          (Int64.to_int wait_ns)
      end
    in
    let solutions =
      if jobs = 1 || n <= 1 then begin
        if tracing then
          Trace.begin_span ~cat:"engine"
            ~args:[ ("worker", Trace.Int 0) ]
            "worker";
        (* A raising solve must not escape with the worker span still open
           (solve1 already closes its own solve_task span): the B/E pairs
           stay matched on the exception path too. *)
        let sols =
          match Array.init n (fun i -> solve1 ~worker:0 i) with
          | sols -> sols
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              if tracing then Trace.end_span ~cat:"engine" "worker";
              Printexc.raise_with_backtrace e bt
        in
        record_worker ~worker:0 ~solved:n ~wait_ns:0L;
        if tracing then
          Trace.end_span ~cat:"engine"
            ~args:[ ("solves", Trace.Int n) ]
            "worker";
        sols
      end
      else begin
        let results = Array.make n None in
        let next = Atomic.make 0 in
        let worker w () =
          if tracing then
            Trace.begin_span ~cat:"engine"
              ~args:[ ("worker", Trace.Int w) ]
              "worker";
          let solved = ref 0 in
          let wait_ns = ref 0L in
          let continue = ref true in
          while !continue do
            let t_claim = if observing then Clock.now_ns () else 0L in
            let i = Atomic.fetch_and_add next 1 in
            if observing then
              wait_ns := Int64.add !wait_ns (Clock.elapsed_ns ~since:t_claim);
            if i >= n then continue := false
            else begin
              let r =
                match solve1 ~worker:w i with
                | s -> Ok s
                | exception e -> Error (e, Printexc.get_raw_backtrace ())
              in
              results.(i) <- Some r;
              incr solved
            end
          done;
          record_worker ~worker:w ~solved:!solved ~wait_ns:!wait_ns;
          if tracing then
            Trace.end_span ~cat:"engine"
              ~args:
                [
                  ("solves", Trace.Int !solved);
                  ("queue_wait_ns", Trace.Int (Int64.to_int !wait_ns));
                ]
              "worker"
        in
        (* The calling domain is worker number [jobs - 1]; only [jobs - 1]
           are spawned. *)
        let spawned = Array.init (jobs - 1) (fun w -> Domain.spawn (worker w)) in
        worker (jobs - 1) ();
        Array.iter Domain.join spawned;
        Array.map
          (function
            | Some (Ok s) -> s
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | None -> assert false)
          results
      end
    in
    {
      solutions;
      stats = Instr.sum (Array.map (fun s -> s.Solver.stats) solutions);
      jobs;
    }
end
