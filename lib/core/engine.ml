module Trace = Minup_obs.Trace
module Metrics = Minup_obs.Metrics
module Clock = Minup_obs.Clock

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type policy = {
  deadline_ms : int option;
  max_steps : int option;
  retries : int;
  backoff_ms : int;
  backoff_max_ms : int;
  seed : int;
  fail_fast : bool;
}

let default_policy =
  {
    deadline_ms = None;
    max_steps = None;
    retries = 0;
    backoff_ms = 1;
    backoff_max_ms = 100;
    seed = 0;
    fail_fast = false;
  }

type hook = charge:(int -> unit) -> warp_ms:(int -> unit) -> unit

(* splitmix64 finalizer — the backoff jitter must be deterministic given
   (seed, task, attempt) so retrying runs are reproducible; it must not
   depend on global PRNG state other workers also draw from. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0.5, 1) — "equal jitter": spreads retry wake-ups while
   keeping at least half the nominal delay. *)
let jitter ~seed ~task ~attempt =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.add
            (Int64.mul (Int64.of_int task) 0x9e3779b9L)
            (Int64.of_int attempt)))
  in
  0.5 +. (Int64.to_float (Int64.shift_right_logical z 11) /. 0x1p53 *. 0.5)

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  (* Captured before the functor application below shadows [Solver]: the
     budget type lives outside the functor. *)
  let make_budget = Solver.budget
  let charge_budget = Solver.charge

  module Solver = Solver.Make (L)

  type report = {
    solutions : (Solver.solution, Fault.t) result array;
    attempts : int array;
    stats : Instr.t;
    jobs : int;
    retries : int;
    failed : int;
  }

  let ok_exn report =
    Array.mapi
      (fun i r ->
        match r with
        | Ok s -> s
        | Error f ->
            invalid_arg
              (Format.asprintf "Engine.ok_exn: task %d failed: %a" i Fault.pp
                 f))
      report.solutions

  (* Exceptions the supervisor must never swallow as a per-task fault:
     they concern the whole process (user interrupt, resource exhaustion),
     not the task that happened to be running when they struck. *)
  let passthrough = function
    | Sys.Break | Out_of_memory -> true
    | _ -> false

  let classify = function
    | Fault.Injection description -> Fault.Injected { description }
    | Solver.Cancelled { reason; progress } -> (
        match reason with
        | Solver.Deadline { deadline_ms; elapsed_ms } ->
            Fault.Deadline_exceeded { deadline_ms; elapsed_ms }
        | Solver.Steps { max_steps } ->
            Fault.Budget_exhausted { max_steps; steps = progress.steps })
    | e -> Fault.Solver_error { exn = Printexc.to_string e }

  (* Work distribution is a single atomic counter: workers claim the next
     unsolved index until the batch is exhausted (or a fail-fast abort
     stops further claims).  Dynamic (rather than striped) assignment
     keeps all domains busy when problem sizes are skewed; results land at
     their input index, so the output order is the input order no matter
     which domain solved what.

     Claims are monotonic: if index [i] was ever claimed, every index
     below [i] was claimed before it, and a claimed task always runs to
     completion (the abort flag is only consulted *between* claims).  So
     after the join the completed tasks form an exact prefix of the input,
     which is what makes fail-fast deterministic: the lowest-index error
     in that prefix is the same in every interleaving. *)
  let solve_batch ?residual ?upgrade_preference ?(policy = default_policy)
      ?instrument ?jobs problems =
    let n = Array.length problems in
    let jobs =
      match jobs with
      | Some j when j < 1 -> invalid_arg "Engine.solve_batch: jobs < 1"
      | Some j -> min j (max 1 n)
      | None -> min (default_jobs ()) (max 1 n)
    in
    if policy.retries < 0 then invalid_arg "Engine.solve_batch: retries < 0";
    if policy.backoff_ms < 0 || policy.backoff_max_ms < 0 then
      invalid_arg "Engine.solve_batch: negative backoff";
    (* Latched once per batch, like the solver: the disabled path is a
       branch per site, with no clocks or atomics touched. *)
    let tracing = Trace.enabled () in
    let metering = Metrics.enabled () in
    let observing = tracing || metering in
    (* Supervision counters are resolved (and thereby registered) up
       front, so a metered batch reports them even when their value is 0 —
       a benchmark's phase_metrics must show [engine/retries = 0], not
       omit the key. *)
    let mfault =
      if metering then
        Some
          ( Metrics.counter "engine/retries",
            Metrics.counter "engine/deadline_exceeded",
            Metrics.counter "engine/budget_exhausted",
            Metrics.counter "engine/injected",
            Metrics.counter "engine/solver_errors" )
      else None
    in
    let count_fault f =
      match mfault with
      | None -> ()
      | Some (_, dl, bg, inj, err) ->
          Metrics.incr
            (match f with
            | Fault.Deadline_exceeded _ -> dl
            | Fault.Budget_exhausted _ -> bg
            | Fault.Injected _ -> inj
            | Fault.Solver_error _ -> err)
    in
    let need_budget = policy.deadline_ms <> None || policy.max_steps <> None in
    (* One supervised attempt.  The fault-injection hook (if any) rides the
       solver's event stream: each scheduling event invokes it with the
       ability to burn budget steps or warp the budget's virtual clock —
       or to raise {!Fault.Injection} outright. *)
    let run_attempt ~worker ~attempt i =
      if tracing then
        Trace.begin_span ~cat:"engine"
          ~args:
            [
              ("problem", Trace.Int i);
              ("worker", Trace.Int worker);
              ("attempt", Trace.Int attempt);
            ]
          "solve_task";
      let finish () =
        if tracing then Trace.end_span ~cat:"engine" "solve_task"
      in
      let hook = match instrument with None -> None | Some f -> f i in
      let warp = ref 0L in
      let budget =
        if need_budget then
          Some
            (make_budget ?deadline_ms:policy.deadline_ms
               ?max_steps:policy.max_steps
               ~now:(fun () -> Int64.add (Clock.now_ns ()) !warp)
               ())
        else None
      in
      let on_event =
        match hook with
        | None -> None
        | Some h ->
            let charge k =
              match budget with Some b -> charge_budget b k | None -> ()
            in
            let warp_ms ms =
              warp := Int64.add !warp (Int64.mul (Int64.of_int ms) 1_000_000L)
            in
            Some (fun _ev -> h ~charge ~warp_ms)
      in
      match
        Solver.solve
          ~config:
            (Solver.Config.make ?on_event ?residual ?upgrade_preference
               ?budget ())
          problems.(i)
      with
      | s ->
          finish ();
          Ok s
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          if passthrough e then Printexc.raise_with_backtrace e bt
          else begin
            let f = classify e in
            count_fault f;
            Error (f, e, bt)
          end
    in
    let backoff_sleep ~task ~attempt =
      let base = policy.backoff_ms * (1 lsl min (attempt - 1) 20) in
      let delay_ms = min policy.backoff_max_ms base in
      if delay_ms > 0 then
        Unix.sleepf
          (float_of_int delay_ms
          *. jitter ~seed:policy.seed ~task ~attempt
          /. 1000.)
    in
    let attempts = Array.make n 0 in
    let rec run_task ~worker i =
      let attempt = attempts.(i) + 1 in
      attempts.(i) <- attempt;
      match run_attempt ~worker ~attempt i with
      | Ok _ as ok -> ok
      | Error _ as err when attempt > policy.retries ->
          err
      | Error _ ->
          (match mfault with
          | Some (r, _, _, _, _) -> Metrics.incr r
          | None -> ());
          backoff_sleep ~task:i ~attempt;
          run_task ~worker i
    in
    (* Per-worker load-balance diagnostics: how many solves each worker
       claimed, and how long it spent claiming work off the shared queue
       (one histogram sample per worker = the distribution across the
       pool). *)
    let record_worker ~worker ~solved ~wait_ns =
      if metering then begin
        Metrics.add
          (Metrics.counter (Printf.sprintf "engine/worker%d/solves" worker))
          solved;
        Metrics.observe
          (Metrics.histogram "engine/queue_wait_ns")
          (Int64.to_int wait_ns)
      end
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let abort = Atomic.make false in
    let fatal = Atomic.make None in
    let worker w () =
      if tracing then
        Trace.begin_span ~cat:"engine"
          ~args:[ ("worker", Trace.Int w) ]
          "worker";
      let solved = ref 0 in
      let wait_ns = ref 0L in
      let continue = ref true in
      while !continue do
        if Atomic.get abort then continue := false
        else begin
          let t_claim = if observing then Clock.now_ns () else 0L in
          let i = Atomic.fetch_and_add next 1 in
          if observing then
            wait_ns := Int64.add !wait_ns (Clock.elapsed_ns ~since:t_claim);
          if i >= n then continue := false
          else begin
            match run_task ~worker:w i with
            | r ->
                results.(i) <- Some r;
                incr solved;
                (match r with
                | Error _ when policy.fail_fast -> Atomic.set abort true
                | _ -> ())
            | exception e ->
                (* A passthrough exception (only those escape [run_task]):
                   park it for the supervisor, stop the whole pool, and
                   keep this worker's spans balanced. *)
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set fatal None (Some (e, bt)));
                Atomic.set abort true;
                continue := false
          end
        end
      done;
      record_worker ~worker:w ~solved:!solved ~wait_ns:!wait_ns;
      if tracing then
        Trace.end_span ~cat:"engine"
          ~args:
            [
              ("solves", Trace.Int !solved);
              ("queue_wait_ns", Trace.Int (Int64.to_int !wait_ns));
            ]
          "worker"
    in
    (* The calling domain is worker number [jobs - 1]; only [jobs - 1]
       are spawned — with [jobs = 1] the caller does everything and no
       domain is spawned at all. *)
    let spawned = Array.init (jobs - 1) (fun w -> Domain.spawn (worker w)) in
    worker (jobs - 1) ();
    Array.iter Domain.join spawned;
    (match Atomic.get fatal with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    if policy.fail_fast then
      (* Completed tasks form a prefix of the input (see above), so the
         first stored error is the lowest-index error of any
         interleaving. *)
      Array.iteri
        (fun _ r ->
          match r with
          | Some (Error (_, e, bt)) -> Printexc.raise_with_backtrace e bt
          | _ -> ())
        results;
    let solutions =
      Array.map
        (function
          | Some (Ok s) -> Ok s
          | Some (Error (f, _, _)) -> Error f
          | None ->
              (* Unreachable: abort is only set on fail-fast (raised
                 above) or fatal (raised above); otherwise every index was
                 claimed and completed. *)
              assert false)
        results
    in
    let stats =
      Instr.sum
        (Array.map
           (function Ok s -> s.Solver.stats | Error _ -> Instr.create ())
           solutions)
    in
    let failed =
      Array.fold_left
        (fun acc -> function Ok _ -> acc | Error _ -> acc + 1)
        0 solutions
    in
    let retries =
      Array.fold_left (fun acc k -> acc + max 0 (k - 1)) 0 attempts
    in
    { solutions; attempts; stats; jobs; retries; failed }
end
