let default_jobs () = max 1 (Domain.recommended_domain_count ())

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  module Solver = Solver.Make (L)

  type report = {
    solutions : Solver.solution array;
    stats : Instr.t;
    jobs : int;
  }

  (* Work distribution is a single atomic counter: workers claim the next
     unsolved index until the batch is exhausted.  Dynamic (rather than
     striped) assignment keeps all domains busy when problem sizes are
     skewed; results land at their input index, so the output order is the
     input order no matter which domain solved what. *)
  let solve_batch ?residual ?upgrade_preference ?jobs problems =
    let n = Array.length problems in
    let jobs =
      match jobs with
      | Some j when j < 1 -> invalid_arg "Engine.solve_batch: jobs < 1"
      | Some j -> min j (max 1 n)
      | None -> min (default_jobs ()) (max 1 n)
    in
    let solve p = Solver.solve ?residual ?upgrade_preference p in
    let solutions =
      if jobs = 1 || n <= 1 then Array.map solve problems
      else begin
        let results = Array.make n None in
        let next = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= n then continue := false
            else begin
              let r =
                match solve problems.(i) with
                | s -> Ok s
                | exception e -> Error (e, Printexc.get_raw_backtrace ())
              in
              results.(i) <- Some r
            end
          done
        in
        (* The calling domain is worker number [jobs]; only [jobs - 1] are
           spawned. *)
        let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        Array.iter Domain.join spawned;
        Array.map
          (function
            | Some (Ok s) -> s
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | None -> assert false)
          results
      end
    in
    {
      solutions;
      stats = Instr.sum (Array.map (fun s -> s.Solver.stats) solutions);
      jobs;
    }
end
