open Minup_constraints
module Trace = Minup_obs.Trace
module Metrics = Minup_obs.Metrics
module Clock = Minup_obs.Clock

(* A cooperative cancellation budget, shared by every solver instantiation
   (it involves no lattice types).  [steps] counts scheduling iterations —
   one per Bigloop attribute visit, one per Try worklist pop — the units of
   progress the algorithm is guaranteed to make; [charge] lets
   fault-injection hooks burn budget without doing work.  The wall clock is
   an injectable [now] so tests (and the fault simulator) can warp time
   deterministically instead of sleeping. *)
type budget = {
  deadline_ms : int option;
  max_steps : int option;
  now : unit -> int64;
  mutable steps : int;
}

let budget ?deadline_ms ?max_steps ?(now = Clock.now_ns) () =
  (match deadline_ms with
  | Some ms when ms < 0 -> invalid_arg "Solver.budget: deadline_ms < 0"
  | _ -> ());
  (match max_steps with
  | Some s when s < 0 -> invalid_arg "Solver.budget: max_steps < 0"
  | _ -> ());
  { deadline_ms; max_steps; now; steps = 0 }

let charge b k = if k > 0 then b.steps <- b.steps + min k (max_int - b.steps)

module Make (L : Minup_lattice.Lattice_intf.S) = struct
  type problem = {
    lat : L.t;
    prob : L.level Problem.t;
    prio : Priorities.t;
  }

  let compile ~lattice ?attrs csts =
    Trace.with_span ~cat:"solver" "compile" @@ fun () ->
    match Problem.compile ?attrs csts with
    | Error _ as e -> e
    | Ok prob -> Ok { lat = lattice; prob; prio = Priorities.compute prob }

  let compile_exn ~lattice ?attrs csts =
    match compile ~lattice ?attrs csts with
    | Ok p -> p
    | Error e -> invalid_arg (Format.asprintf "Solver.compile: %a" Problem.pp_error e)

  type event =
    | Consider of { attr : string; priority : int }
    | Back_assigned of { attr : string; level : L.level }
    | Try_lower of {
        attr : string;
        target : L.level;
        lowered : (string * L.level) list option;
      }
    | Finalized of { attr : string; level : L.level }

  type solution = {
    levels : L.level array;
    assignment : (string * L.level) list;
    stats : Instr.t;
  }

  type cancel_reason =
    | Deadline of { deadline_ms : int; elapsed_ms : float }
    | Steps of { max_steps : int }

  type progress = {
    partial : (string * L.level) list;
    n_finalized : int;
    n_attrs : int;
    steps : int;
  }

  exception Cancelled of { reason : cancel_reason; progress : progress }

  let () =
    Printexc.register_printer (function
      | Cancelled { reason; progress } ->
          let what =
            match reason with
            | Deadline { deadline_ms; elapsed_ms } ->
                Printf.sprintf "deadline %dms exceeded (%.1fms elapsed)"
                  deadline_ms elapsed_ms
            | Steps { max_steps } ->
                Printf.sprintf "step budget %d exhausted" max_steps
          in
          Some
            (Printf.sprintf "Solver.Cancelled(%s; %d/%d attrs finalized, %d steps)"
               what progress.n_finalized progress.n_attrs progress.steps)
      | _ -> None)

  exception Try_failed

  module Config = struct
    type t = {
      on_event : (event -> unit) option;
      residual : (L.t -> target:L.level -> others:L.level -> L.level) option;
      upgrade_preference : (string -> int) option;
      check_aggregate : bool;
      budget : budget option;
    }

    let default =
      {
        on_event = None;
        residual = None;
        upgrade_preference = None;
        check_aggregate = false;
        budget = None;
      }

    let make ?on_event ?residual ?upgrade_preference ?(check_aggregate = false)
        ?budget () =
      { on_event; residual; upgrade_preference; check_aggregate; budget }
  end

  (* The whole algorithm, shared between the plain (§§3–5), upper-bound
     (§6) and incremental re-solve modes.  [init] gives the starting level
     of every attribute (⊤, or the derived upper bound); [bounds_mode]
     forces Minlevel to run for every attribute of every complex
     constraint; [frozen] pins attributes at known-final levels (the
     incremental path — see {!solve_incremental} for the contract). *)
  let solve_internal ~(config : Config.t) ?frozen ~init ~bounds_mode
      { lat; prob; prio } =
    let on_event = match config.Config.on_event with
      | None -> fun _ -> ()
      | Some f -> f
    in
    let residual = config.Config.residual in
    let upgrade_preference = config.Config.upgrade_preference in
    let check_aggregate = config.Config.check_aggregate in
    let budget = config.Config.budget in
    let n = Problem.n_attrs prob in
    let csts = prob.Problem.csts in
    let stats = Instr.create () in
    (* Observability is latched once per solve: every instrumentation site
       below is guarded by one of these two booleans, so the disabled path
       costs exactly one branch per site — no clock reads, no allocation,
       and (critically) no effect on the [Instr] counters, which stay
       identical whether tracing is on or off. *)
    let tracing = Trace.enabled () in
    let metering = Metrics.enabled () in
    (* Registry lookups take a mutex; resolve the handles once per solve so
       metered parallel batches do not serialize on per-attribute lookups. *)
    let m =
      if metering then
        Some
          ( Metrics.counter "solver/back_assigned",
            Metrics.counter "solver/forward_lowered",
            Metrics.histogram "solver/try_iters_per_scc" )
      else None
    in
    let t_solve0 = if tracing || metering then Clock.now_ns () else 0L in
    if tracing then
      Trace.begin_span ~ts_ns:t_solve0 ~cat:"solver"
        ~args:
          [
            ("attrs", Trace.Int n);
            ("csts", Trace.Int (Array.length csts));
            ("bounds_mode", Trace.Bool bounds_mode);
          ]
        "solve";
    let bottom = L.bottom lat in
    let top = L.top lat in
    (* Instrumented lattice operations.  ⊥ is the identity of lub and ⊤ the
       identity of glb, so those cases skip the lattice operation (and the
       counter) entirely — folds that start from ⊥, and glbs against
       still-at-⊤ attributes, are frequent enough in the algorithm that this
       shortcut alone removes a sizable slice of the lattice-op bill.  The
       test is *physical* equality: one compare instruction, exact for
       immediate level representations (every int-backed lattice), and for
       boxed levels merely a missed shortcut — [L.lub]/[L.glb] then handle
       the identity case themselves, so results are unchanged. *)
    let lub a b =
      if a == bottom then b
      else if b == bottom then a
      else begin
        stats.Instr.lub <- stats.Instr.lub + 1;
        L.lub lat a b
      end
    in
    let glb a b =
      if a == top then b
      else if b == top then a
      else begin
        stats.Instr.glb <- stats.Instr.glb + 1;
        L.glb lat a b
      end
    in
    let leq a b =
      stats.Instr.leq <- stats.Instr.leq + 1;
      L.leq lat a b
    in
    let lam = Array.init n init in
    let done_ = Array.make n false in
    let unlabeled = Array.copy prob.Problem.lhs_len in
    (* Cooperative cancellation.  [check_fine] runs once per scheduling
       event — each Try worklist pop and each Bigloop attribute: it
       charges one step, trips on the step budget immediately, but polls
       the wall clock only every 64 steps so neither hot loop pays a
       clock read per iteration (a clock read per attribute costs >10%
       on back-propagation-heavy workloads).  [check_final] runs once
       after the Bigloop and always polls the clock, so a deadline — or
       a hook's clock warp landing after the last amortized poll — is
       noticed even on instances too small to ever reach 64 steps.  With
       no budget both checks are the unit closure: one indirect call per
       site, no clock reads, and no effect on the [Instr] counters
       ([steps] lives in the budget, not in [stats]). *)
    let check_fine, check_final =
      match budget with
      | None ->
          let nop () = () in
          (nop, nop)
      | Some b ->
          let t0 = b.now () in
          let deadline_ns =
            match b.deadline_ms with
            | None -> None
            | Some ms ->
                Some (ms, Int64.add t0 (Int64.mul (Int64.of_int ms) 1_000_000L))
          in
          let cancel reason =
            let partial = ref [] and count = ref 0 in
            for a = n - 1 downto 0 do
              if done_.(a) then begin
                incr count;
                partial := (Problem.attr_name prob a, lam.(a)) :: !partial
              end
            done;
            raise
              (Cancelled
                 {
                   reason;
                   progress =
                     {
                       partial = !partial;
                       n_finalized = !count;
                       n_attrs = n;
                       steps = b.steps;
                     };
                 })
          in
          let check_steps () =
            match b.max_steps with
            | Some m when b.steps > m -> cancel (Steps { max_steps = m })
            | _ -> ()
          in
          let check_clock () =
            match deadline_ns with
            | Some (ms, d) ->
                let t = b.now () in
                if Int64.compare t d > 0 then
                  cancel
                    (Deadline
                       {
                         deadline_ms = ms;
                         elapsed_ms = Int64.to_float (Int64.sub t t0) /. 1e6;
                       })
            | None -> ()
          in
          let fine () =
            b.steps <- b.steps + 1;
            check_steps ();
            if b.steps land 63 = 0 then check_clock ()
          in
          let final () =
            check_steps ();
            check_clock ()
          in
          (fine, final)
    in
    (* Incremental left-hand-side lub aggregates, one per *complex*
       constraint (indexed by [Problem.complex_idx]): [agg.(k)] is the lub
       of the levels of the finalized lhs members of the constraint with
       dense id [k].  An attribute's level never changes once finalized
       (back-assigned attributes are final immediately; forward lowering
       only ever touches not-yet-done attributes), so each member enters
       the aggregate exactly once and [Minlevel] no longer refolds the
       whole lhs on every call.  [finalize] is reached exactly once per
       attribute — from the two mutually exclusive branches of the Bigloop
       body — so no guard flag is needed, and ⊥ levels are skipped outright
       since ⊥ is the lub identity. *)
    let agg = Array.make prob.Problem.n_complex bottom in
    let complex_constr_of = prob.Problem.complex_constr_of in
    let finalize a =
      let la = lam.(a) in
      if la != bottom then begin
        let ks = complex_constr_of.(a) in
        for i = 0 to Array.length ks - 1 do
          let k = ks.(i) in
          agg.(k) <- lub agg.(k) la
        done
      end
    in
    let rhs_level (c : _ Problem.cst) =
      match c.rhs with Problem.Rlevel l -> l | Problem.Rattr b -> lam.(b)
    in
    let rhs_done (c : _ Problem.cst) =
      match c.rhs with Problem.Rlevel _ -> true | Problem.Rattr b -> done_.(b)
    in
    (* Incremental mode: pin the frozen attributes before the Bigloop —
       their levels are final, they count as labeled for every constraint
       they appear in (so [unlabeled] and the lhs-lub aggregates see them
       exactly as if the Bigloop had just finalized them), and the Bigloop
       skips them outright.  On the non-incremental path [skip] stays
       all-false and costs one array read per attribute visit. *)
    let skip = Array.make n false in
    (match frozen with
    | None -> ()
    | Some f ->
        for a = 0 to n - 1 do
          match f a with
          | None -> ()
          | Some l ->
              skip.(a) <- true;
              done_.(a) <- true;
              lam.(a) <- l;
              List.iter
                (fun ci ->
                  if prob.Problem.complex.(ci) then
                    unlabeled.(ci) <- unlabeled.(ci) - 1)
                prob.Problem.constr_of.(a)
        done;
        for a = 0 to n - 1 do
          if skip.(a) then finalize a
        done);
    (* The pre-aggregate computation of "lub of the other lhs members": a
       full refold of the constraint's lhs.  Kept as the reference the
       incremental aggregate is checked against (uninstrumented, so
       self-checking does not distort the counters). *)
    let lubothers_reference a (c : _ Problem.cst) =
      Array.fold_left
        (fun acc a' -> if a' = a then acc else L.lub lat acc lam.(a'))
        bottom c.lhs
    in
    (* MINLEVEL(A, lhs, rhs): a minimal level A can assume without violating
       the constraint, given the current levels of the other lhs members. *)
    let minlevel a ci (c : _ Problem.cst) =
      stats.Instr.minlevel_calls <- stats.Instr.minlevel_calls + 1;
      let k = prob.Problem.complex_idx.(ci) in
      let lubothers =
        if unlabeled.(ci) = 0 then
          (* Every lhs member has been considered, and an attribute's
             Consider iteration runs to completion before the next begins,
             so all members other than [a] are finalized — the aggregate
             already covers everyone else: O(1) instead of O(|lhs|) lubs. *)
          agg.(k)
        else
          (* Some lhs members are still provisional (bounds mode evaluates
             complex constraints before all members are labeled): fold just
             those on top of the aggregate.  [done_] coincides with
             "finalized" for every attribute except [a] itself, which the
             fold skips explicitly. *)
          Array.fold_left
            (fun acc a' ->
              if a' = a || done_.(a') then acc else lub acc lam.(a'))
            agg.(k) c.lhs
      in
      if check_aggregate then begin
        let reference = lubothers_reference a c in
        if not (L.equal lat reference lubothers) then
          invalid_arg
            (Printf.sprintf
               "Solver: incremental lhs-lub aggregate diverged from the \
                reference fold at attribute %s"
               (Problem.attr_name prob a))
      end;
      let target = rhs_level c in
      match residual with
      | Some r -> r lat ~target ~others:lubothers
      | None ->
          if leq target lubothers then bottom
          else begin
            (* Descend one cover at a time; stop when no direct descendant
               of [last] keeps the constraint satisfiable. *)
            let last = ref lam.(a) in
            let continue = ref true in
            while !continue do
              match
                List.find_opt
                  (fun l' -> leq target (lub l' lubothers))
                  (L.covers_below lat !last)
              with
              | Some l' -> last := l'
              | None -> continue := false
            done;
            !last
          end
    in
    (* TRY(A, l): propagate the candidate lowering λ(A) := l forward through
       the not-yet-done part of the constraint graph.  Returns the set of
       simultaneous lowerings that keeps every constraint satisfied, or
       None if some constraint with a finalized right-hand side breaks. *)
    let try_lower a0 l0 =
      stats.Instr.try_calls <- stats.Instr.try_calls + 1;
      let tocheck = Array.make n None and tolower = Array.make n None in
      let queue = Queue.create () in
      tocheck.(a0) <- Some l0;
      Queue.push a0 queue;
      let touched = ref [ a0 ] in
      (* [touched] lets us read the final Tolower cheaply. *)
      let enqueue b lvl =
        if tocheck.(b) = None && tolower.(b) = None then touched := b :: !touched;
        tocheck.(b) <- Some lvl;
        Queue.push b queue
      in
      try
        while not (Queue.is_empty queue) do
          check_fine ();
          let x = Queue.pop queue in
          match tocheck.(x) with
          | None -> () (* stale entry: the pair was moved or replaced *)
          | Some lx ->
              tocheck.(x) <- None;
              tolower.(x) <- Some lx;
              stats.Instr.try_iterations <- stats.Instr.try_iterations + 1;
              List.iter
                (fun ci ->
                  stats.Instr.constraint_checks <-
                    stats.Instr.constraint_checks + 1;
                  let c = csts.(ci) in
                  let level =
                    Array.fold_left
                      (fun acc a'' ->
                        match tolower.(a'') with
                        | Some l'' -> lub acc l''
                        | None -> lub acc lam.(a''))
                      bottom c.lhs
                  in
                  if rhs_done c then begin
                    if not (leq (rhs_level c) level) then raise Try_failed
                  end
                  else
                    match c.rhs with
                    | Problem.Rlevel _ -> assert false
                    | Problem.Rattr b ->
                        if not (leq lam.(b) level) then begin
                          let newlevel = glb lam.(b) level in
                          let pending =
                            match tolower.(b) with
                            | Some l'' -> Some (`Lower, l'')
                            | None -> (
                                match tocheck.(b) with
                                | Some l'' -> Some (`Check, l'')
                                | None -> None)
                          in
                          match pending with
                          | None -> enqueue b newlevel
                          | Some (where, l'') ->
                              if not (leq l'' newlevel) then begin
                                (* The recorded lowering and the one now
                                   required are incomparable (or ours is
                                   lower): the attribute must end below
                                   both, i.e. at their glb. *)
                                let nl = glb l'' newlevel in
                                (match where with
                                | `Lower -> tolower.(b) <- None
                                | `Check -> ());
                                enqueue b nl
                              end
                          (* Otherwise the pending lowering already implies
                             satisfaction; leave it alone. *)
                        end)
                prob.Problem.constr_of.(x)
        done;
        Some
          (List.filter_map
             (fun x ->
               match tolower.(x) with Some l -> Some (x, l) | None -> None)
             !touched)
      with Try_failed -> None
    in
    (* BIGLOOP. *)
    let attr_name = Problem.attr_name prob in
    (* BigLoop may process the priority sets (= SCCs) in any order that
       labels every right-hand side before its left-hand sides — i.e. any
       sink-first topological order of the condensation.  The default is
       decreasing priority, as in the paper.  An upgrade preference picks a
       different valid order: the attribute that absorbs a complex
       constraint's upgrade is the last of its lhs to be labeled, so sets
       and, within a set, attributes holding low-preference attributes are
       scheduled first and high-preference ones last. *)
    let member_key =
      match upgrade_preference with
      | None -> fun a -> (0, a)
      | Some pref -> fun a -> (pref (Problem.attr_name prob a), a)
    in
    let compute_set_order () =
      match upgrade_preference with
      | None ->
          List.init prio.Priorities.max_priority (fun i ->
              prio.Priorities.max_priority - i)
      | Some pref ->
          (* Kahn over the condensation, following edges lhs-set → rhs-set
             backward: a set is available once every set it depends on
             (reachable via constraints) is labeled.  Among available sets,
             take the one holding the least-preferred attribute first. *)
          let np = prio.Priorities.max_priority in
          let module IS = Set.Make (Int) in
          let out = Array.make (np + 1) IS.empty in
          let into = Array.make (np + 1) IS.empty in
          Array.iter
            (fun (c : _ Problem.cst) ->
              match c.rhs with
              | Problem.Rlevel _ -> ()
              | Problem.Rattr b ->
                  let pb = prio.Priorities.priority.(b) in
                  Array.iter
                    (fun a ->
                      let pa = prio.Priorities.priority.(a) in
                      if pa <> pb then begin
                        out.(pa) <- IS.add pb out.(pa);
                        into.(pb) <- IS.add pa into.(pb)
                      end)
                    c.lhs)
            csts;
          let set_key p =
            Array.fold_left
              (fun acc a -> min acc (pref (Problem.attr_name prob a), a))
              (max_int, max_int)
              prio.Priorities.sets.(p - 1)
          in
          let order = ref [] in
          let available =
            ref
              (List.filter
                 (fun p -> IS.is_empty out.(p))
                 (List.init np (fun i -> i + 1)))
          in
          for _ = 1 to np do
            match
              List.sort
                (fun p q -> compare (set_key p) (set_key q))
                !available
            with
            | [] -> assert false
            | p :: rest ->
                order := p :: !order;
                available := rest;
                IS.iter
                  (fun q ->
                    out.(q) <- IS.remove p out.(q);
                    if IS.is_empty out.(q) then available := q :: !available)
                  into.(p)
          done;
          List.rev !order
    in
    let set_order =
      if tracing then
        Trace.with_span ~cat:"solver" "schedule" compute_set_order
      else compute_set_order ()
    in
    if tracing then Trace.begin_span ~cat:"solver" "bigloop";
    List.iter
      (fun p ->
      let members = Array.copy prio.Priorities.sets.(p - 1) in
      Array.sort (fun a b -> compare (member_key a) (member_key b)) members;
      (* A span per non-trivial priority set (= SCC subject to forward
         lowering); singleton sets are far too numerous on acyclic inputs
         to each deserve a span of their own. *)
      let scc_span = tracing && Array.length members > 1 in
      if scc_span then
        Trace.begin_span ~cat:"solver"
          ~args:
            [ ("priority", Trace.Int p); ("size", Trace.Int (Array.length members)) ]
          "scc";
      Array.iter
        (fun a ->
          if skip.(a) then ()
          else begin
          check_fine ();
          on_event (Consider { attr = attr_name a; priority = p });
          let t_attr0 = if tracing then Clock.now_ns () else 0L in
          done_.(a) <- true;
          let l = ref bottom in
          List.iter
            (fun ci ->
              let c = csts.(ci) in
              let complex = prob.Problem.complex.(ci) in
              if complex then unlabeled.(ci) <- unlabeled.(ci) - 1;
              if rhs_done c then begin
                if not complex then l := lub !l (rhs_level c)
                else if unlabeled.(ci) = 0 || bounds_mode then
                  l := lub !l (minlevel a ci c)
              end
              else done_.(a) <- false)
            prob.Problem.constr_of.(a);
          if done_.(a) then begin
            lam.(a) <- !l;
            finalize a;
            (* Whether the scan was a back-propagation is only known now,
               so the span is emitted retroactively from the timestamp
               taken before the scan. *)
            if tracing then
              Trace.span_at ~start_ns:t_attr0 ~end_ns:(Clock.now_ns ())
                ~cat:"solver"
                ~args:
                  [ ("attr", Trace.Str (attr_name a)); ("priority", Trace.Int p) ]
                "back_propagate";
            (match m with
            | Some (back, _, _) -> Metrics.incr back
            | None -> ());
            on_event (Back_assigned { attr = attr_name a; level = !l })
          end
          else begin
            if tracing then begin
              Trace.span_at ~start_ns:t_attr0 ~end_ns:(Clock.now_ns ())
                ~cat:"solver"
                ~args:[ ("attr", Trace.Str (attr_name a)) ]
                "minlevel_scan";
              Trace.begin_span ~cat:"solver"
                ~args:
                  [ ("attr", Trace.Str (attr_name a)); ("priority", Trace.Int p) ]
                "try_lower"
            end;
            let tries0 = stats.Instr.try_calls
            and iters0 = stats.Instr.try_iterations in
            (* Forward lowering through the cycle: DSet holds the maximal
               levels strictly below λ(A) that still dominate the lower
               bound l — exactly the covers of λ(A) dominating l. *)
            let dset () =
              List.filter (fun l' -> leq !l l') (L.covers_below lat lam.(a))
            in
            let ds = ref (dset ()) in
            let continue = ref true in
            while !continue do
              match !ds with
              | [] -> continue := false
              | l'' :: rest -> (
                  ds := rest;
                  match try_lower a l'' with
                  | Some lowers ->
                      List.iter (fun (a', l') -> lam.(a') <- l') lowers;
                      on_event
                        (Try_lower
                           {
                             attr = attr_name a;
                             target = l'';
                             lowered =
                               Some
                                 (List.map
                                    (fun (a', l') -> (attr_name a', l'))
                                    lowers);
                           });
                      ds := dset ()
                  | None ->
                      on_event
                        (Try_lower
                           { attr = attr_name a; target = l''; lowered = None }))
            done;
            done_.(a) <- true;
            finalize a;
            let try_iters = stats.Instr.try_iterations - iters0 in
            if tracing then
              Trace.end_span ~cat:"solver"
                ~args:
                  [
                    ("tries", Trace.Int (stats.Instr.try_calls - tries0));
                    ("iterations", Trace.Int try_iters);
                  ]
                "try_lower";
            (match m with
            | Some (_, fwd, iters_h) ->
                Metrics.incr fwd;
                Metrics.observe iters_h try_iters
            | None -> ());
            on_event (Finalized { attr = attr_name a; level = lam.(a) })
          end
          end)
        members;
      if scc_span then Trace.end_span ~cat:"solver" "scc")
      set_order;
    (* A last look at the budget once the Bigloop completes: a clock warp
       (or hook charge) landing after the last amortized poll must still
       cancel the solve rather than let it return a full solution. *)
    check_final ();
    if tracing then begin
      Trace.end_span ~cat:"solver" "bigloop";
      Trace.end_span ~cat:"solver"
        ~args:
          [
            ("lub", Trace.Int stats.Instr.lub);
            ("leq", Trace.Int stats.Instr.leq);
            ("minlevel_calls", Trace.Int stats.Instr.minlevel_calls);
            ("try_calls", Trace.Int stats.Instr.try_calls);
          ]
        "solve"
    end;
    if metering then begin
      Metrics.incr (Metrics.counter "solver/solves");
      Metrics.observe
        (Metrics.histogram "solver/solve_ns")
        (Int64.to_int (Clock.elapsed_ns ~since:t_solve0))
    end;
    {
      levels = lam;
      assignment =
        List.init n (fun a -> (attr_name a, lam.(a)));
      stats;
    }

  (* A raising callback (residual, upgrade preference, on_event handler)
     aborts [solve_internal] with its "solve" / "bigloop" / "scc" /
     "try_lower" spans still open; close them on the way out so an exported
     trace keeps its B/E nesting even when a solve dies. *)
  let with_balanced_spans f =
    let depth = Trace.open_depth () in
    match f () with
    | s -> s
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Trace.unwind_to depth;
        Printexc.raise_with_backtrace e bt

  let solve ?(config = Config.default) ({ lat; _ } as problem) =
    with_balanced_spans (fun () ->
        solve_internal ~config
          ~init:(fun _ -> L.top lat)
          ~bounds_mode:false problem)

  let solve_incremental ?(config = Config.default) ~frozen
      ({ lat; _ } as problem) =
    with_balanced_spans (fun () ->
        solve_internal ~config ~frozen
          ~init:(fun _ -> L.top lat)
          ~bounds_mode:false problem)

  let reuse_priorities problem prob = { problem with prob }

  let find problem solution attr =
    match Problem.attr_id problem.prob attr with
    | Some a -> Some solution.levels.(a)
    | None -> None

  let satisfies { lat; prob; _ } levels =
    Problem.satisfies ~leq:(L.leq lat) ~lub:(L.lub lat) ~bottom:(L.bottom lat)
      prob
      (fun a -> levels.(a))

  type inconsistency =
    | Unknown_attr of string
    | Unsatisfiable of { cst : L.level Cst.t; bound : L.level }

  let pp_inconsistency lat ppf = function
    | Unknown_attr a ->
        Format.fprintf ppf "upper bound on unknown attribute %S" a
    | Unsatisfiable { cst; bound } ->
        Format.fprintf ppf
          "constraint %a cannot be satisfied: the left-hand side is capped at %a"
          (Cst.pp (L.pp_level lat))
          cst (L.pp_level lat) bound

  exception Inconsistent of inconsistency

  let derive_upper_bounds ({ lat; prob; _ } : problem) bounds =
    let n = Problem.n_attrs prob in
    let top = L.top lat in
    let ub = Array.make n top in
    try
      List.iter
        (fun (name, l) ->
          match Problem.attr_id prob name with
          | Some a -> ub.(a) <- L.glb lat ub.(a) l
          | None -> raise (Inconsistent (Unknown_attr name)))
        bounds;
      (* Push bounds through the graph to the greatest fixpoint: across a
         constraint, the rhs can be no higher than the lub of the lhs
         bounds. *)
      let queue = Queue.create () in
      Array.iteri (fun ci _ -> Queue.push ci queue) prob.Problem.csts;
      while not (Queue.is_empty queue) do
        let ci = Queue.pop queue in
        let c = prob.Problem.csts.(ci) in
        match c.rhs with
        | Problem.Rlevel _ -> ()
        | Problem.Rattr b ->
            let incoming =
              Array.fold_left
                (fun acc a -> L.lub lat acc ub.(a))
                (L.bottom lat) c.lhs
            in
            let nb = L.glb lat ub.(b) incoming in
            if not (L.equal lat nb ub.(b)) then begin
              ub.(b) <- nb;
              List.iter (fun cj -> Queue.push cj queue) prob.Problem.constr_of.(b)
            end
      done;
      (* Inconsistencies surface at security-level nodes: a level-rhs
         constraint whose lhs, even at its bounds, cannot reach the
         target. *)
      Array.iter
        (fun (c : _ Problem.cst) ->
          match c.rhs with
          | Problem.Rattr _ -> ()
          | Problem.Rlevel target ->
              let incoming =
                Array.fold_left
                  (fun acc a -> L.lub lat acc ub.(a))
                  (L.bottom lat) c.lhs
              in
              if not (L.leq lat target incoming) then
                raise
                  (Inconsistent
                     (Unsatisfiable
                        { cst = Problem.cst_to_source prob c; bound = incoming })))
        prob.Problem.csts;
      Ok ub
    with Inconsistent i -> Error i

  let solve_with_bounds ?(config = Config.default) problem bounds =
    match derive_upper_bounds problem bounds with
    | Error _ as e -> e
    | Ok ub ->
        Ok
          (with_balanced_spans (fun () ->
               solve_internal ~config
                 ~init:(fun a -> ub.(a))
                 ~bounds_mode:true problem))

  (* Transition wrappers for the pre-Config optional-argument API
     (deprecated in the mli; dropped after one release). *)
  let solve_args ?on_event ?residual ?upgrade_preference ?check_aggregate
      ?budget problem =
    solve
      ~config:
        (Config.make ?on_event ?residual ?upgrade_preference ?check_aggregate
           ?budget ())
      problem

  let solve_with_bounds_args ?on_event ?residual ?upgrade_preference
      ?check_aggregate ?budget problem bounds =
    solve_with_bounds
      ~config:
        (Config.make ?on_event ?residual ?upgrade_preference ?check_aggregate
           ?budget ())
      problem bounds
end
