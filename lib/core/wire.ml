module Json = Minup_obs.Json

type body =
  | Solution of { assignment : (string * string) list; stats : Instr.t option }
  | Fault of { fault : Fault.t; attempts : int; task : int option }
  | Infeasible of { detail : string }
  | Error of { detail : string }
  | Ack of { id : int option }

type t = { v : int; problem : string option; body : body }

let v1 ?problem body = { v = 1; problem; body }

let status t =
  match t.body with
  | Solution _ | Ack _ -> "ok"
  | Fault _ -> "fault"
  | Infeasible _ -> "infeasible"
  | Error _ -> "error"

let equal a b = a = b

let to_json t =
  let body_fields =
    match t.body with
    | Solution { assignment; stats } ->
        ( "solution",
          Json.Obj (List.map (fun (a, l) -> (a, Json.Str l)) assignment) )
        ::
        (match stats with
        | None -> []
        | Some st -> [ ("stats", Instr.to_json st) ])
    | Fault { fault; attempts; task } ->
        (match task with
        | None -> []
        | Some i -> [ ("task", Json.Num (float_of_int i)) ])
        @ [
            ("attempts", Json.Num (float_of_int attempts));
            ("fault", Fault.to_json fault);
          ]
    | Infeasible { detail } | Error { detail } -> [ ("detail", Json.Str detail) ]
    | Ack { id } -> (
        match id with
        | None -> []
        | Some i -> [ ("id", Json.Num (float_of_int i)) ])
  in
  Json.Obj
    (("v", Json.Num (float_of_int t.v))
    :: ("status", Json.Str (status t))
    :: ((match t.problem with
        | None -> []
        | Some p -> [ ("problem", Json.Str p) ])
       @ body_fields))

let as_int name j =
  match j with
  | Json.Num f when Float.is_integer f -> Stdlib.Ok (int_of_float f)
  | _ -> Stdlib.Error (Printf.sprintf "Wire.of_json: %S is not an integer" name)

let opt_int name doc =
  match Json.member name doc with
  | None -> Stdlib.Ok None
  | Some j -> Result.map Option.some (as_int name j)

let req_str name doc =
  match Json.member name doc with
  | Some (Json.Str s) -> Stdlib.Ok s
  | _ -> Stdlib.Error (Printf.sprintf "Wire.of_json: missing string %S" name)

let ( let* ) = Result.bind

let of_json doc =
  match doc with
  | Json.Obj _ -> (
      let* v =
        match Json.member "v" doc with
        | Some j -> as_int "v" j
        | None -> Stdlib.Error "Wire.of_json: missing version field \"v\""
      in
      if v <> 1 then
        Stdlib.Error (Printf.sprintf "Wire.of_json: unsupported version %d" v)
      else
        let* st = req_str "status" doc in
        let* problem =
          match Json.member "problem" doc with
          | None -> Stdlib.Ok None
          | Some (Json.Str p) -> Stdlib.Ok (Some p)
          | Some _ -> Stdlib.Error "Wire.of_json: \"problem\" is not a string"
        in
        let* body =
          match st with
          | "ok" -> (
              match Json.member "solution" doc with
              | Some (Json.Obj fields) ->
                  let* assignment =
                    List.fold_left
                      (fun acc (a, j) ->
                        let* acc = acc in
                        match j with
                        | Json.Str l -> Stdlib.Ok ((a, l) :: acc)
                        | _ ->
                            Stdlib.Error
                              (Printf.sprintf
                                 "Wire.of_json: level of %S is not a string" a))
                      (Stdlib.Ok []) fields
                  in
                  let assignment = List.rev assignment in
                  let* stats =
                    match Json.member "stats" doc with
                    | None -> Stdlib.Ok None
                    | Some j -> Result.map Option.some (Instr.of_json j)
                  in
                  Stdlib.Ok (Solution { assignment; stats })
              | Some _ ->
                  Stdlib.Error "Wire.of_json: \"solution\" is not an object"
              | None ->
                  let* id = opt_int "id" doc in
                  Stdlib.Ok (Ack { id }))
          | "fault" ->
              let* fault =
                match Json.member "fault" doc with
                | Some j -> Fault.of_json j
                | None -> Stdlib.Error "Wire.of_json: missing \"fault\""
              in
              let* attempts =
                match Json.member "attempts" doc with
                | Some j -> as_int "attempts" j
                | None -> Stdlib.Error "Wire.of_json: missing \"attempts\""
              in
              let* task = opt_int "task" doc in
              Stdlib.Ok (Fault { fault; attempts; task })
          | "infeasible" ->
              let* detail = req_str "detail" doc in
              Stdlib.Ok (Infeasible { detail })
          | "error" ->
              let* detail = req_str "detail" doc in
              Stdlib.Ok (Error { detail })
          | other ->
              Stdlib.Error
                (Printf.sprintf "Wire.of_json: unknown status %S" other)
        in
        Stdlib.Ok { v; problem; body })
  | _ -> Stdlib.Error "Wire.of_json: expected an object"
