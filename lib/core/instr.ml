type t = {
  mutable lub : int;
  mutable glb : int;
  mutable leq : int;
  mutable minlevel_calls : int;
  mutable try_calls : int;
  mutable try_iterations : int;
  mutable constraint_checks : int;
}

let create () =
  {
    lub = 0;
    glb = 0;
    leq = 0;
    minlevel_calls = 0;
    try_calls = 0;
    try_iterations = 0;
    constraint_checks = 0;
  }

let copy t = { t with lub = t.lub }

let add ~into t =
  into.lub <- into.lub + t.lub;
  into.glb <- into.glb + t.glb;
  into.leq <- into.leq + t.leq;
  into.minlevel_calls <- into.minlevel_calls + t.minlevel_calls;
  into.try_calls <- into.try_calls + t.try_calls;
  into.try_iterations <- into.try_iterations + t.try_iterations;
  into.constraint_checks <- into.constraint_checks + t.constraint_checks

let sum ts =
  let acc = create () in
  Array.iter (fun t -> add ~into:acc t) ts;
  acc

let lattice_ops t = t.lub + t.glb + t.leq

let pp ppf t =
  Format.fprintf ppf
    "lub=%d glb=%d leq=%d minlevel=%d try=%d try_iters=%d checks=%d" t.lub t.glb
    t.leq t.minlevel_calls t.try_calls t.try_iterations t.constraint_checks
