type t = {
  mutable lub : int;
  mutable glb : int;
  mutable leq : int;
  mutable minlevel_calls : int;
  mutable try_calls : int;
  mutable try_iterations : int;
  mutable constraint_checks : int;
}

let create () =
  {
    lub = 0;
    glb = 0;
    leq = 0;
    minlevel_calls = 0;
    try_calls = 0;
    try_iterations = 0;
    constraint_checks = 0;
  }

let copy t = { t with lub = t.lub }

let add ~into t =
  into.lub <- into.lub + t.lub;
  into.glb <- into.glb + t.glb;
  into.leq <- into.leq + t.leq;
  into.minlevel_calls <- into.minlevel_calls + t.minlevel_calls;
  into.try_calls <- into.try_calls + t.try_calls;
  into.try_iterations <- into.try_iterations + t.try_iterations;
  into.constraint_checks <- into.constraint_checks + t.constraint_checks

let sum ts =
  let acc = create () in
  Array.iter (fun t -> add ~into:acc t) ts;
  acc

let lattice_ops t = t.lub + t.glb + t.leq

(* Field (name, value) pairs in declaration order — the one order shared by
   [pp], [to_json] and [of_json]. *)
let to_alist t =
  [
    ("lub", t.lub);
    ("glb", t.glb);
    ("leq", t.leq);
    ("minlevel_calls", t.minlevel_calls);
    ("try_calls", t.try_calls);
    ("try_iterations", t.try_iterations);
    ("constraint_checks", t.constraint_checks);
  ]

let pp ppf t =
  Format.fprintf ppf
    "lub=%d glb=%d leq=%d minlevel=%d try=%d try_iters=%d checks=%d" t.lub t.glb
    t.leq t.minlevel_calls t.try_calls t.try_iterations t.constraint_checks

let to_json t =
  Minup_obs.Json.Obj
    (List.map
       (fun (k, v) -> (k, Minup_obs.Json.Num (float_of_int v)))
       (to_alist t))

let of_json j =
  let exception Bad of string in
  match j with
  | Minup_obs.Json.Obj _ -> (
      let get k =
        match Minup_obs.Json.member k j with
        | Some (Minup_obs.Json.Num f) when Float.is_integer f -> int_of_float f
        | Some _ -> raise (Bad (k ^ " is not an integer"))
        | None -> raise (Bad ("missing field " ^ k))
      in
      try
        Ok
          {
            lub = get "lub";
            glb = get "glb";
            leq = get "leq";
            minlevel_calls = get "minlevel_calls";
            try_calls = get "try_calls";
            try_iterations = get "try_iterations";
            constraint_checks = get "constraint_checks";
          }
      with Bad msg -> Error msg)
  | _ -> Error "expected an object"

let to_metrics t =
  List.iter
    (fun (k, v) -> Minup_obs.Metrics.(add (counter ("instr/" ^ k)) v))
    (to_alist t)
