(** Structured fault taxonomy for batch supervision.

    One task of a supervised batch ({!Engine.Make.solve_batch}) ends either
    in a solution or in a [Fault.t]: a value describing {e why} the task
    failed, precise enough to aggregate (per-kind metrics), render (CLI
    failure reports) and serialize (the [--failures-json] sink).  Faults are
    plain data — no lattice types, no exceptions — so every layer above the
    engine can pass them around freely.

    The four kinds mirror the supervision layer's failure sources:

    - {!Solver_error}: the solve raised an arbitrary exception (a buggy
      residual callback, a failed internal self-check, …);
    - {!Deadline_exceeded}: the task overran its per-task wall-clock budget
      and was cancelled cooperatively ({!Solver.Make.Cancelled});
    - {!Budget_exhausted}: the task overran its scheduling-step budget (the
      [N_C·H·B] worst case of Thm. 5.2 made finite);
    - {!Injected}: a fault planted on purpose by [Minup_faultsim] through
      the engine's instrumentation hooks, so supervision is testable. *)

type t =
  | Solver_error of { exn : string }
      (** [exn] is the [Printexc.to_string] rendering of the exception *)
  | Deadline_exceeded of { deadline_ms : int; elapsed_ms : float }
  | Budget_exhausted of { max_steps : int; steps : int }
  | Injected of { description : string }

(** Raised by fault-injection hooks ([Minup_faultsim]); the engine
    classifies it as {!Injected} rather than {!Solver_error}, so planted
    faults are distinguishable from real ones in reports and metrics. *)
exception Injection of string

(** Stable one-word kind name — ["solver_error"], ["deadline"],
    ["budget"] or ["injected"].  Used as the metrics-counter suffix and by
    tests comparing fault {e kinds} across runs whose timing payloads
    differ. *)
val label : t -> string

val pp : Format.formatter -> t -> unit

(** [{"kind": label, ...payload}] — the shape consumed by
    [--failures-json].  {!of_json} inverts it ([Error] on malformed
    documents); [elapsed_ms] is rounded to microseconds so the round-trip
    is exact. *)
val to_json : t -> Minup_obs.Json.t

val of_json : Minup_obs.Json.t -> (t, string) result
