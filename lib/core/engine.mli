(** Parallel batch-solving engine.

    Algorithm 3.1 solves one problem on one core; classification pipelines
    (schema sweeps, workload benchmarks, impact analyses over many candidate
    constraint sets) solve thousands of {e independent} problems.  The
    engine fans a batch of compiled problems out over OCaml 5 domains:
    workers claim problems off a shared atomic counter, so skewed problem
    sizes cannot idle a domain, and every result is stored at its input
    index, so the output is deterministic — [solutions.(i)] is exactly what
    [Solver.solve problems.(i)] returns, whatever the interleaving.

    Problems may share a lattice value: lattice state is read-only during
    solving except for {!Minup_lattice.Explicit}'s lub/glb memo, whose
    single-word slots are safe under unsynchronised concurrent use.

    There is no [?on_event] here: trace callbacks from concurrent solves
    would interleave nondeterministically.  Solve traced problems one at a
    time with {!Solver.Make.solve} — or use the structured tracer: with
    {!Minup_obs.Trace} enabled, every worker emits a [worker] span (with
    its solve count and cumulative queue-wait time) and a [solve_task] span
    per claimed problem on its own per-domain track, and with
    {!Minup_obs.Metrics} enabled the engine records per-worker solve
    counters ([engine/workerN/solves]) and the queue-wait distribution
    ([engine/queue_wait_ns]) for load-balance diagnosis.  Both are disabled
    by default and cost one branch per site when off. *)

(** [Domain.recommended_domain_count ()], floored at 1 — the default worker
    count. *)
val default_jobs : unit -> int

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  (** The solver instance the engine drives.  Compile problems and run
      sequential (or traced) solves through this module; its [problem] and
      [solution] types are the ones the batch API uses. *)
  module Solver : module type of Solver.Make (L)

  type report = {
    solutions : Solver.solution array;
        (** [solutions.(i)] solves [problems.(i)] *)
    stats : Instr.t;  (** component-wise sum over the whole batch *)
    jobs : int;  (** worker count actually used *)
  }

  (** [solve_batch ?residual ?upgrade_preference ?jobs problems] solves
      every problem and returns the results in input order.  [jobs]
      defaults to {!default_jobs}[ ()] and is clamped to the batch size;
      [jobs = 1] solves inline with no domain spawns.  [residual] and
      [upgrade_preference] are passed to every solve (see
      {!Solver.Make.solve}).  If a solve raises, the exception is re-raised
      (with its backtrace) after all workers finish.

      @raise Invalid_argument if [jobs < 1]. *)
  val solve_batch :
    ?residual:(L.t -> target:L.level -> others:L.level -> L.level) ->
    ?upgrade_preference:(string -> int) ->
    ?jobs:int ->
    Solver.problem array ->
    report
end
