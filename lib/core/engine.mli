(** Parallel batch-solving engine with per-task supervision.

    Algorithm 3.1 solves one problem on one core; classification pipelines
    (schema sweeps, workload benchmarks, impact analyses over many candidate
    constraint sets) solve thousands of {e independent} problems.  The
    engine fans a batch of compiled problems out over OCaml 5 domains:
    workers claim problems off a shared atomic counter, so skewed problem
    sizes cannot idle a domain, and every result is stored at its input
    index, so the output is deterministic — [solutions.(i)] is exactly what
    solving [problems.(i)] produces, whatever the interleaving.

    {b Supervision.}  Each task is isolated: a solve that raises, overruns
    its wall-clock deadline, or exhausts its scheduling-step budget yields
    [Error fault] {e at its own index} and nothing else — completed
    solutions elsewhere in the batch are never discarded.  A {!policy}
    configures the per-task deadline and step budget (enforced
    cooperatively by {!Solver.Make.solve}'s budget checks), bounded retries
    with capped exponential backoff and deterministic seeded jitter, and
    the failure mode: keep-going (the default — every task runs, faults
    are reported per index) or fail-fast ([fail_fast = true] — the pool
    stops claiming new tasks at the first fault and the {e lowest-index}
    error is re-raised with its original backtrace, deterministically in
    every interleaving).

    [Sys.Break] (SIGINT under [Sys.catch_break]) and [Out_of_memory] are
    never classified as task faults: they abort the pool and re-raise, so
    a user interrupt is not silently recorded as a batch failure.

    Problems may share a lattice value: lattice state is read-only during
    solving except for {!Minup_lattice.Explicit}'s lub/glb memo, whose
    single-word slots are safe under unsynchronised concurrent use.

    There is no [?on_event] here: trace callbacks from concurrent solves
    would interleave nondeterministically.  Solve traced problems one at a
    time with {!Solver.Make.solve} — or use the structured tracer: with
    {!Minup_obs.Trace} enabled, every worker emits a [worker] span (with
    its solve count and cumulative queue-wait time) and a [solve_task] span
    per attempt (tagged with its attempt number) on its own per-domain
    track, and with {!Minup_obs.Metrics} enabled the engine records
    per-worker solve counters ([engine/workerN/solves]), the queue-wait
    distribution ([engine/queue_wait_ns]), and the supervision counters
    [engine/retries], [engine/deadline_exceeded], [engine/budget_exhausted],
    [engine/injected] and [engine/solver_errors] (registered at batch start,
    so they report 0 rather than vanish).  All are disabled by default and
    cost one branch per site when off. *)

(** [Domain.recommended_domain_count ()], floored at 1 — the default worker
    count. *)
val default_jobs : unit -> int

(** Supervision policy, applied to every task of a batch. *)
type policy = {
  deadline_ms : int option;  (** per-task (per-attempt) wall-clock budget *)
  max_steps : int option;  (** per-task scheduling-step budget *)
  retries : int;  (** extra attempts after a failed one (0 = none) *)
  backoff_ms : int;
      (** base backoff before retry [k] is [backoff_ms · 2^(k-1)] … *)
  backoff_max_ms : int;  (** … capped here *)
  seed : int;
      (** seeds the deterministic backoff jitter (uniform in [0.5, 1) of
          the nominal delay, derived from (seed, task, attempt)) *)
  fail_fast : bool;
      (** stop claiming tasks at the first fault and re-raise the
          lowest-index error instead of returning a report *)
}

(** Keep-going, no deadline, no step budget, no retries
    ([backoff_ms = 1], [backoff_max_ms = 100], [seed = 0] so enabling
    retries alone gives sane pacing). *)
val default_policy : policy

(** A fault-injection hook (see [Minup_faultsim]): invoked once per solver
    scheduling event of the task it instruments, with the ability to burn
    budget steps ([charge]) or warp the budget's virtual clock forward
    ([warp_ms]) — or to raise {!Fault.Injection} outright.  Both [charge]
    and [warp_ms] are no-ops when the policy configures no budget. *)
type hook = charge:(int -> unit) -> warp_ms:(int -> unit) -> unit

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  (** The solver instance the engine drives.  Compile problems and run
      sequential (or traced) solves through this module; its [problem] and
      [solution] types are the ones the batch API uses. *)
  module Solver : module type of Solver.Make (L)

  type report = {
    solutions : (Solver.solution, Fault.t) result array;
        (** [solutions.(i)] is the outcome of [problems.(i)] — a solution,
            or the fault of its final attempt *)
    attempts : int array;  (** attempts made per task (≥ 1) *)
    stats : Instr.t;
        (** component-wise sum over the {e successful} solves *)
    jobs : int;  (** worker count actually used *)
    retries : int;  (** total retry attempts across the batch *)
    failed : int;  (** number of [Error] outcomes *)
  }

  (** The solutions of an all-[Ok] report, in input order.

      @raise Invalid_argument
        naming the first failed index if any task faulted. *)
  val ok_exn : report -> Solver.solution array

  (** [solve_batch ?residual ?upgrade_preference ?policy ?instrument ?jobs
      problems] solves every problem under [policy] (default
      {!default_policy}) and returns the per-task outcomes in input order.
      [jobs] defaults to {!default_jobs}[ ()] and is clamped to the batch
      size; [jobs = 1] solves inline with no domain spawns.  [residual]
      and [upgrade_preference] are passed to every solve (see
      {!Solver.Make.solve}).

      [instrument i] is consulted once per {e attempt} of task [i]; a
      [Some hook] plants the hook on that attempt's solver event stream
      (fault injection — see {!type-hook}).

      With [policy.fail_fast = true] the first fault aborts the batch: the
      faulting task's original exception is re-raised (with its
      backtrace), and it is deterministically the lowest-index fault of
      any interleaving.

      @raise Invalid_argument
        if [jobs < 1], [policy.retries < 0] or a backoff field is
        negative. *)
  val solve_batch :
    ?residual:(L.t -> target:L.level -> others:L.level -> L.level) ->
    ?upgrade_preference:(string -> int) ->
    ?policy:policy ->
    ?instrument:(int -> hook option) ->
    ?jobs:int ->
    Solver.problem array ->
    report
end
