(** Versioned response envelopes for the JSON-facing surfaces.

    Every machine-readable answer the tool emits — a [serve] response
    line, an entry of [batch --failures-json], a selfcheck repro
    descriptor — is one {!t}: a version tag, an optional problem name,
    and a body.  The JSON shape is
    [{"v": 1, "status": ..., ...body fields}], where [status] is one of
    ["ok"], ["fault"], ["infeasible"] or ["error"].  Consumers dispatch
    on [v] and [status] only; producers never hand-build response
    objects, so the three surfaces cannot drift apart.

    {!of_json} inverts {!to_json} exactly (the battery's [wire] property
    checks the round-trip through rendering and parsing), and rejects
    any version other than 1. *)

type body =
  | Solution of { assignment : (string * string) list; stats : Instr.t option }
      (** a successful solve: attribute -> level-string, in attribute-id
          order, plus optional operation counters *)
  | Fault of { fault : Fault.t; attempts : int; task : int option }
      (** a supervised task that kept failing; [task] is its batch index
          when the envelope describes one task of a batch *)
  | Infeasible of { detail : string }
      (** the instance admits no solution (conflicting lower bounds) *)
  | Error of { detail : string }
      (** the request itself is bad: parse error, unknown op, unknown
          session, … *)
  | Ack of { id : int option }
      (** a mutation was applied; [id] is the fresh constraint id for
          [add_constraint] *)

type t = { v : int; problem : string option; body : body }

(** Version-1 envelope. *)
val v1 : ?problem:string -> body -> t

(** The [status] string of the envelope: ["ok"] for {!Solution} and
    {!Ack}, ["fault"], ["infeasible"] or ["error"] for the others. *)
val status : t -> string

val equal : t -> t -> bool
val to_json : t -> Minup_obs.Json.t
val of_json : Minup_obs.Json.t -> (t, string) result
