(** Algorithm 3.1 — minimal classification generation.

    [Make (L)] instantiates the paper's algorithm over any lattice
    implementation.  Given a compiled constraint problem, {!Make.solve}
    computes a classification [λ : A → L] that satisfies every constraint
    and is pointwise minimal (Definition 2.2): no attribute can be assigned
    a strictly lower level (even jointly with others) while preserving
    satisfaction.

    The implementation follows the paper's structure exactly:

    - priorities are computed by {!Minup_constraints.Priorities} (the
      two-pass DFS of [Main]);
    - [Bigloop] walks priority sets in decreasing order; attributes whose
      constraints all have finalized right-hand sides are labeled by
      {e back-propagation} (one [lub] per simple constraint, one [Minlevel]
      per complex constraint whose turn has come);
    - attributes entangled in constraint cycles are labeled by {e forward
      lowering}: starting from their current (initially [⊤]) level, each
      cover below is attempted via [Try], which propagates the candidate
      lowering through the cycle and either fails or returns a consistent
      set of simultaneous lowerings.

    Determinism: priority sets are processed in ascending attribute-id
    (declaration) order, lattice covers in the order {!Lattice_intf.S.covers_below}
    yields them, and [Try]'s worklist is FIFO — identical inputs produce
    identical classifications and traces. *)

(** {2 Cooperative cancellation budgets}

    A budget bounds a single solve: a wall-clock deadline, a cap on
    {e scheduling steps} (one per [Bigloop] attribute visit, one per [Try]
    worklist pop — the [N_C·H·B] units of Thm. 5.2 made finite), or both.
    The solver checks the budget once per scheduling iteration and, when it
    is exceeded, raises {!Make.Cancelled} carrying the partial assignment
    computed so far.  Budgets are mutable single-use values: create one per
    solve.

    The clock is injectable ([now], defaulting to
    {!Minup_obs.Clock.now_ns}) so tests and the fault simulator can warp
    time deterministically instead of sleeping. *)

type budget

(** Raises [Invalid_argument] if either bound is negative.  A budget with
    neither bound never cancels but still counts steps (useful with
    {!charge}-based fault injection, which needs [max_steps] to trip). *)
val budget :
  ?deadline_ms:int -> ?max_steps:int -> ?now:(unit -> int64) -> unit -> budget

(** [charge b k] burns [k] steps of the budget without doing work
    (saturating, no-op for [k <= 0]).  The fault simulator's budget-blowout
    faults are exactly this; the cancellation itself happens at the
    solver's next check. *)
val charge : budget -> int -> unit

module Make (L : Minup_lattice.Lattice_intf.S) : sig
  type problem = private {
    lat : L.t;
    prob : L.level Minup_constraints.Problem.t;
    prio : Minup_constraints.Priorities.t;
  }

  (** Compile constraints into an indexed problem (see
      {!Minup_constraints.Problem.compile}) and precompute priorities. *)
  val compile :
    lattice:L.t ->
    ?attrs:string list ->
    L.level Minup_constraints.Cst.t list ->
    (problem, Minup_constraints.Problem.error) result

  val compile_exn :
    lattice:L.t ->
    ?attrs:string list ->
    L.level Minup_constraints.Cst.t list ->
    problem

  (** Trace events, emitted in execution order; replaying them reconstructs
      the classification table of Fig. 2(b). *)
  type event =
    | Consider of { attr : string; priority : int }
        (** [Bigloop] turns to this attribute *)
    | Back_assigned of { attr : string; level : L.level }
        (** labeled by back-propagation *)
    | Try_lower of {
        attr : string;
        target : L.level;
        lowered : (string * L.level) list option;
      }
        (** a forward-lowering attempt; [None] means the attempt failed *)
    | Finalized of { attr : string; level : L.level }
        (** a cyclic attribute's level will no longer change *)

  type solution = {
    levels : L.level array;  (** by attribute id *)
    assignment : (string * L.level) list;  (** by attribute name *)
    stats : Instr.t;
  }

  type cancel_reason =
    | Deadline of { deadline_ms : int; elapsed_ms : float }
    | Steps of { max_steps : int }

  (** What a cancelled solve had already established.  [partial] lists the
      attributes whose levels were final at cancellation (in declaration
      order); levels of unfinished attributes are meaningless and are not
      reported. *)
  type progress = {
    partial : (string * L.level) list;
    n_finalized : int;
    n_attrs : int;
    steps : int;
  }

  (** Raised by {!solve} / {!solve_with_bounds} when the {!type-budget} is
      exceeded.  Cancellation is cooperative: the check runs once per
      scheduling iteration, so a raising callback or a stuck lattice
      operation is not interrupted — but every path through the algorithm
      passes a check at least once per attribute.  Deadline checks are
      amortized — the clock is polled every 64 scheduling steps, plus one
      unconditional poll when the [Bigloop] completes — so [elapsed_ms]
      can overshoot the deadline slightly, and a solve shorter than 64
      steps only notices its deadline at that final poll. *)
  exception Cancelled of { reason : cancel_reason; progress : progress }

  (** {2 Configuration}

      Every knob of a solve — the event stream, the lattice shortcuts, the
      schedule bias, the self-check toggle, the budget — lives in one
      {!Config.t} record instead of a trail of optional arguments.  Build
      one with {!Config.make} (or update {!Config.default}) and pass it to
      {!solve} / {!solve_with_bounds} / {!solve_incremental}. *)

  module Config : sig
    type t = {
      on_event : (event -> unit) option;
          (** trace callback, invoked in execution order *)
      residual : (L.t -> target:L.level -> others:L.level -> L.level) option;
          (** replaces the [Minlevel] lattice walk with a direct
              computation of the least level [m] such that
              [lub m others ⊒ target] (footnote 4; see e.g.
              {!Minup_lattice.Compartment.residual}).  It must agree with
              that specification or minimality is lost. *)
      upgrade_preference : (string -> int) option;
          (** biases {e which} minimal solution is returned: when a complex
              constraint leaves a choice of attribute to upgrade,
              attributes with a higher preference value are favored as
              upgrade targets (§3.1 notes the particular minimal solution
              depends on the order of constraint evaluation; this exposes
              that order).  The preference selects among the valid
              sink-first schedules of the SCC condensation, so the result
              is a minimal solution either way; it is best-effort where
              the constraint structure forces an order. *)
      check_aggregate : bool;
          (** cross-check, at every [Minlevel] call, the incremental
              lhs-lub aggregate against the reference refold of the whole
              left-hand side, raising [Invalid_argument] on the first
              divergence.  The reference fold is uninstrumented, so the
              returned {!Instr} counters are unaffected.  For tests. *)
      budget : budget option;
          (** bounds the solve (see {!type-budget}); the solve raises
              {!Cancelled} if it is exceeded.  Without a budget the hot
              path is unchanged — no clock reads, no step counting, and
              bit-identical {!Instr} counters. *)
    }

    (** No events, no residual, no preference, no self-check, no budget. *)
    val default : t

    val make :
      ?on_event:(event -> unit) ->
      ?residual:(L.t -> target:L.level -> others:L.level -> L.level) ->
      ?upgrade_preference:(string -> int) ->
      ?check_aggregate:bool ->
      ?budget:budget ->
      unit ->
      t
  end

  (** [solve ?config problem] — Algorithm 3.1 under [config]
      (default {!Config.default}). *)
  val solve : ?config:Config.t -> problem -> solution

  (** [solve_incremental ?config ~frozen problem] — like {!solve}, but
      attributes for which [frozen] returns [Some l] are pinned at [l]:
      they are finalized up front (feeding the lhs-lub aggregates of their
      complex constraints), skipped by the [Bigloop], and emit no events.

      This is the re-solve primitive behind [Minup_session]: the caller
      promises that every frozen level is exactly what a full {!solve} of
      this problem would compute, that the non-frozen attributes are
      dependency-closed (no frozen attribute's level depends on a
      non-frozen one) and acyclic.  Under that contract the result is
      bit-identical in [levels] to a full solve; outside it the result is
      unspecified.  The returned [stats] count only the work actually
      performed. *)
  val solve_incremental :
    ?config:Config.t -> frozen:(int -> L.level option) -> problem -> solution

  (** [reuse_priorities problem prob'] rebuilds the compiled problem around
      [prob'] while keeping the already-computed priorities — sound only
      when the constraint {e graph} is unchanged (same attributes, same
      lhs → rhs-attribute edges), e.g. when only level right-hand sides
      were replaced via {!Minup_constraints.Problem.set_rlevel}.
      Unchecked: with a structurally different [prob'] the solve result is
      unspecified. *)
  val reuse_priorities :
    problem -> L.level Minup_constraints.Problem.t -> problem

  (** Transition wrapper for the pre-{!Config} optional-argument API;
      removed after one release. *)
  val solve_args :
    ?on_event:(event -> unit) ->
    ?residual:(L.t -> target:L.level -> others:L.level -> L.level) ->
    ?upgrade_preference:(string -> int) ->
    ?check_aggregate:bool ->
    ?budget:budget ->
    problem ->
    solution
  [@@ocaml.deprecated "use solve ?config with Solver.Make(L).Config.t"]

  (** [find problem solution attr]. *)
  val find : problem -> solution -> string -> L.level option

  (** [satisfies problem levels] — do the levels satisfy every constraint? *)
  val satisfies : problem -> L.level array -> bool

  (** {2 Upper-bound constraints (§6)} *)

  type inconsistency =
    | Unknown_attr of string
        (** an upper bound names an attribute absent from the problem *)
    | Unsatisfiable of {
        cst : L.level Minup_constraints.Cst.t;
        bound : L.level;
      }
        (** a level-rhs constraint whose left-hand side, even at its derived
            upper bounds ([bound] is their lub), cannot dominate the target *)

  val pp_inconsistency :
    L.t -> Format.formatter -> inconsistency -> unit

  (** The preprocessing pass: push upper bounds through the constraint
      graph ([glb] where bounds meet, [lub] across complex left-hand
      sides), returning each attribute's maximum allowed level, or the
      first inconsistency. *)
  val derive_upper_bounds :
    problem -> (string * L.level) list -> (L.level array, inconsistency) result

  (** Solve under upper-bound constraints: preprocess, then run the
      modified [Bigloop] starting from the derived bounds (which must
      invoke [Minlevel] for every attribute of every complex constraint,
      as satisfaction can no longer be assumed while a left-hand side
      neighbour is unlabeled). *)
  val solve_with_bounds :
    ?config:Config.t ->
    problem ->
    (string * L.level) list ->
    (solution, inconsistency) result

  (** Transition wrapper for the pre-{!Config} optional-argument API;
      removed after one release. *)
  val solve_with_bounds_args :
    ?on_event:(event -> unit) ->
    ?residual:(L.t -> target:L.level -> others:L.level -> L.level) ->
    ?upgrade_preference:(string -> int) ->
    ?check_aggregate:bool ->
    ?budget:budget ->
    problem ->
    (string * L.level) list ->
    (solution, inconsistency) result
  [@@ocaml.deprecated
    "use solve_with_bounds ?config with Solver.Make(L).Config.t"]
end
