(** Operation counters.

    The complexity experiments (Thm. 5.2 reproduction) report counted
    lattice operations and constraint checks rather than relying on wall
    time alone; the counters match the cost model of the paper's analysis,
    where [c] is the cost of one lub/glb. *)

type t = {
  mutable lub : int;
  mutable glb : int;
  mutable leq : int;
  mutable minlevel_calls : int;
  mutable try_calls : int;
  mutable try_iterations : int;  (** pairs processed across all [Try] runs *)
  mutable constraint_checks : int;
}

val create : unit -> t
val copy : t -> t

(** [add ~into t] accumulates [t]'s counters into [into]. *)
val add : into:t -> t -> unit

(** Component-wise total of a batch of counters (e.g. one per solve when
    aggregating a {!Engine} run). *)
val sum : t array -> t

(** Total lattice operations ([lub + glb + leq]). *)
val lattice_ops : t -> int

(** Counters as (name, value) pairs, in field declaration order. *)
val to_alist : t -> (string * int) list

(** Prints every counter in field declaration order:
    [lub=_ glb=_ leq=_ minlevel=_ try=_ try_iters=_ checks=_]
    — [try_iterations] before [constraint_checks], matching the record. *)
val pp : Format.formatter -> t -> unit

(** JSON object with the counters as integer fields, in the same order as
    {!pp}.  [of_json] is its inverse (accepts any field order, rejects
    missing or non-integer fields). *)
val to_json : t -> Minup_obs.Json.t

val of_json : Minup_obs.Json.t -> (t, string) result

(** Absorb the counters into the {!Minup_obs.Metrics} registry, adding each
    field into the counter [instr/<field>]. *)
val to_metrics : t -> unit
