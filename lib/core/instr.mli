(** Operation counters.

    The complexity experiments (Thm. 5.2 reproduction) report counted
    lattice operations and constraint checks rather than relying on wall
    time alone; the counters match the cost model of the paper's analysis,
    where [c] is the cost of one lub/glb. *)

type t = {
  mutable lub : int;
  mutable glb : int;
  mutable leq : int;
  mutable minlevel_calls : int;
  mutable try_calls : int;
  mutable try_iterations : int;  (** pairs processed across all [Try] runs *)
  mutable constraint_checks : int;
}

val create : unit -> t
val copy : t -> t

(** [add ~into t] accumulates [t]'s counters into [into]. *)
val add : into:t -> t -> unit

(** Component-wise total of a batch of counters (e.g. one per solve when
    aggregating a {!Engine} run). *)
val sum : t array -> t

(** Total lattice operations ([lub + glb + leq]). *)
val lattice_ops : t -> int

val pp : Format.formatter -> t -> unit
