/* Monotonic clock for tracing and latency metrics.  CLOCK_MONOTONIC never
   jumps backward on NTP adjustments, which keeps span begin/end pairs and
   latency deltas well-formed. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value minup_obs_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL +
                         (int64_t)ts.tv_nsec);
}
