type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- rendering ------------------------------------------------------ *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s

let add_num buf v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.bprintf buf "%.0f" v
  else begin
    (* Shortest decimal that round-trips: 15 digits when they suffice,
       17 otherwise (IEEE 754 double). *)
    let short = Printf.sprintf "%.15g" v in
    if float_of_string short = v then Buffer.add_string buf short
    else Printf.bprintf buf "%.17g" v
  end

let to_string ?(pretty = false) j =
  let buf = Buffer.create 256 in
  let indent d =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * d) ' ')
    end
  in
  let rec go d = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> add_num buf v
    | Str s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (d + 1);
            go (d + 1) item)
          items;
        indent d;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (d + 1);
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (d + 1) v)
          fields;
        indent d;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Fail of int * string

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            (* Surrogate halves are not code points: a high half must be
               followed by a low half (together one astral code point), and
               anything else would make [add_utf8] emit invalid UTF-8. *)
            let cp = hex4 () in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              if
                !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail "high surrogate not followed by a low surrogate";
                add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else fail "unpaired high surrogate"
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then
              fail "unpaired low surrogate"
            else add_utf8 buf cp
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  (* The full JSON number grammar, enforced by the scanner itself:
     [float_of_string_opt] is far laxer (it accepts "1.", "-.5", "01",
     hex, underscores), so validation cannot be delegated to it. *)
  let parse_number () =
    let start = !pos in
    let digit c = c >= '0' && c <= '9' in
    let digits1 what =
      let d0 = !pos in
      while !pos < n && digit s.[!pos] do
        incr pos
      done;
      if !pos = d0 then fail ("expected digit " ^ what)
    in
    if peek () = Some '-' then incr pos;
    (match peek () with
    | Some '0' ->
        incr pos;
        if !pos < n && digit s.[!pos] then fail "leading zero in number"
    | Some c when digit c -> digits1 "in number"
    | _ -> fail "expected digit in number");
    if peek () = Some '.' then begin
      incr pos;
      digits1 "after '.'"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits1 "in exponent"
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let members = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                go ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                go ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Fail (p, m) -> Error (Printf.sprintf "%s at offset %d" m p)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
