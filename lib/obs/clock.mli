(** Monotonic time source shared by {!Trace} and {!Metrics}.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] through a C stub: immune to
    wall-clock adjustments, comparable across domains of one process, and
    cheap enough to call on instrumentation hot paths. *)

(** Nanoseconds since an arbitrary (per-boot) origin.  Only differences are
    meaningful. *)
val now_ns : unit -> int64

(** [elapsed_ns ~since] is [now_ns () - since]. *)
val elapsed_ns : since:int64 -> int64

(** Nanoseconds to the microseconds used by the Chrome trace-event format. *)
val ns_to_us : int64 -> float
