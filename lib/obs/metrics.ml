type counter = { cname : string; cv : int Atomic.t }
type gauge = { gname : string; gv : float Atomic.t }

let n_buckets = 63

type histogram = {
  hname : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  vmin : int Atomic.t;  (* max_int while empty *)
  vmax : int Atomic.t;  (* min_int while empty *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let lock = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " registered as a different metric kind")

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Counter c) -> c
      | Some _ -> kind_error name
      | None ->
          let c = { cname = name; cv = Atomic.make 0 } in
          Hashtbl.replace table name (Counter c);
          c)

let incr c = Atomic.incr c.cv
let add c n = ignore (Atomic.fetch_and_add c.cv n)
let counter_value c = Atomic.get c.cv

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Gauge g) -> g
      | Some _ -> kind_error name
      | None ->
          let g = { gname = name; gv = Atomic.make 0. } in
          Hashtbl.replace table name (Gauge g);
          g)

let set g v = Atomic.set g.gv v
let gauge_value g = Atomic.get g.gv

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Histogram h) -> h
      | Some _ -> kind_error name
      | None ->
          let h =
            {
              hname = name;
              buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
              count = Atomic.make 0;
              sum = Atomic.make 0;
              vmin = Atomic.make max_int;
              vmax = Atomic.make min_int;
            }
          in
          Hashtbl.replace table name (Histogram h);
          h)

(* Bucket 0 holds the value 0; bucket k >= 1 holds [2^(k-1), 2^k), i.e.
   k = floor(log2 v) + 1, capped at the last bucket. *)
let bucket_index v =
  if v <= 0 then 0
  else begin
    let k = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr k;
      x := !x lsr 1
    done;
    min !k (n_buckets - 1)
  end

let bucket_lo k = if k = 0 then 0. else 2. ** float_of_int (k - 1)
let bucket_hi k = if k = 0 then 1. else 2. ** float_of_int k

let rec cas_extremum better cell v =
  let cur = Atomic.get cell in
  if better v cur && not (Atomic.compare_and_set cell cur v) then
    cas_extremum better cell v

let observe h v =
  let v = if v < 0 then 0 else v in
  Atomic.incr h.buckets.(bucket_index v);
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum v);
  cas_extremum ( < ) h.vmin v;
  cas_extremum ( > ) h.vmax v

let histogram_count h = Atomic.get h.count

let percentile h q =
  let total = Atomic.get h.count in
  if total = 0 then 0.
  else begin
    let target = Float.max 1. (q *. float_of_int total) in
    let cum = ref 0. in
    let result = ref (float_of_int (Atomic.get h.vmax)) in
    let found = ref false in
    for k = 0 to n_buckets - 1 do
      if not !found then begin
        let c = float_of_int (Atomic.get h.buckets.(k)) in
        if c > 0. && !cum +. c >= target then begin
          let lo = bucket_lo k and hi = bucket_hi k in
          result := lo +. ((hi -. lo) *. ((target -. !cum) /. c));
          found := true
        end;
        cum := !cum +. c
      end
    done;
    Float.min
      (float_of_int (Atomic.get h.vmax))
      (Float.max (float_of_int (Atomic.get h.vmin)) !result)
  end

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.cv 0
          | Gauge g -> Atomic.set g.gv 0.
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.count 0;
              Atomic.set h.sum 0;
              Atomic.set h.vmin max_int;
              Atomic.set h.vmax min_int)
        table)

let clear () = locked (fun () -> Hashtbl.reset table)

let dump () =
  let items = locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []) in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let histogram_summary h =
  let count = Atomic.get h.count in
  let zero_if_empty v = if count = 0 then 0 else v in
  ( count,
    Atomic.get h.sum,
    zero_if_empty (Atomic.get h.vmin),
    zero_if_empty (Atomic.get h.vmax),
    percentile h 0.50,
    percentile h 0.90,
    percentile h 0.99 )

let pp ppf () =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Format.fprintf ppf "counter %s %d@." name (Atomic.get c.cv)
      | Gauge g -> Format.fprintf ppf "gauge %s %g@." name (Atomic.get g.gv)
      | Histogram h ->
          let count, sum, mn, mx, p50, p90, p99 = histogram_summary h in
          Format.fprintf ppf
            "histogram %s count=%d sum=%d min=%d max=%d p50=%.0f p90=%.0f \
             p99=%.0f@."
            name count sum mn mx p50 p90 p99)
    (dump ())

let to_json () =
  let items = dump () in
  let pick f = List.filter_map f items in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, Counter c -> Some (name, Json.Num (float_of_int (Atomic.get c.cv)))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function
            | name, Gauge g -> Some (name, Json.Num (Atomic.get g.gv))
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | name, Histogram h ->
                let count, sum, mn, mx, p50, p90, p99 = histogram_summary h in
                Some
                  ( name,
                    Json.Obj
                      [
                        ("count", Json.Num (float_of_int count));
                        ("sum", Json.Num (float_of_int sum));
                        ("min", Json.Num (float_of_int mn));
                        ("max", Json.Num (float_of_int mx));
                        ("p50", Json.Num p50);
                        ("p90", Json.Num p90);
                        ("p99", Json.Num p99);
                      ] )
            | _ -> None)) );
    ]
