(** Structured execution tracing in the Chrome trace-event format.

    Spans ([B]/[E] pairs) and instant events accumulate in {e per-domain}
    buffers — no lock on the emit path, no cross-domain interleaving — and
    export as a JSON document loadable in Perfetto ({:https://ui.perfetto.dev})
    or [chrome://tracing].  Each OCaml domain appears as its own track
    ([tid] = domain id).

    Tracing is {e disabled by default} and every emit function starts with
    a single load-and-branch on the global flag, so instrumentation left in
    hot paths costs one predictable branch when off.  Instrumentation must
    never perform counted work of its own: with tracing off, instrumented
    code is behaviourally identical to uninstrumented code (the
    [Instr]-counter identity checked by [dev/counters_check.ml]).

    Typical lifecycle:
    {[
      Trace.start ();
      (* ... run the traced workload ... *)
      Trace.stop ();
      Trace.write "trace.json"
    ]} *)

(** Span/event argument values, rendered into the event's [args] object. *)
type arg = Int of int | Float of float | Str of string | Bool of bool

(** One recorded event (exposed for tests and custom sinks). *)
type event = {
  ph : char;  (** 'B', 'E' or 'i' *)
  name : string;
  cat : string;
  ts_ns : int64;
  tid : int;  (** domain id of the emitting domain *)
  args : (string * arg) list;
}

val enabled : unit -> bool

(** Drop all previously collected events and enable collection. *)
val start : unit -> unit

(** Disable collection; collected events remain available for export. *)
val stop : unit -> unit

(** [begin_span name] opens a span on the calling domain's track; close it
    with {!end_span} [name] on the same domain.  [ts_ns] overrides the
    timestamp (used to emit a span retroactively); [cat] defaults to
    ["minup"].  No-ops when disabled. *)
val begin_span :
  ?ts_ns:int64 -> ?args:(string * arg) list -> ?cat:string -> string -> unit

(** Arguments on the end event are merged with the begin event's by the
    viewer, so end-of-span measurements (iteration counts, deltas) can ride
    on [end_span]. *)
val end_span :
  ?ts_ns:int64 -> ?args:(string * arg) list -> ?cat:string -> string -> unit

(** A zero-duration marker event. *)
val instant :
  ?ts_ns:int64 -> ?args:(string * arg) list -> ?cat:string -> string -> unit

(** [span_at ~start_ns ~end_ns name] emits a matched B/E pair with explicit
    timestamps — for phases whose identity is only known once finished. *)
val span_at :
  start_ns:int64 ->
  end_ns:int64 ->
  ?args:(string * arg) list ->
  ?cat:string ->
  string ->
  unit

(** Number of spans currently open on the calling domain's track (0 when
    disabled).  Record it before running code that opens spans, and pass it
    to {!unwind_to} on the exception path. *)
val open_depth : unit -> int

(** [unwind_to d] ends the calling domain's open spans, innermost first,
    until only [d] remain — the exception-path counterpart of the matched
    {!end_span} calls that were skipped.  No-op when disabled. *)
val unwind_to : int -> unit

(** [with_span name f] wraps [f ()] in a span (exception-safe).  When
    disabled this is exactly [f ()]. *)
val with_span :
  ?args:(string * arg) list -> ?cat:string -> string -> (unit -> 'a) -> 'a

(** All collected events, merged across domains in timestamp order. *)
val events : unit -> event list

val event_count : unit -> int

(** The Chrome trace document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Timestamps are
    microseconds relative to the earliest event; thread-name metadata
    records each domain. *)
val to_json : unit -> Json.t

(** Write {!to_json} to a file. *)
val write : string -> unit
