external now_ns : unit -> int64 = "minup_obs_now_ns"

let elapsed_ns ~since = Int64.sub (now_ns ()) since
let ns_to_us ns = Int64.to_float ns /. 1e3
