(** Process-wide metrics registry: named counters, gauges, and log-scale
    histograms with percentile summaries.

    Metrics absorb and extend the solver's [Instr] operation counters: the
    CLI and the engine feed per-run counters and latency samples here, and
    one registry snapshot renders them all, human-readably ({!pp}) or as
    JSON ({!to_json}).

    All metric values are atomics, so workers on different domains update
    them without locks; registration (name lookup) takes a mutex and should
    happen outside hot loops — hold on to the returned handle.

    Like {!Trace}, the registry is disabled by default and instrumentation
    sites guard their updates with a single branch on {!enabled}, keeping
    the disabled path free of clock reads and atomic traffic. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Zero every registered metric (registrations are kept). *)
val reset : unit -> unit

(** Drop every registration — for test isolation. *)
val clear : unit -> unit

(** {1 Counters} *)

type counter

(** Get or create the counter [name].
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Power-of-two (log-scale) buckets over non-negative integers — bucket 0
    holds the value 0, bucket [k ≥ 1] holds [2^(k-1) .. 2^k - 1] — with
    atomically-maintained count/sum/min/max.  Intended for nanosecond
    latencies and iteration counts; the unit is a naming convention
    (e.g. ["solver/solve_ns"]). *)

type histogram

val histogram : string -> histogram

(** Record one sample (negative values clamp to 0). *)
val observe : histogram -> int -> unit

val histogram_count : histogram -> int

(** [percentile h q] estimates the [q]-quantile ([0 < q <= 1]) by linear
    interpolation inside the covering bucket, clamped to the observed
    min/max.  Returns [0.] for an empty histogram. *)
val percentile : histogram -> float -> float

(** Bucket index of a sample value (exposed for the bucketing tests). *)
val bucket_index : int -> int

(** {1 Snapshots} *)

(** One line per metric, sorted by name:
    [counter NAME V], [gauge NAME V], and
    [histogram NAME count=… sum=… min=… max=… p50=… p90=… p99=…]. *)
val pp : Format.formatter -> unit -> unit

(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], fields
    sorted by name. *)
val to_json : unit -> Json.t
