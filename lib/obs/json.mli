(** Minimal JSON values: rendering with correct escaping, and a strict
    parser.

    The observability layer emits (traces, metrics, benchmark baselines)
    and validates (tests, CI smoke) JSON without any external dependency —
    this module is that common currency.  It is deliberately small: one
    value type, one renderer, one parser, one accessor. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Render to a compact (or, with [~pretty:true], indented) JSON string.
    Integral [Num]s of magnitude below 1e15 print without a decimal point;
    non-finite numbers render as [null] to keep the output valid JSON. *)
val to_string : ?pretty:bool -> t -> string

(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Handles the full string escape set including [\uXXXX] and
    surrogate pairs (decoded to UTF-8). *)
val parse : string -> (t, string) result

(** [member k j] is the value of field [k] if [j] is an object that has
    one. *)
val member : string -> t -> t option
