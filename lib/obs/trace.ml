type arg = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ph : char;
  name : string;
  cat : string;
  ts_ns : int64;
  tid : int;
  args : (string * arg) list;
}

(* One buffer per (domain, collection generation).  The emit path touches
   only domain-local state; the registry mutex is taken once per domain per
   collection, at first emit.  [generation] invalidates buffers cached in
   domain-local storage by earlier collections (domains survive a
   [start ()]; their buffers must not). *)
type buf = {
  tid : int;
  gen : int;
  mutable events : event list;  (* newest first *)
  mutable count : int;
  mutable open_spans : (string * string) list;
      (* (name, cat) of every span begun but not yet ended on this domain,
         innermost first — consulted by [unwind_to] to close spans
         abandoned when an exception unwinds past their [end_span] site. *)
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let registry_lock = Mutex.create ()
let registry : buf list ref = ref []

let key : buf option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enabled () = Atomic.get enabled_flag

let buffer () =
  let slot = Domain.DLS.get key in
  let gen = Atomic.get generation in
  match !slot with
  | Some b when b.gen = gen -> b
  | _ ->
      let b =
        {
          tid = (Domain.self () :> int);
          gen;
          events = [];
          count = 0;
          open_spans = [];
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      slot := Some b;
      b

let emit ph ?ts_ns ?(args = []) ?(cat = "minup") name =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    let ts_ns = match ts_ns with Some t -> t | None -> Clock.now_ns () in
    b.events <- { ph; name; cat; ts_ns; tid = b.tid; args } :: b.events;
    b.count <- b.count + 1;
    match ph with
    | 'B' -> b.open_spans <- (name, cat) :: b.open_spans
    | 'E' -> (
        match b.open_spans with [] -> () | _ :: rest -> b.open_spans <- rest)
    | _ -> ()
  end

let begin_span ?ts_ns ?args ?cat name = emit 'B' ?ts_ns ?args ?cat name
let end_span ?ts_ns ?args ?cat name = emit 'E' ?ts_ns ?args ?cat name
let instant ?ts_ns ?args ?cat name = emit 'i' ?ts_ns ?args ?cat name

let span_at ~start_ns ~end_ns ?args ?cat name =
  emit 'B' ~ts_ns:start_ns ?args ?cat name;
  emit 'E' ~ts_ns:end_ns ?cat name

let open_depth () =
  if Atomic.get enabled_flag then List.length (buffer ()).open_spans else 0

let unwind_to depth =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    while List.length b.open_spans > depth do
      match b.open_spans with
      | (name, cat) :: _ -> end_span ~cat name
      | [] -> assert false
    done
  end

let with_span ?args ?cat name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    begin_span ?args ?cat name;
    Fun.protect ~finally:(fun () -> end_span ?cat name) f
  end

let start () =
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock;
  Atomic.incr generation;
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let buffers () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  bufs

let events () =
  let all = List.concat_map (fun b -> List.rev b.events) (buffers ()) in
  (* Per-buffer lists are already chronological (monotonic clock within a
     domain); a stable sort on the timestamp therefore preserves each
     domain's B/E ordering even for equal timestamps. *)
  List.stable_sort (fun a b -> Int64.compare a.ts_ns b.ts_ns) all

let event_count () =
  List.fold_left (fun acc b -> acc + b.count) 0 (buffers ())

let json_of_arg = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let to_json () =
  let evs = events () in
  let t0 = match evs with [] -> 0L | e :: _ -> e.ts_ns in
  let meta_event ~tid name args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.);
        ("tid", Json.Num (float_of_int tid));
        ("args", Json.Obj args);
      ]
  in
  let tids =
    List.sort_uniq compare (List.map (fun (e : event) -> e.tid) evs)
  in
  let meta =
    meta_event ~tid:0 "process_name" [ ("name", Json.Str "minup") ]
    :: List.map
         (fun tid ->
           meta_event ~tid "thread_name"
             [ ("name", Json.Str (Printf.sprintf "domain %d" tid)) ])
         tids
  in
  let event_json e =
    Json.Obj
      ([
         ("name", Json.Str e.name);
         ("cat", Json.Str e.cat);
         ("ph", Json.Str (String.make 1 e.ph));
         ("ts", Json.Num (Clock.ns_to_us (Int64.sub e.ts_ns t0)));
         ("pid", Json.Num 1.);
         ("tid", Json.Num (float_of_int e.tid));
       ]
      @ (if e.ph = 'i' then [ ("s", Json.Str "t") ] else [])
      @
      match e.args with
      | [] -> []
      | args ->
          [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (meta @ List.map event_json evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')
