module Fault = Minup_core.Fault
module Prng = Minup_workload.Prng

type kind = Raise | Stall of int | Blowout

type site = { task : int; at_event : int; kind : kind }
type plan = site list

let pp_kind ppf = function
  | Raise -> Format.pp_print_string ppf "raise"
  | Stall ms -> Format.fprintf ppf "stall %dms" ms
  | Blowout -> Format.pp_print_string ppf "blowout"

let describe { task; at_event; kind } =
  Format.asprintf "%a at event %d of task %d" pp_kind kind at_event task

(* A stall long enough to bust any plausible test deadline; virtual, so it
   costs nothing.  The blowout burns [max_int / 2] steps: past every
   finite [max_steps], yet far from the saturation edge. *)
let stall_ms = 60_000
let blowout_steps = max_int / 2

let plan ~seed ~tasks ~faults =
  if tasks < 0 then invalid_arg "Faultsim.plan: tasks < 0";
  if faults < 0 then invalid_arg "Faultsim.plan: faults < 0";
  let rng = Prng.create (0x5eed + (seed * 3)) in
  let targets = Prng.sample rng (min faults tasks) (List.init tasks Fun.id) in
  List.mapi
    (fun i task ->
      let kind =
        match i mod 3 with
        | 0 -> Raise
        | 1 -> Stall stall_ms
        | _ -> Blowout
      in
      (* Early events so the site fires even on one-attribute instances
         (every attribute yields at least a Consider event). *)
      { task; at_event = Prng.int rng 2; kind })
    (List.sort compare targets)

let targets plan = List.sort_uniq compare (List.map (fun s -> s.task) plan)

let hook_of_site s : Minup_core.Engine.hook =
  let count = ref 0 in
  let fired = ref false in
  fun ~charge ~warp_ms ->
    let k = !count in
    incr count;
    if (not !fired) && k >= s.at_event then begin
      fired := true;
      match s.kind with
      | Raise -> raise (Fault.Injection (describe s))
      | Stall ms -> warp_ms ms
      | Blowout -> charge blowout_steps
    end

let instrument plan i =
  match List.find_opt (fun s -> s.task = i) plan with
  | None -> None
  | Some s -> Some (hook_of_site s)
