(** Deterministic runtime fault injection for the batch engine.

    Supervision code is only trustworthy if its failure paths run; this
    module plants {e seeded, reproducible} faults inside live solves so
    tests (the battery's supervised-batch property, [mlsclassify selfcheck
    --inject-fault], the CI gate) can verify that {!Minup_core.Engine}
    isolates each fault at its own task index and leaves every other
    result bit-identical.

    Faults ride the engine's instrumentation hooks
    ({!Minup_core.Engine.type-hook}): a planted site counts the solver's
    scheduling events of its target task and, at the chosen event, either
    raises {!Minup_core.Fault.Injection}, warps the task budget's virtual
    clock forward (a "stall" that needs no real sleeping and therefore
    cannot flake under load), or burns the task's entire step budget.
    Everything is derived from explicit integers — no wall clock, no
    global PRNG — so a (seed, tasks, faults) triple plants the same sites
    in every run and under every [--jobs] value. *)

(** What the fault does when it fires.  [Stall ms] and [Blowout] only
    have an effect when the batch policy configures a deadline
    (resp. step budget) — they {e violate} a budget rather than raise. *)
type kind =
  | Raise  (** raise {!Minup_core.Fault.Injection} mid-solve *)
  | Stall of int  (** warp the virtual clock forward by [ms] *)
  | Blowout  (** charge the step budget past any finite [max_steps] *)

type site = { task : int; at_event : int; kind : kind }

(** [site.at_event] semantics: the fault fires at the first scheduling
    event whose index (0-based) is [>= at_event] — at most once per
    attempt.  A task whose solve emits no events (an empty problem) never
    fires its fault. *)
type plan = site list

val pp_kind : Format.formatter -> kind -> unit

(** Human-readable site description; also the [Injection] payload, so a
    fault report names the site that planted it. *)
val describe : site -> string

(** [plan ~seed ~tasks ~faults] plants [min faults tasks] sites at
    distinct task indices, rotating through all three kinds and firing at
    small event indices (so they hit even tiny instances).  Deterministic
    in [(seed, tasks, faults)].

    @raise Invalid_argument if [tasks < 0] or [faults < 0]. *)
val plan : seed:int -> tasks:int -> faults:int -> plan

(** The indices of the planned sites, ascending and distinct. *)
val targets : plan -> int list

(** [instrument plan] is an [?instrument] argument for
    {!Minup_core.Engine.Make.solve_batch}: each call returns a {e fresh}
    hook (with its own event counter) for tasks the plan targets, [None]
    for the rest — so every retry attempt replants the fault and a
    planted task fails deterministically through all its retries. *)
val instrument : plan -> int -> Minup_core.Engine.hook option
